//! # omnisim-dse
//!
//! The compiled design-space-exploration engine for the OmniSim workspace.
//!
//! OmniSim's incremental re-simulation (§7.2 of the paper) answers one
//! FIFO-depth query without re-running the design — but the uncompiled
//! path re-allocates the write-after-read overlay and re-runs a cold
//! longest-path pass for *every* point, so a 10k-point grid does 10k
//! allocations and 10k full traversals. Following the LightningSimV2
//! insight that compiling the trace into a static CSR graph is what turns
//! per-query analysis into microseconds, this crate freezes a baseline run
//! **once** and then answers points from the frozen form:
//!
//! * [`SweepPlan`] — the baseline [`IncrementalState`](omnisim::IncrementalState)
//!   compiled into a CSR graph + transpose, depth-parameterized WAR edges
//!   partitioned per FIFO, one cached topological order valid for every
//!   depth vector ≥ 1, and a flat constraint table;
//! * [`PlanEvaluator`] — reusable time buffers evaluating points by
//!   in-place levelized relaxation, with **delta evaluation** between
//!   consecutive points (only nodes downstream of FIFOs whose depth
//!   changed are recomputed);
//! * [`SweepPlan::evaluate_batch`] — chunked multi-threaded batch solving
//!   over scoped threads;
//! * [`CompiledPlan`] — the plan lowered further into register-allocated
//!   bytecode ([`SweepPlan::compile_bytecode`]): a linear program over a
//!   flat `u64` time tape executed by a tight VM loop ([`CompiledVm`]),
//!   roughly an order of magnitude faster per point than the interpreter
//!   and serializable via `omnisim-codec` for artifact-store persistence;
//! * [`SweepPlan::min_depths`] — the inverse query: per-FIFO binary search
//!   for the smallest depths whose certified latency meets a target;
//! * [`Sweep`] — the batch DSE driver (moved here from the engine crate),
//!   now using the plan as its fast path and parallel full re-simulation
//!   as its fallback for constraint-violating points.
//!
//! Answers are bit-identical to
//! [`IncrementalState::try_with_depths`](omnisim::IncrementalState::try_with_depths)
//! and to full re-simulation wherever the recorded constraints hold; the
//! differential suite in `tests/compiled_dse.rs` (workspace root) pins all
//! three against each other on randomized grids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bytecode;
pub mod min_depths;
pub mod plan;
pub mod pool;
pub mod sweep;

pub use bytecode::{CompiledPlan, CompiledVm};
pub use min_depths::MinDepthsReport;
pub use omnisim::IncrementalOutcome;
pub use plan::{PlanError, PlanEvaluator, SweepPlan};
pub use sweep::{Sweep, SweepMethod, SweepPoint, SweepReport};
