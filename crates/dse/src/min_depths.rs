//! Minimum-depth search: the inverse DSE query.
//!
//! Grid sweeps answer "what latency does this depth vector give?"; FIFO
//! sizing usually wants the inverse — "what is the *smallest* depth per
//! FIFO that still meets a latency target?". Because removing WAR edges
//! (growing a FIFO) can only lower longest-path times, plan *latency* is
//! monotonically non-increasing in every depth. Constraint *validity* is
//! not monotone, though: on non-blocking designs, both growing and
//! shrinking a FIFO can flip recorded outcomes. So the search is anchored
//! at the one depth vector guaranteed to certify — the baseline depths the
//! plan was compiled from — and each FIFO is binary-searched between 1 and
//! its nearest known-good depth (the baseline anchor, or the search bound
//! when that certifies too) while every other FIFO is held at its anchor.
//! The whole search costs ≈ `fifos · log2(max_depth)` compiled evaluations
//! instead of a full grid.
//!
//! Probes whose recorded constraints no longer hold are conservatively
//! treated as *not meeting the target*: the plan cannot certify their
//! latency without a full re-simulation, and a sizing workflow wants
//! certified answers. (Because validity is not monotone, the reported
//! minimum is the boundary of the certified region around the anchor — a
//! certified depth below an uncertified gap would be missed; it could only
//! be confirmed by full re-simulation anyway.) The combined result is
//! re-evaluated once so callers can see whether the joint minimum still
//! certifies.

use crate::plan::{PlanError, SweepPlan};
use omnisim::IncrementalOutcome;

/// The result of a [`SweepPlan::min_depths`] search.
#[derive(Debug, Clone)]
pub struct MinDepthsReport {
    /// The latency bound the search was asked to meet.
    pub target_latency: u64,
    /// Per-FIFO minimal certified depth meeting the target with every
    /// other FIFO held at its baseline anchor; `None` when neither the
    /// anchor nor the search bound certifies the target for that FIFO.
    pub per_fifo: Vec<Option<usize>>,
    /// The joint depth vector: each FIFO at its minimum (or at its
    /// baseline anchor where no minimum was certified).
    pub depths: Vec<usize>,
    /// The plan's verdict on [`MinDepthsReport::depths`]: per-FIFO minima
    /// are individually certified, but their combination can stall more
    /// than any single probe did, so it is re-checked once.
    pub combined: IncrementalOutcome,
    /// Number of compiled point evaluations the search spent.
    pub probes: usize,
}

impl MinDepthsReport {
    /// True if the joint depth vector certifiably meets the target.
    pub fn combined_meets_target(&self) -> bool {
        matches!(
            self.combined,
            IncrementalOutcome::Valid { total_cycles } if total_cycles <= self.target_latency
        )
    }
}

impl SweepPlan {
    /// Searches, per FIFO, for the smallest depth in `1..=max_depth` whose
    /// certified latency meets `target_latency`, holding every other FIFO
    /// at its baseline anchor (the compiled run's depth, clamped to the
    /// bound); then re-evaluates the joint minima once. See the
    /// [module docs](self) for why the search is anchored at the baseline.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ZeroBound`] if `max_depth` is zero.
    pub fn min_depths(
        &self,
        target_latency: u64,
        max_depth: usize,
    ) -> Result<MinDepthsReport, PlanError> {
        if max_depth == 0 {
            return Err(PlanError::ZeroBound);
        }
        let anchors: Vec<usize> = self
            .original_depths()
            .iter()
            .map(|&d| d.clamp(1, max_depth))
            .collect();
        let mut eval = self.evaluator();
        let mut probes = 0usize;
        let mut meets = |depths: &[usize]| -> Result<bool, PlanError> {
            probes += 1;
            Ok(matches!(
                eval.evaluate(depths)?,
                IncrementalOutcome::Valid { total_cycles } if total_cycles <= target_latency
            ))
        };

        // The anchor vector is the same for every FIFO's search, so its
        // verdict is probed once up front.
        let anchor_meets = meets(&anchors)?;
        let mut per_fifo: Vec<Option<usize>> = Vec::with_capacity(anchors.len());
        for f in 0..anchors.len() {
            let mut probe = anchors.clone();
            // Nearest known-good depth for this FIFO: its own anchor, or
            // the search bound (deeper never raises latency, but it can
            // flip constraints, so both are genuine probes).
            let good = if anchor_meets {
                Some(anchors[f])
            } else {
                probe[f] = max_depth;
                if meets(&probe)? {
                    Some(max_depth)
                } else {
                    None
                }
            };
            let Some(good) = good else {
                per_fifo.push(None);
                continue;
            };
            // Invariant: `hi` meets the target; depths below `lo` are not
            // known to (validity gaps report the certified-region edge).
            let (mut lo, mut hi) = (1usize, good);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                probe[f] = mid;
                if meets(&probe)? {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            per_fifo.push(Some(hi));
        }

        let depths: Vec<usize> = per_fifo
            .iter()
            .zip(&anchors)
            .map(|(d, &anchor)| d.unwrap_or(anchor))
            .collect();
        let combined = eval.evaluate(&depths)?;
        probes += 1;
        Ok(MinDepthsReport {
            target_latency,
            per_fifo,
            depths,
            combined,
            probes,
        })
    }
}
