//! Batch FIFO-depth design-space exploration — the Table 6 workflow as a
//! first-class API, now backed by the compiled [`SweepPlan`].
//!
//! [`Sweep`] runs the design once, compiles the baseline into a
//! [`SweepPlan`], and answers every candidate depth vector from the frozen
//! plan (delta evaluation, no per-point allocation) whenever the recorded
//! constraints still hold (§7.2), transparently falling back to a full
//! re-simulation of the resized design when they do not. Plan evaluation
//! and fallback runs are independent, so by default both execute in
//! parallel on scoped threads (the container build has no access to
//! external crates, otherwise this would be a `rayon` parallel iterator);
//! [`Sweep::sequential`] disables that for deterministic profiling.
//!
//! ```
//! use omnisim_dse::Sweep;
//! use omnisim_ir::{DesignBuilder, Expr};
//!
//! let mut d = DesignBuilder::new("pc");
//! let out = d.output("sum");
//! let q = d.fifo("q", 2);
//! let p = d.function("p", |m| {
//!     m.counted_loop("i", 16, 1, |b| {
//!         let i = b.var_expr("i");
//!         b.fifo_write(q, i.add(Expr::imm(1)));
//!     });
//! });
//! let c = d.function("c", |m| {
//!     let acc = m.var("acc");
//!     m.entry(|b| { b.assign(acc, Expr::imm(0)); });
//!     m.counted_loop("i", 16, 2, |b| {
//!         let v = b.fifo_read(q);
//!         b.assign(acc, Expr::var(acc).add(Expr::var(v)));
//!     });
//!     m.exit(|b| { b.output(out, Expr::var(acc)); });
//! });
//! d.dataflow_top("top", [p, c]);
//! let design = d.build().unwrap();
//!
//! let sweep = Sweep::new(&design).grid(&[&[1, 2, 4, 8]]).run().unwrap();
//! assert_eq!(sweep.points.len(), 4);
//! assert!(sweep.incremental_hits() + sweep.full_resims() == 4);
//! assert!(sweep.plan.is_some(), "the compiled plan rides on the report");
//! ```

use crate::bytecode::CompiledPlan;
use crate::plan::SweepPlan;
use crate::pool;
use omnisim::{IncrementalOutcome, OmniError, OmniReport, OmniSimulator, SimConfig};
use omnisim_ir::design::OutputMap;
use omnisim_ir::Design;

/// Result of one full re-simulation: end-to-end cycles plus the functional
/// outputs (behaviour may differ from the baseline when constraints flip).
type ResimOutcome = Result<(u64, OutputMap), OmniError>;

/// How one sweep point was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMethod {
    /// Answered from the baseline run's recorded constraints — through the
    /// compiled plan or the uncompiled incremental path — without
    /// re-simulating (microseconds).
    Incremental,
    /// A recorded constraint was violated under the new depths, so the
    /// resized design was fully re-simulated.
    FullResim,
}

impl SweepMethod {
    /// Short label for tables (`"incremental"` / `"full re-sim"`).
    pub fn label(&self) -> &'static str {
        match self {
            SweepMethod::Incremental => "incremental",
            SweepMethod::FullResim => "full re-sim",
        }
    }
}

/// The answer for one candidate depth vector.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The FIFO depths of this design point (one entry per FIFO).
    pub depths: Vec<usize>,
    /// End-to-end latency under these depths.
    pub total_cycles: u64,
    /// How the point was answered.
    pub method: SweepMethod,
    /// Functional outputs of the full re-simulation. `None` for incremental
    /// answers: the constraints held, so behaviour is unchanged from
    /// [`SweepReport::baseline`].
    pub outputs: Option<OutputMap>,
}

/// The result of a [`Sweep`] run.
#[derive(Debug)]
pub struct SweepReport {
    /// The initial full run at the design's declared depths.
    pub baseline: OmniReport,
    /// One answer per requested point, in request order.
    pub points: Vec<SweepPoint>,
    /// The compiled plan the points were answered from, reusable for
    /// follow-up queries ([`SweepPlan::min_depths`], more batches). `None`
    /// only when plan compilation failed and the sweep fell back to the
    /// uncompiled incremental path throughout.
    pub plan: Option<SweepPlan>,
    /// The plan lowered to register-allocated bytecode — the program the
    /// points were actually executed through. Reusable for follow-up
    /// batches and persistable via [`CompiledPlan::encode`]; present
    /// exactly when [`SweepReport::plan`] is.
    pub bytecode: Option<CompiledPlan>,
}

impl SweepReport {
    /// Number of points answered incrementally (without re-simulation).
    pub fn incremental_hits(&self) -> usize {
        self.points
            .iter()
            .filter(|p| p.method == SweepMethod::Incremental)
            .count()
    }

    /// Number of points that required a full re-simulation.
    pub fn full_resims(&self) -> usize {
        self.points.len() - self.incremental_hits()
    }
}

/// Builder for a batch FIFO-depth design-space exploration.
#[derive(Debug)]
pub struct Sweep<'d> {
    design: &'d Design,
    config: SimConfig,
    points: Vec<Vec<usize>>,
    workers: Option<usize>,
    grid_error: Option<OmniError>,
}

impl<'d> Sweep<'d> {
    /// Creates a sweep over `design` with the default engine configuration.
    pub fn new(design: &'d Design) -> Self {
        Sweep {
            design,
            config: SimConfig::default(),
            points: Vec::new(),
            workers: None,
            grid_error: None,
        }
    }

    /// Uses an explicit engine configuration for the baseline run and every
    /// full re-simulation.
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Pins the number of worker threads used for plan-evaluation chunks
    /// and full-re-simulation fallbacks (clamped to at least one). The
    /// default is one worker per core.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Runs plan evaluation and full re-simulations one at a time instead
    /// of on scoped worker threads. Equivalent to [`Sweep::workers`]`(1)`.
    pub fn sequential(self) -> Self {
        self.workers(1)
    }

    /// Adds one candidate depth vector (one entry per FIFO of the design).
    pub fn point(mut self, depths: impl Into<Vec<usize>>) -> Self {
        self.points.push(depths.into());
        self
    }

    /// Adds many candidate depth vectors.
    pub fn points<I, D>(mut self, points: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: Into<Vec<usize>>,
    {
        self.points.extend(points.into_iter().map(Into::into));
        self
    }

    /// Adds the cartesian product of per-FIFO candidate depths: `axes[i]`
    /// lists the depths to try for FIFO *i*. Points are generated with the
    /// last axis varying fastest, matching a nested-loop sweep.
    ///
    /// An empty axis would make the whole product empty — the grid would
    /// silently vanish — so it is rejected:
    /// [`Sweep::run`] reports [`OmniError::EmptyGridAxis`] naming the first
    /// empty axis.
    pub fn grid(mut self, axes: &[&[usize]]) -> Self {
        if let Some(axis) = axes.iter().position(|axis| axis.is_empty()) {
            self.grid_error
                .get_or_insert(OmniError::EmptyGridAxis { axis });
            return self;
        }
        let mut acc: Vec<Vec<usize>> = vec![Vec::new()];
        for axis in axes {
            let mut next = Vec::with_capacity(acc.len() * axis.len());
            for prefix in &acc {
                for &depth in *axis {
                    let mut point = prefix.clone();
                    point.push(depth);
                    next.push(point);
                }
            }
            acc = next;
        }
        self.points.extend(acc);
        self
    }

    /// Runs the baseline simulation and answers every requested point:
    /// through the compiled [`SweepPlan`] where possible, through the
    /// uncompiled incremental path for depth-0 points (or if plan
    /// compilation fails), and through parallel full re-simulation wherever
    /// a recorded constraint is violated.
    ///
    /// # Errors
    ///
    /// Returns [`OmniError::EmptyGridAxis`] if a [`Sweep::grid`] axis was
    /// empty, [`OmniError::DepthMismatch`] if a point's depth vector has
    /// the wrong length, the baseline run's error if it fails, and any full
    /// re-simulation's error otherwise.
    pub fn run(self) -> Result<SweepReport, OmniError> {
        let Sweep {
            design,
            config,
            points,
            workers,
            grid_error,
        } = self;
        if let Some(error) = grid_error {
            return Err(error);
        }
        let resim_workers = pool::resolve_workers(workers);
        let fifo_count = design.fifos.len();
        for point in &points {
            if point.len() != fifo_count {
                return Err(OmniError::DepthMismatch {
                    expected: fifo_count,
                    got: point.len(),
                });
            }
        }

        // The compile phase of the session lifecycle, without the
        // `CompiledOmni` wrapper: a sweep borrows its design and supplies
        // its own typed-error fallback re-simulations below, so wrapping
        // would only add the artifact's design clone — which matters when
        // fuzz loops sweep thousands of generated designs.
        let baseline_report = OmniSimulator::with_config(design, config).run()?;
        let baseline = &baseline_report.incremental;
        // Plan compilation fails only when no depth-independent topological
        // order exists; the uncompiled path still answers every point.
        let plan = SweepPlan::compile(baseline).ok();
        // Lower the plan into bytecode once; the VM answers the batch.
        let bytecode = plan.as_ref().map(SweepPlan::compile_bytecode);

        let mut answers: Vec<Option<SweepPoint>> = (0..points.len()).map(|_| None).collect();
        let mut fallback: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut compiled: Vec<(usize, Vec<usize>)> = Vec::new();
        for (index, depths) in points.into_iter().enumerate() {
            if plan.is_some() && depths.iter().all(|&d| d >= 1) {
                compiled.push((index, depths));
            } else {
                match baseline.try_with_depths(&depths)? {
                    IncrementalOutcome::Valid { total_cycles } => {
                        answers[index] = Some(SweepPoint {
                            depths,
                            total_cycles,
                            method: SweepMethod::Incremental,
                            outputs: None,
                        });
                    }
                    IncrementalOutcome::ConstraintViolated { .. }
                    | IncrementalOutcome::DepthInfeasible { .. }
                    | IncrementalOutcome::DepthCyclic => {
                        // An uncertifiable zero-depth point is not a design
                        // point at all — the resized design would not even
                        // validate — so it stays an error rather than a
                        // resim candidate (which would assert on the zero
                        // depth).
                        if depths.contains(&0) {
                            return Err(OmniError::Graph(omnisim_graph::CycleError));
                        }
                        fallback.push((index, depths));
                    }
                }
            }
        }

        if let Some(program) = &bytecode {
            let batch: Vec<&[usize]> = compiled
                .iter()
                .map(|(_, depths)| depths.as_slice())
                .collect();
            // A pinned worker count is honored unconditionally; otherwise
            // the VM's estimated-work cutoff decides whether the batch is
            // worth parallelizing at all.
            let outcomes = match workers {
                Some(count) => program.evaluate_batch_workers(&batch, count),
                None => program.evaluate_batch(&batch, true),
            }
            .map_err(OmniError::from)?;
            for ((index, depths), outcome) in compiled.into_iter().zip(outcomes) {
                match outcome {
                    IncrementalOutcome::Valid { total_cycles } => {
                        answers[index] = Some(SweepPoint {
                            depths,
                            total_cycles,
                            method: SweepMethod::Incremental,
                            outputs: None,
                        });
                    }
                    IncrementalOutcome::ConstraintViolated { .. }
                    | IncrementalOutcome::DepthInfeasible { .. }
                    | IncrementalOutcome::DepthCyclic => {
                        fallback.push((index, depths));
                    }
                }
            }
        }

        let resimulate = |depths: &[usize]| -> ResimOutcome {
            let resized = design.with_fifo_depths(depths);
            let report = OmniSimulator::with_config(&resized, config).run()?;
            Ok((report.total_cycles, report.outputs))
        };

        let outcomes: Vec<ResimOutcome> =
            pool::parallel_map(&fallback, resim_workers, |(_, depths)| resimulate(depths));

        for ((index, depths), outcome) in fallback.into_iter().zip(outcomes) {
            let (total_cycles, outputs) = outcome?;
            answers[index] = Some(SweepPoint {
                depths,
                total_cycles,
                method: SweepMethod::FullResim,
                outputs: Some(outputs),
            });
        }

        Ok(SweepReport {
            baseline: baseline_report,
            points: answers
                .into_iter()
                .map(|point| point.expect("every sweep point answered"))
                .collect(),
            plan,
            bytecode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim::test_fixtures::{nb_drop_counter, producer_consumer};

    #[test]
    fn all_incremental_sweep_matches_manual_analysis() {
        let design = producer_consumer(64, 2, 2);
        let sweep = Sweep::new(&design).grid(&[&[1, 2, 4, 16]]).run().unwrap();
        assert_eq!(sweep.points.len(), 4);
        assert_eq!(sweep.incremental_hits(), 4);
        for point in &sweep.points {
            let manual = sweep
                .baseline
                .incremental
                .try_with_depths(&point.depths)
                .unwrap();
            match manual {
                IncrementalOutcome::Valid { total_cycles } => {
                    assert_eq!(point.total_cycles, total_cycles);
                }
                other => panic!("expected valid, got {other:?}"),
            }
            assert!(point.outputs.is_none(), "incremental points reuse baseline");
        }
    }

    #[test]
    fn fallback_points_match_full_resimulation() {
        let design = nb_drop_counter(48, 2, 3);
        let sweep = Sweep::new(&design).grid(&[&[1, 2, 64, 128]]).run().unwrap();
        assert!(
            sweep.full_resims() >= 1,
            "growing depths must flip outcomes"
        );
        for point in &sweep.points {
            let resized = design.with_fifo_depths(&point.depths);
            let full = OmniSimulator::new(&resized).run().unwrap();
            assert_eq!(
                point.total_cycles, full.total_cycles,
                "depths {:?}",
                point.depths
            );
            if let Some(outputs) = &point.outputs {
                assert_eq!(outputs, &full.outputs, "depths {:?}", point.depths);
            }
        }
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let design = nb_drop_counter(40, 1, 4);
        let grid: &[&[usize]] = &[&[1, 8, 32, 64, 128]];
        let parallel = Sweep::new(&design).grid(grid).run().unwrap();
        let sequential = Sweep::new(&design).grid(grid).sequential().run().unwrap();
        assert_eq!(parallel.points.len(), sequential.points.len());
        for (p, s) in parallel.points.iter().zip(&sequential.points) {
            assert_eq!(p.depths, s.depths);
            assert_eq!(p.total_cycles, s.total_cycles);
            assert_eq!(p.method, s.method);
            assert_eq!(p.outputs, s.outputs);
        }
    }

    #[test]
    fn explicit_worker_counts_change_nothing() {
        // Worker counts are a throughput knob, never a semantics knob: one
        // worker (the sequential degenerate case), a deliberately odd
        // count, and the per-core default must answer identically.
        let design = nb_drop_counter(40, 1, 4);
        let grid: &[&[usize]] = &[&[1, 8, 32, 64, 128]];
        let default = Sweep::new(&design).grid(grid).run().unwrap();
        let one = Sweep::new(&design).grid(grid).workers(1).run().unwrap();
        let three = Sweep::new(&design).grid(grid).workers(3).run().unwrap();
        for (label, other) in [("workers(1)", &one), ("workers(3)", &three)] {
            assert_eq!(default.points.len(), other.points.len(), "{label}");
            for (p, s) in default.points.iter().zip(&other.points) {
                assert_eq!(p.depths, s.depths, "{label}");
                assert_eq!(p.total_cycles, s.total_cycles, "{label}");
                assert_eq!(p.method, s.method, "{label}");
                assert_eq!(p.outputs, s.outputs, "{label}");
            }
        }
        // workers(0) clamps to one instead of deadlocking or panicking.
        let clamped = Sweep::new(&design).grid(grid).workers(0).run().unwrap();
        assert_eq!(clamped.points.len(), default.points.len());
    }

    #[test]
    fn wrong_length_point_is_rejected_as_caller_error() {
        let design = producer_consumer(8, 2, 1);
        let err = Sweep::new(&design).point([1, 2]).run().unwrap_err();
        assert_eq!(
            err,
            OmniError::DepthMismatch {
                expected: 1,
                got: 2
            }
        );
        assert!(err.to_string().contains("2 entries"));
        assert!(err.to_string().contains("1 fifos"));
    }

    #[test]
    fn grid_generates_cartesian_product_in_nested_loop_order() {
        let design = producer_consumer(8, 2, 1);
        let sweep = Sweep::new(&design);
        let sweep = sweep.grid(&[&[1, 2]]);
        assert_eq!(sweep.points, vec![vec![1], vec![2]]);
        // Two axes: last axis varies fastest.
        let mut two_axis = Sweep::new(&design);
        two_axis = two_axis.grid(&[&[1, 2], &[7, 9]]);
        assert_eq!(
            two_axis.points,
            vec![vec![1, 7], vec![1, 9], vec![2, 7], vec![2, 9]]
        );
    }

    #[test]
    fn empty_grid_axis_is_rejected_not_swallowed() {
        // Regression: an empty axis used to annihilate the whole cartesian
        // product, so the sweep silently answered zero points.
        let design = producer_consumer(8, 2, 1);
        let err = Sweep::new(&design).grid(&[&[1, 2], &[]]).run().unwrap_err();
        assert_eq!(err, OmniError::EmptyGridAxis { axis: 1 });
        assert!(err.to_string().contains("axis 1"));

        // The first offending axis is reported even when several grids are
        // stacked, and valid points added before the bad grid don't save it.
        let err = Sweep::new(&design)
            .point([1usize])
            .grid(&[&[], &[3]])
            .grid(&[&[]])
            .run()
            .unwrap_err();
        assert_eq!(err, OmniError::EmptyGridAxis { axis: 0 });
    }

    #[test]
    fn depth_zero_points_take_the_uncompiled_path() {
        // Depth 0 is outside the plan's cached topological order, so such
        // points are routed through try_with_depths exactly as before the
        // plan existed. For a blocking design, depth 0 makes the combined
        // constraint set cyclic (the w-th write must follow the w-th read
        // which must follow the w-th write), and that error surfaces.
        let design = producer_consumer(12, 2, 1);
        let err = Sweep::new(&design).point([0usize]).run().unwrap_err();
        assert!(matches!(err, OmniError::Graph(_)), "got {err:?}");
        let manual = design;
        let baseline = OmniSimulator::new(&manual).run().unwrap();
        assert_eq!(
            baseline.incremental.try_with_depths(&[0]).unwrap(),
            IncrementalOutcome::DepthCyclic,
            "the uncompiled path agrees that depth 0 is cyclic here"
        );
    }

    #[test]
    fn depth_zero_on_an_infeasible_fifo_errors_instead_of_resimulating() {
        // A producer that leaves surplus data in the FIFO: depth 0 is
        // DepthInfeasible (not DepthCyclic), and must still surface as an
        // error — routing it to the resim fallback would panic on
        // `with_fifo_depths`'s zero-depth assertion.
        let mut d = omnisim_ir::DesignBuilder::new("surplus");
        let q = d.fifo("q", 2);
        let out = d.output("sum");
        let p = d.function("p", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(q, i);
            });
            m.exit(|b| {
                b.fifo_write(q, omnisim_ir::Expr::imm(99));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, omnisim_ir::Expr::imm(0));
            });
            m.counted_loop("i", 4, 1, |b| {
                let v = b.fifo_read(q);
                b.assign(
                    acc,
                    omnisim_ir::Expr::var(acc).add(omnisim_ir::Expr::var(v)),
                );
            });
            m.exit(|b| {
                b.output(out, omnisim_ir::Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().unwrap();
        let baseline = OmniSimulator::new(&design).run().unwrap();
        assert_eq!(
            baseline.incremental.try_with_depths(&[0]).unwrap(),
            IncrementalOutcome::DepthInfeasible { fifo: 0 }
        );
        let err = Sweep::new(&design).point([0usize]).run().unwrap_err();
        assert!(matches!(err, OmniError::Graph(_)), "got {err:?}");
    }

    #[test]
    fn report_retains_the_compiled_plan_for_follow_up_queries() {
        let design = producer_consumer(32, 2, 2);
        let sweep = Sweep::new(&design).grid(&[&[1, 2, 8]]).run().unwrap();
        let plan = sweep.plan.as_ref().expect("plan compiles for this design");
        assert_eq!(plan.fifo_count(), 1);
        let outcome = plan.evaluator().evaluate(&[8]).unwrap();
        let expected = sweep
            .points
            .iter()
            .find(|p| p.depths == [8])
            .unwrap()
            .total_cycles;
        match outcome {
            IncrementalOutcome::Valid { total_cycles } => {
                assert_eq!(total_cycles, expected)
            }
            other => panic!("expected valid, got {other:?}"),
        }
        // The lowered program rides on the report too, and answers the
        // same query identically.
        let program = sweep.bytecode.as_ref().expect("bytecode rides on plan");
        assert_eq!(program.evaluate(&[8]).unwrap(), outcome);
    }
}
