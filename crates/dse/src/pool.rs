//! Shared scoped-thread worker pool for the batch solvers.
//!
//! Both batch paths — plan evaluation chunks and full-re-simulation
//! fallbacks — need the same shape of parallelism: a fixed item list, a
//! `Sync` closure, results in item order. The facade's `SimService` uses
//! the same pool for its batched run requests. The container build has no
//! access to external crates, otherwise this would be a `rayon` parallel
//! iterator.
//!
//! Worker counts are explicit everywhere: callers resolve a user-supplied
//! count (or `None` for "one worker per core") through [`resolve_workers`]
//! and pass it down, so thread usage is tunable end to end instead of being
//! hardcoded at the pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `workers` scoped threads and returns
/// the results in item order. With one worker (or fewer than two items)
/// this degenerates to a plain in-order map on the calling thread.
pub fn parallel_map<T, R>(items: &[T], workers: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let outcome = f(&items[i]);
                *slots[i].lock().expect("dse pool slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("dse pool slot poisoned")
                .expect("dse pool filled every claimed slot")
        })
        .collect()
}

/// The machine's available parallelism (at least one) — the default worker
/// count wherever the caller does not pin one explicitly.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves an optional explicit worker count: `Some(n)` is clamped to at
/// least one, `None` means [`default_workers`].
pub fn resolve_workers(explicit: Option<usize>) -> usize {
    match explicit {
        Some(n) => n.max(1),
        None => default_workers(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate cases.
        assert_eq!(parallel_map(&items, 1, |&x| x + 1)[99], 100);
        assert!(parallel_map(&Vec::<usize>::new(), 4, |&x: &usize| x).is_empty());
    }

    #[test]
    fn worker_resolution_honours_explicit_counts() {
        assert_eq!(resolve_workers(Some(1)), 1);
        assert_eq!(resolve_workers(Some(7)), 7);
        assert_eq!(resolve_workers(Some(0)), 1, "zero clamps to one");
        assert!(resolve_workers(None) >= 1);
        assert_eq!(resolve_workers(None), default_workers());
    }
}
