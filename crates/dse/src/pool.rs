//! Shared scoped-thread worker pool for the batch solvers.
//!
//! Both batch paths — plan evaluation chunks and full-re-simulation
//! fallbacks — need the same shape of parallelism: a fixed item list, a
//! `Sync` closure, results in item order. The container build has no
//! access to external crates, otherwise this would be a `rayon` parallel
//! iterator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on up to `workers` scoped threads and returns
/// the results in item order. With one worker (or fewer than two items)
/// this degenerates to a plain in-order map on the calling thread.
pub(crate) fn parallel_map<T, R>(items: &[T], workers: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let outcome = f(&items[i]);
                *slots[i].lock().expect("dse pool slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("dse pool slot poisoned")
                .expect("dse pool filled every claimed slot")
        })
        .collect()
}

/// The number of workers a batch may use: the machine's parallelism when
/// `parallel` is requested, otherwise one.
pub(crate) fn worker_count(parallel: bool) -> usize {
    if parallel {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate cases.
        assert_eq!(parallel_map(&items, 1, |&x| x + 1)[99], 100);
        assert!(parallel_map(&Vec::<usize>::new(), 4, |&x: &usize| x).is_empty());
    }

    #[test]
    fn worker_count_honours_the_sequential_flag() {
        assert_eq!(worker_count(false), 1);
        assert!(worker_count(true) >= 1);
    }
}
