//! The compiled sweep plan: a baseline run frozen into a CSR graph that
//! answers FIFO-depth queries with no per-point allocation.
//!
//! [`SweepPlan::compile`] is run **once** per baseline
//! [`IncrementalState`]. It freezes the engine's online
//! [`EventGraph`](omnisim_graph::EventGraph) into a
//! [`CsrGraph`](omnisim_graph::CsrGraph) (plus its transpose for
//! incoming-edge traversal), partitions the depth-parameterized
//! write-after-read constraints per FIFO, caches one topological order that
//! stays valid for *every* depth vector with depths ≥ 1, and compiles the
//! recorded query constraints into a flat table. Each
//! [`PlanEvaluator`] then owns a reusable time buffer and answers points by
//!
//! * **levelized relaxation** — one pass over the cached topological order,
//!   relaxing CSR successors plus the WAR edge implied by the current
//!   depths, touching no allocator, and
//! * **delta evaluation** — between consecutive points, only nodes
//!   downstream of FIFOs whose depth actually changed are recomputed, via a
//!   topo-rank-ordered worklist that stops propagating wherever a node's
//!   time is unchanged.
//!
//! [`SweepPlan::evaluate_batch`] splits a point list into contiguous chunks
//! and solves them on scoped threads, one evaluator per chunk, so grid
//! sweeps keep their delta locality while using every core.
//!
//! The depth-1 lower bound exists because the cached topological order must
//! anticipate every WAR edge any depth vector can introduce: for depth `S`,
//! the *w*-th blocking write gains an edge from the *(w − S)*-th read, and
//! all of those are covered by ordering each FIFO's reads in commit order
//! plus one read-before-next-write skeleton edge — but only for `S ≥ 1`.
//! Depth-0 points (which the engine itself usually rejects as cyclic) must
//! go through [`IncrementalState::try_with_depths`] instead; the `Sweep`
//! driver does exactly that.

use crate::pool;
use omnisim::{CompiledOmni, IncrementalOutcome, IncrementalState, OmniError};
use omnisim_api::CompiledSim;
use omnisim_graph::{CsrGraph, CsrGraphBuilder, CycleError, Edge, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Sentinel for "this node is not a FIFO access" in the lookup tables.
pub(crate) const NONE: u32 = u32::MAX;

/// Per-FIFO access lanes, frozen from the baseline run's commit order.
#[derive(Debug, Clone)]
pub(crate) struct FifoLane {
    /// Node of each committed write, in commit order.
    pub(crate) writes: Vec<u32>,
    /// Blocking flag of each committed write (only blocking writes stall,
    /// so only they receive WAR edges).
    pub(crate) write_blocking: Vec<bool>,
    /// Node of each committed read, in commit order.
    pub(crate) reads: Vec<u32>,
}

impl FifoLane {
    /// The WAR predecessor (a read node) of write `iw` under `depth`, if
    /// the edge exists for that depth.
    pub(crate) fn war_pred(&self, iw: usize, depth: usize) -> Option<u32> {
        if !self.write_blocking[iw] || iw < depth {
            return None;
        }
        self.reads.get(iw - depth).copied()
    }
}

/// A recorded query outcome in flat form, re-checked per point.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledConstraint {
    /// True for write-side queries (Table 2 rows 1–2).
    pub(crate) write_side: bool,
    /// FIFO index.
    pub(crate) fifo: u32,
    /// 1-based access ordinal.
    pub(crate) ordinal: u32,
    /// Node representing the query itself.
    pub(crate) node: u32,
    /// Outcome observed during the baseline run.
    pub(crate) outcome: bool,
}

/// Errors returned when evaluating points against a [`SweepPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// The depth vector's length does not match the design's FIFO count.
    DepthMismatch {
        /// Number of FIFOs the plan was compiled for.
        expected: usize,
        /// Number of depths supplied.
        got: usize,
    },
    /// A depth of zero was supplied; the plan's cached topological order
    /// only covers depths ≥ 1 (use the uncompiled
    /// [`IncrementalState::try_with_depths`] path for depth-0 probes).
    ZeroDepth {
        /// Index of the FIFO with the zero depth.
        fifo: usize,
    },
    /// A zero search bound was passed to `SweepPlan::min_depths`; FIFO
    /// depths start at 1, so there is nothing to search.
    ZeroBound,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::DepthMismatch { expected, got } => write!(
                f,
                "depth vector has {got} entries but the plan was compiled for {expected} fifos"
            ),
            PlanError::ZeroDepth { fifo } => write!(
                f,
                "fifo {fifo} has depth 0, which the compiled plan does not evaluate"
            ),
            PlanError::ZeroBound => write!(
                f,
                "min_depths search bound is 0, but fifo depths start at 1"
            ),
        }
    }
}

impl Error for PlanError {}

impl From<PlanError> for OmniError {
    fn from(error: PlanError) -> OmniError {
        match error {
            PlanError::DepthMismatch { expected, got } => {
                OmniError::DepthMismatch { expected, got }
            }
            PlanError::ZeroDepth { .. } | PlanError::ZeroBound => {
                OmniError::Internal(error.to_string())
            }
        }
    }
}

/// A baseline run compiled for repeated FIFO-depth evaluation.
///
/// See the [module docs](self) for the design; see
/// [`SweepPlan::compile`] / [`SweepPlan::evaluator`] /
/// [`SweepPlan::evaluate_batch`] for the entry points. Evaluation answers
/// are bit-identical to [`IncrementalState::try_with_depths`] — same
/// latencies, same first-violated-constraint indices — just without the
/// per-point overlay allocation and graph rebuild.
#[derive(Debug)]
pub struct SweepPlan {
    /// The frozen baseline graph (bases + successor lists).
    pub(crate) fwd: CsrGraph,
    /// Its transpose, for recomputing one node from its predecessors.
    pub(crate) rev: CsrGraph,
    /// Topological order valid for the base edges plus any WAR overlay
    /// with all depths ≥ 1.
    pub(crate) topo: Vec<u32>,
    /// Node → position in `topo`.
    pub(crate) topo_rank: Vec<u32>,
    /// Per-FIFO access lanes.
    pub(crate) lanes: Vec<FifoLane>,
    /// Node → `(fifo, read index)` when the node is a committed read.
    war_read: Vec<(u32, u32)>,
    /// Node → `(fifo, write index)` when the node is a committed
    /// **blocking** write.
    pub(crate) war_write: Vec<(u32, u32)>,
    /// Flat constraint table, in the baseline's recording order.
    pub(crate) constraints: Vec<CompiledConstraint>,
    /// End node of every task that finished.
    pub(crate) end_nodes: Vec<u32>,
    /// FIFO depths of the baseline run.
    pub(crate) original_depths: Vec<usize>,
    /// Per-FIFO minimum depth the cached topological order supports. For
    /// single-rate pipelines this is 1 everywhere; multi-rate reconvergence
    /// can make the depth-1 overlay genuinely cyclic (the design would
    /// deadlock at depth 1), in which case the skeleton is relaxed and
    /// points probing below this bound take the allocating slow path.
    pub(crate) supported_min_depth: Vec<usize>,
}

impl SweepPlan {
    /// Compiles a baseline run into a frozen sweep plan.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if no topological order covering every
    /// depth-parameterized WAR overlay exists (callers should fall back to
    /// [`IncrementalState::try_with_depths`]; well-formed runs of the
    /// engine always compile).
    pub fn compile(state: &IncrementalState) -> Result<SweepPlan, CycleError> {
        let n = state.graph.len();
        let mut builder = CsrGraphBuilder::new();
        for i in 0..n {
            builder.add_node(state.graph.base(NodeId::from_index(i)));
        }
        for e in state.graph.edges() {
            builder.add_edge(e.from, e.to, e.weight);
        }
        let fwd = builder.build();
        let rev = fwd.transpose();

        let lanes: Vec<FifoLane> = state
            .fifo_write_nodes
            .iter()
            .zip(&state.fifo_write_blocking)
            .zip(&state.fifo_read_nodes)
            .map(|((writes, blocking), reads)| FifoLane {
                writes: writes.iter().map(|n| n.0).collect(),
                write_blocking: blocking.clone(),
                reads: reads.iter().map(|n| n.0).collect(),
            })
            .collect();

        // Ordering skeleton: one order that dominates every overlay with
        // depths ≥ `supported_min_depth`. Chaining each FIFO's reads in
        // commit order and ordering write w after read min(w−m, last)
        // covers the WAR edge read(w−S) → write(w) for every S ≥ m,
        // because the source read is always at or before the skeleton read
        // in the chain. Non-blocking writes never receive WAR edges, so
        // constraining them here would only risk a spurious cycle.
        //
        // `m` starts at 1 per FIFO. When the combined skeleton is cyclic —
        // which happens exactly when a depth-m assignment deadlocks, e.g.
        // multi-rate reconvergent pipelines at depth 1 — the anchors are
        // relaxed one depth at a time until an order exists; points below
        // the supported bound are answered by the evaluator's slow path.
        let build_skeleton = |bounds: &[usize]| {
            let mut skeleton: Vec<Edge> = Vec::new();
            for (f, lane) in lanes.iter().enumerate() {
                for pair in lane.reads.windows(2) {
                    skeleton.push(Edge::new(NodeId(pair[0]), NodeId(pair[1]), 0));
                }
                if lane.reads.is_empty() {
                    continue;
                }
                let m = bounds[f];
                for (iw, &write) in lane.writes.iter().enumerate().skip(m) {
                    if !lane.write_blocking[iw] {
                        continue;
                    }
                    let anchor = lane.reads[(iw - m).min(lane.reads.len() - 1)];
                    skeleton.push(Edge::new(NodeId(anchor), NodeId(write), 0));
                }
            }
            skeleton
        };
        let mut supported_min_depth = vec![1usize; lanes.len()];
        let mut topo: Vec<u32> = loop {
            match fwd.topo_order_with(build_skeleton(&supported_min_depth).iter().copied()) {
                Ok(order) => break order.into_iter().map(|n| n.0).collect(),
                Err(e) => {
                    let mut relaxed = false;
                    for (f, lane) in lanes.iter().enumerate() {
                        if !lane.reads.is_empty() && supported_min_depth[f] < lane.writes.len() {
                            supported_min_depth[f] += 1;
                            relaxed = true;
                        }
                    }
                    if !relaxed {
                        // No anchors left to relax: the base graph itself is
                        // cyclic, which is an engine bug.
                        return Err(e);
                    }
                }
            }
        };
        // The relaxation loop bumps every FIFO; most are innocent of the
        // cycle. Re-tighten each back to 1 where an order still exists, so
        // their depth-1 probes keep the allocation-free fast path.
        if supported_min_depth.iter().any(|&m| m > 1) {
            for f in 0..lanes.len() {
                if supported_min_depth[f] == 1 {
                    continue;
                }
                let mut trial = supported_min_depth.clone();
                trial[f] = 1;
                if let Ok(order) = fwd.topo_order_with(build_skeleton(&trial).iter().copied()) {
                    supported_min_depth = trial;
                    topo = order.into_iter().map(|n| n.0).collect();
                }
            }
        }
        let mut topo_rank = vec![0u32; n];
        for (rank, &node) in topo.iter().enumerate() {
            topo_rank[node as usize] = rank as u32;
        }

        let mut war_read = vec![(NONE, NONE); n];
        let mut war_write = vec![(NONE, NONE); n];
        for (f, lane) in lanes.iter().enumerate() {
            for (j, &read) in lane.reads.iter().enumerate() {
                war_read[read as usize] = (f as u32, j as u32);
            }
            for (iw, &write) in lane.writes.iter().enumerate() {
                if lane.write_blocking[iw] {
                    war_write[write as usize] = (f as u32, iw as u32);
                }
            }
        }

        let constraints = state
            .constraints
            .iter()
            .map(|c| CompiledConstraint {
                write_side: c.kind.is_write_side(),
                fifo: c.fifo.index() as u32,
                ordinal: c.ordinal as u32,
                node: c.node.0,
                outcome: c.outcome,
            })
            .collect();

        Ok(SweepPlan {
            fwd,
            rev,
            topo,
            topo_rank,
            lanes,
            war_read,
            war_write,
            constraints,
            end_nodes: state.end_nodes.iter().flatten().map(|n| n.0).collect(),
            original_depths: state.original_depths.clone(),
            supported_min_depth,
        })
    }

    /// Compiles a plan from a [`CompiledSim`] session artifact, if it is
    /// the OmniSim engine's (see `Capabilities::compiled_dse`). This is the
    /// canonical way to upgrade a compile-once session into the batch DSE
    /// engine: the artifact's frozen
    /// [`IncrementalState`](omnisim::IncrementalState) is compiled directly,
    /// no type-erased extras involved.
    pub fn from_compiled(compiled: &dyn CompiledSim) -> Option<Result<SweepPlan, CycleError>> {
        compiled
            .as_any()
            .downcast_ref::<CompiledOmni>()
            .map(|omni| SweepPlan::compile(omni.state()))
    }

    /// Lowers the frozen plan into a register-allocated bytecode program —
    /// see [`crate::bytecode::CompiledPlan`]. The lowering is total: every
    /// compiled plan has a bytecode form, and the program answers every
    /// depth vector bit-identically to [`SweepPlan::evaluator`], an order
    /// of magnitude faster.
    pub fn compile_bytecode(&self) -> crate::bytecode::CompiledPlan {
        crate::bytecode::CompiledPlan::lower(self)
    }

    /// Number of FIFOs the plan was compiled for.
    pub fn fifo_count(&self) -> usize {
        self.lanes.len()
    }

    /// Number of nodes in the frozen graph.
    pub fn node_count(&self) -> usize {
        self.fwd.len()
    }

    /// Number of edges in the frozen graph (excluding the WAR overlay).
    pub fn edge_count(&self) -> usize {
        self.fwd.edge_count()
    }

    /// Number of recorded constraints re-checked per point.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// FIFO depths of the baseline run the plan was compiled from.
    pub fn original_depths(&self) -> &[usize] {
        &self.original_depths
    }

    /// Creates a fresh evaluator with its own reusable scratch buffers.
    pub fn evaluator(&self) -> PlanEvaluator<'_> {
        PlanEvaluator {
            plan: self,
            time: Vec::with_capacity(self.fwd.len()),
            depths: Vec::new(),
            heap: BinaryHeap::new(),
            queued: vec![false; self.fwd.len()],
        }
    }

    /// The first FIFO whose depth is infeasible for the baseline's access
    /// counts — replicates `IncrementalState::first_infeasible_fifo` so the
    /// compiled path returns bit-identical outcomes.
    fn first_infeasible_fifo(&self, depths: &[usize]) -> Option<usize> {
        depths.iter().enumerate().position(|(f, &depth)| {
            let lane = &self.lanes[f];
            let (writes, reads) = (lane.writes.len(), lane.reads.len());
            writes > depth + reads
                && lane.write_blocking[depth + reads..writes]
                    .iter()
                    .any(|&blocking| blocking)
        })
    }

    /// Validates one depth vector against the plan.
    fn validate(&self, depths: &[usize]) -> Result<(), PlanError> {
        if depths.len() != self.lanes.len() {
            return Err(PlanError::DepthMismatch {
                expected: self.lanes.len(),
                got: depths.len(),
            });
        }
        if let Some(fifo) = depths.iter().position(|&d| d == 0) {
            return Err(PlanError::ZeroDepth { fifo });
        }
        Ok(())
    }

    /// Estimated-work cutoff (points × plan nodes) below which
    /// [`SweepPlan::evaluate_batch`]`(…, parallel = true)` solves the batch
    /// serially anyway. Parallel chunking has two fixed costs — scoped
    /// thread spawn/join, and one cold full relaxation per chunk before its
    /// delta evaluations — that exceed the whole serial solve on
    /// paper-sized batches (`BENCH_dse.json` measured 4.5M parallel vs
    /// 5.4M serial points/sec on a 1000-point grid before this cutoff
    /// existed). Break-even on a ~620-node plan sits near 2k points, i.e.
    /// ~1.2M node-points; the cutoff leaves margin above it.
    pub(crate) const PARALLEL_WORK_CUTOFF: usize = 2_000_000;

    /// Worker count for an auto-parallel batch: serial below the
    /// estimated-work cutoff, one worker per core above it.
    fn auto_workers(&self, points: usize) -> usize {
        if points.saturating_mul(self.node_count()) < Self::PARALLEL_WORK_CUTOFF {
            1
        } else {
            pool::default_workers()
        }
    }

    /// Evaluates every point, in order, chunking the list across scoped
    /// worker threads when `parallel` is set (chunks stay contiguous so
    /// delta evaluation keeps its locality within each chunk). Points may
    /// be owned vectors or borrowed slices — nothing is copied.
    ///
    /// `parallel` uses one worker per core, except that batches whose
    /// estimated work (points × plan nodes) falls below
    /// [`SweepPlan::PARALLEL_WORK_CUTOFF`] stay serial — spawning threads
    /// and paying one cold full relaxation per chunk is slower than just
    /// solving a small batch on the calling thread. Use
    /// [`SweepPlan::evaluate_batch_workers`] to pin an explicit count
    /// (explicit counts are honored unconditionally).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any point has the wrong arity or contains a
    /// zero depth; no evaluation happens in that case.
    pub fn evaluate_batch<P>(
        &self,
        points: &[P],
        parallel: bool,
    ) -> Result<Vec<IncrementalOutcome>, PlanError>
    where
        P: AsRef<[usize]> + Sync,
    {
        let workers = if parallel {
            self.auto_workers(points.len())
        } else {
            1
        };
        self.evaluate_batch_workers(points, workers)
    }

    /// [`SweepPlan::evaluate_batch`] with an explicit worker count (clamped
    /// to at least one; one worker solves the batch on the calling thread).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any point has the wrong arity or contains a
    /// zero depth; no evaluation happens in that case.
    pub fn evaluate_batch_workers<P>(
        &self,
        points: &[P],
        workers: usize,
    ) -> Result<Vec<IncrementalOutcome>, PlanError>
    where
        P: AsRef<[usize]> + Sync,
    {
        for point in points {
            self.validate(point.as_ref())?;
        }
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let workers = workers.max(1).min(points.len());
        let chunk_size = points.len().div_ceil(workers);
        let chunks: Vec<&[P]> = points.chunks(chunk_size).collect();
        let per_chunk = pool::parallel_map(&chunks, workers, |chunk| {
            let mut eval = self.evaluator();
            chunk
                .iter()
                .map(|p| eval.evaluate_validated(p.as_ref()))
                .collect::<Vec<IncrementalOutcome>>()
        });
        Ok(per_chunk.into_iter().flatten().collect())
    }
}

/// Reusable per-thread evaluation state for one [`SweepPlan`].
///
/// The first [`PlanEvaluator::evaluate`] call runs a full levelized
/// relaxation; subsequent calls recompute only nodes downstream of FIFOs
/// whose depth changed since the previous point.
#[derive(Debug)]
pub struct PlanEvaluator<'p> {
    plan: &'p SweepPlan,
    /// Longest-path time of every node under `depths` (valid once
    /// `depths` is non-empty).
    time: Vec<u64>,
    /// Depth vector `time` currently reflects; empty before the first
    /// evaluation.
    depths: Vec<usize>,
    /// Worklist for delta evaluation, ordered by topological rank.
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Deduplication flags for `heap`.
    queued: Vec<bool>,
}

impl PlanEvaluator<'_> {
    /// The plan this evaluator runs against.
    pub fn plan(&self) -> &SweepPlan {
        self.plan
    }

    /// Evaluates one depth vector: recomputes node times (fully on first
    /// use, incrementally afterwards), re-checks every recorded constraint
    /// and reports the latency, exactly as
    /// [`IncrementalState::try_with_depths`] would.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for wrong-arity or zero-depth vectors.
    pub fn evaluate(&mut self, depths: &[usize]) -> Result<IncrementalOutcome, PlanError> {
        self.plan.validate(depths)?;
        Ok(self.evaluate_validated(depths))
    }

    /// Evaluation core; `depths` must already be validated.
    fn evaluate_validated(&mut self, depths: &[usize]) -> IncrementalOutcome {
        // Infeasible depths (a committed blocking write with no freeing
        // read) are rejected before touching the time buffer, exactly as
        // `try_with_depths` rejects them before re-finalizing; the buffer
        // keeps reflecting `self.depths` for the next delta evaluation.
        if let Some(fifo) = self.plan.first_infeasible_fifo(depths) {
            return IncrementalOutcome::DepthInfeasible { fifo };
        }
        // Points below the cached order's supported bound may introduce WAR
        // edges that go backwards in that order (they may even be cyclic,
        // i.e. deadlock); they take the allocating slow path, which derives
        // its own order per point.
        if depths
            .iter()
            .zip(&self.plan.supported_min_depth)
            .any(|(&d, &m)| d < m)
        {
            return self.evaluate_slow(depths);
        }
        if self.depths.is_empty() {
            self.full_relaxation(depths);
        } else if self.depths != depths {
            self.delta_update(depths);
        }
        self.depths.clear();
        self.depths.extend_from_slice(depths);
        self.verdict()
    }

    /// Constraint re-check plus latency over the current time buffer.
    fn verdict(&self) -> IncrementalOutcome {
        for (index, c) in self.plan.constraints.iter().enumerate() {
            if self.check_constraint(c) != c.outcome {
                return IncrementalOutcome::ConstraintViolated { constraint: index };
            }
        }
        IncrementalOutcome::Valid {
            total_cycles: self.latency(),
        }
    }

    /// The allocating per-point path for depths below the cached order's
    /// bound: a fresh Kahn pass over base + overlay edges (reporting
    /// [`IncrementalOutcome::DepthCyclic`] when none exists, bit-identical
    /// to `try_with_depths`), then a relaxation in that order. The time
    /// buffer it leaves behind is exact, so later fast-path points can
    /// still delta-update from it.
    fn evaluate_slow(&mut self, depths: &[usize]) -> IncrementalOutcome {
        let plan = self.plan;
        let n = plan.fwd.len();
        let mut overlay: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (f, lane) in plan.lanes.iter().enumerate() {
            let depth = depths[f];
            for iw in depth..lane.writes.len() {
                if !lane.write_blocking[iw] {
                    continue;
                }
                if let Some(&read) = lane.reads.get(iw - depth) {
                    overlay[read as usize].push(lane.writes[iw]);
                }
            }
        }
        let mut indegree = vec![0u32; n];
        for (u, targets) in overlay.iter().enumerate() {
            for (v, _) in plan.fwd.successors(NodeId(u as u32)) {
                indegree[v.index()] += 1;
            }
            for &v in targets {
                indegree[v as usize] += 1;
            }
        }
        let mut ready: Vec<u32> = (0..n as u32)
            .filter(|&u| indegree[u as usize] == 0)
            .collect();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            order.push(u);
            for (v, _) in plan.fwd.successors(NodeId(u)) {
                indegree[v.index()] -= 1;
                if indegree[v.index()] == 0 {
                    ready.push(v.0);
                }
            }
            for &v in &overlay[u as usize] {
                indegree[v as usize] -= 1;
                if indegree[v as usize] == 0 {
                    ready.push(v);
                }
            }
        }
        if order.len() != n {
            return IncrementalOutcome::DepthCyclic;
        }
        self.time.clear();
        self.time.extend_from_slice(plan.fwd.base_times());
        for &u in &order {
            let tu = self.time[u as usize];
            for (v, w) in plan.fwd.successors(NodeId(u)) {
                let cand = tu.saturating_add_signed(w);
                if cand > self.time[v.index()] {
                    self.time[v.index()] = cand;
                }
            }
            for &v in &overlay[u as usize] {
                let cand = tu.saturating_add(1);
                if cand > self.time[v as usize] {
                    self.time[v as usize] = cand;
                }
            }
        }
        self.depths.clear();
        self.depths.extend_from_slice(depths);
        self.verdict()
    }

    /// One full pass over the cached topological order, relaxing CSR
    /// successors plus the WAR edge each read implies under `depths`.
    fn full_relaxation(&mut self, depths: &[usize]) {
        let plan = self.plan;
        self.time.clear();
        self.time.extend_from_slice(plan.fwd.base_times());
        for &u in &plan.topo {
            let tu = self.time[u as usize];
            for (v, w) in plan.fwd.successors(NodeId(u)) {
                let cand = tu.saturating_add_signed(w);
                if cand > self.time[v.index()] {
                    self.time[v.index()] = cand;
                }
            }
            if let Some(target) = war_successor(plan, depths, u) {
                let cand = tu.saturating_add(1);
                if cand > self.time[target as usize] {
                    self.time[target as usize] = cand;
                }
            }
        }
    }

    /// Recomputes only nodes downstream of FIFOs whose depth changed,
    /// using a topo-rank-ordered worklist. Propagation stops at any node
    /// whose recomputed time is unchanged.
    fn delta_update(&mut self, depths: &[usize]) {
        let plan = self.plan;
        // Seed with every blocking write whose WAR predecessor differs
        // between the old and new depth of a changed FIFO. Removed edges
        // can *lower* times, so seeds are recomputed from scratch off the
        // transpose rather than merely relaxed.
        for (f, lane) in plan.lanes.iter().enumerate() {
            let (old, new) = (self.depths[f], depths[f]);
            if old == new {
                continue;
            }
            for iw in old.min(new)..lane.writes.len() {
                if lane.war_pred(iw, old) != lane.war_pred(iw, new) {
                    let node = lane.writes[iw];
                    if !self.queued[node as usize] {
                        self.queued[node as usize] = true;
                        self.heap
                            .push(Reverse((plan.topo_rank[node as usize], node)));
                    }
                }
            }
        }

        while let Some(Reverse((_, u))) = self.heap.pop() {
            self.queued[u as usize] = false;
            let mut t = plan.rev.base(NodeId(u));
            for (p, w) in plan.rev.successors(NodeId(u)) {
                let cand = self.time[p.index()].saturating_add_signed(w);
                if cand > t {
                    t = cand;
                }
            }
            let (f, iw) = plan.war_write[u as usize];
            if f != NONE {
                if let Some(read) = plan.lanes[f as usize].war_pred(iw as usize, depths[f as usize])
                {
                    let cand = self.time[read as usize].saturating_add(1);
                    if cand > t {
                        t = cand;
                    }
                }
            }
            if t == self.time[u as usize] {
                continue;
            }
            self.time[u as usize] = t;
            for (v, _) in plan.fwd.successors(NodeId(u)) {
                if !self.queued[v.index()] {
                    self.queued[v.index()] = true;
                    self.heap.push(Reverse((plan.topo_rank[v.index()], v.0)));
                }
            }
            if let Some(target) = war_successor(plan, depths, u) {
                if !self.queued[target as usize] {
                    self.queued[target as usize] = true;
                    self.heap
                        .push(Reverse((plan.topo_rank[target as usize], target)));
                }
            }
        }
    }

    /// Replicates `IncrementalState::evaluate_constraint` against the
    /// plan's time buffer.
    fn check_constraint(&self, c: &CompiledConstraint) -> bool {
        let lane = &self.plan.lanes[c.fifo as usize];
        let query_time = self.time[c.node as usize];
        let ordinal = c.ordinal as usize;
        if c.write_side {
            let depth = self.depths[c.fifo as usize];
            if ordinal <= depth {
                return true;
            }
            match lane.reads.get(ordinal - depth - 1) {
                Some(&read) => self.time[read as usize] < query_time,
                None => false,
            }
        } else {
            match lane.writes.get(ordinal - 1) {
                Some(&write) => self.time[write as usize] < query_time,
                None => false,
            }
        }
    }

    /// Replicates `IncrementalState::latency_from_times`.
    fn latency(&self) -> u64 {
        let end = self
            .plan
            .end_nodes
            .iter()
            .map(|&n| self.time[n as usize])
            .max();
        match end {
            Some(t) => t + 1,
            None => self.time.iter().copied().max().unwrap_or(0),
        }
    }
}

/// The node the WAR edge from node `u` targets under `depths`, if `u` is a
/// committed read whose paired blocking write exists.
fn war_successor(plan: &SweepPlan, depths: &[usize], u: u32) -> Option<u32> {
    let (f, j) = plan.war_read[u as usize];
    if f == NONE {
        return None;
    }
    let lane = &plan.lanes[f as usize];
    let iw = (j as usize).checked_add(depths[f as usize])?;
    if iw < lane.writes.len() && lane.write_blocking[iw] {
        Some(lane.writes[iw])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim::test_fixtures::{nb_drop_counter, producer_consumer};
    use omnisim::{OmniBackend, OmniSimulator};
    use omnisim_api::{SimReport, Simulator};

    /// Deterministic xorshift64* so the randomized grids are reproducible.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn depth(&mut self, max: usize) -> usize {
            1 + (self.next() as usize) % max
        }
    }

    #[test]
    fn plan_matches_try_with_depths_on_randomized_points() {
        for design in [nb_drop_counter(48, 2, 3), producer_consumer(48, 3, 2)] {
            let baseline = OmniSimulator::new(&design).run().unwrap();
            let plan = SweepPlan::compile(&baseline.incremental).unwrap();
            let mut eval = plan.evaluator();
            let mut rng = Rng(0x5eed_cafe_f00d_0001);
            for _ in 0..60 {
                let depths: Vec<usize> = (0..plan.fifo_count()).map(|_| rng.depth(130)).collect();
                let expected = baseline.incremental.try_with_depths(&depths).unwrap();
                let got = eval.evaluate(&depths).unwrap();
                assert_eq!(got, expected, "depths {depths:?}");
            }
        }
    }

    #[test]
    fn delta_evaluation_matches_a_fresh_full_relaxation() {
        // Walk one evaluator through a depth sequence with small deltas and
        // check every answer against a brand-new evaluator (which must do a
        // full relaxation) — this isolates the incremental update path.
        let design = nb_drop_counter(40, 2, 3);
        let baseline = OmniSimulator::new(&design).run().unwrap();
        let plan = SweepPlan::compile(&baseline.incremental).unwrap();
        let mut warm = plan.evaluator();
        let mut rng = Rng(0xdead_beef_0000_0002);
        let mut depths = vec![2usize];
        for step in 0..50 {
            // Mostly small moves, occasionally a jump.
            depths[0] = if step % 7 == 0 {
                rng.depth(128)
            } else {
                (depths[0] + rng.depth(3)).saturating_sub(1).max(1)
            };
            let warm_answer = warm.evaluate(&depths).unwrap();
            let cold_answer = plan.evaluator().evaluate(&depths).unwrap();
            assert_eq!(warm_answer, cold_answer, "step {step} depths {depths:?}");
        }
    }

    #[test]
    fn batch_parallel_sequential_and_manual_agree() {
        let design = nb_drop_counter(32, 1, 4);
        let baseline = OmniSimulator::new(&design).run().unwrap();
        let plan = SweepPlan::compile(&baseline.incremental).unwrap();
        let points: Vec<Vec<usize>> = (1..=64).map(|d| vec![d]).collect();
        let sequential = plan.evaluate_batch(&points, false).unwrap();
        let parallel = plan.evaluate_batch(&points, true).unwrap();
        assert_eq!(sequential, parallel);
        for (point, outcome) in points.iter().zip(&sequential) {
            let manual = baseline.incremental.try_with_depths(point).unwrap();
            assert_eq!(*outcome, manual, "depths {point:?}");
        }
    }

    #[test]
    fn validation_errors_are_reported_before_any_work() {
        let design = producer_consumer(8, 2, 1);
        let baseline = OmniSimulator::new(&design).run().unwrap();
        let plan = SweepPlan::compile(&baseline.incremental).unwrap();
        assert_eq!(
            plan.evaluator().evaluate(&[1, 2]).unwrap_err(),
            PlanError::DepthMismatch {
                expected: 1,
                got: 2
            }
        );
        assert_eq!(
            plan.evaluator().evaluate(&[0]).unwrap_err(),
            PlanError::ZeroDepth { fifo: 0 }
        );
        assert_eq!(
            plan.evaluate_batch(&[vec![1], vec![0]], true).unwrap_err(),
            PlanError::ZeroDepth { fifo: 0 }
        );
        let omni: OmniError = PlanError::DepthMismatch {
            expected: 1,
            got: 2,
        }
        .into();
        assert_eq!(
            omni,
            OmniError::DepthMismatch {
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn plan_compiles_from_a_session_artifact() {
        let design = producer_consumer(16, 2, 1);
        let backend = OmniBackend::default();
        assert!(
            backend.capabilities().compiled_dse,
            "the omnisim backend advertises a plan-compilable session"
        );
        let compiled = backend.compile(&design).unwrap();
        let plan = SweepPlan::from_compiled(compiled.as_ref())
            .expect("the omnisim artifact downcasts")
            .expect("plan compiles");
        assert_eq!(plan.fifo_count(), 1);
        assert_eq!(plan.original_depths(), &[2]);
        assert!(plan.node_count() > 0);
        assert!(plan.edge_count() > 0);
        assert!(plan.constraint_count() <= plan.node_count());

        // Non-omnisim artifacts do not downcast.
        let rtl = omnisim_rtlsim::RtlBackend::default()
            .compile(&design)
            .unwrap();
        assert!(SweepPlan::from_compiled(rtl.as_ref()).is_none());
    }

    /// A one-shot report's extras payload (`IncrementalState`) and the
    /// session artifact built around the *same* baseline run must compile
    /// to the identical plan (`SweepPlan::from_report` is gone; extras
    /// consumers call [`SweepPlan::compile`] on the state directly).
    #[test]
    fn extras_state_compiles_identical_plan_to_session_artifact() {
        use omnisim::{CompiledOmni, OmniOutcome, OmniReport, SimConfig, SimStats};

        let design = nb_drop_counter(32, 2, 3);
        let native = OmniSimulator::new(&design).run().unwrap();
        assert!(native.outcome.is_completed());
        let mut report: SimReport = native.into();
        let via_report = SweepPlan::compile(
            report
                .extras
                .get::<IncrementalState>()
                .expect("one-shot reports still ship the extras payload"),
        )
        .expect("plan compiles");

        // Rebuild the session artifact around the very same baseline.
        let stats = *report.extras.get::<SimStats>().unwrap();
        let incremental = report.extras.take::<IncrementalState>().unwrap();
        let baseline = OmniReport {
            outcome: OmniOutcome::Completed,
            outputs: report.outputs.clone(),
            total_cycles: report.total_cycles.unwrap(),
            timings: report.timings,
            stats,
            incremental,
        };
        let session = CompiledOmni::from_baseline(&design, SimConfig::default(), baseline);
        let via_session = SweepPlan::from_compiled(&session)
            .expect("artifact downcasts")
            .expect("plan compiles");

        assert_eq!(via_report.fifo_count(), via_session.fifo_count());
        assert_eq!(via_report.node_count(), via_session.node_count());
        assert_eq!(via_report.edge_count(), via_session.edge_count());
        assert_eq!(
            via_report.constraint_count(),
            via_session.constraint_count()
        );
        assert_eq!(via_report.original_depths(), via_session.original_depths());
        // …and they answer every probe bit-identically.
        let points: Vec<Vec<usize>> = (1..=32).map(|d| vec![d]).collect();
        assert_eq!(
            via_report.evaluate_batch(&points, false).unwrap(),
            via_session.evaluate_batch(&points, false).unwrap()
        );
    }
}
