//! The bytecode backend of the compiled DSE engine: a [`SweepPlan`]
//! lowered into a register-allocated linear program executed by a tight
//! zero-dependency VM loop.
//!
//! The [`PlanEvaluator`](crate::PlanEvaluator) interprets the frozen CSR
//! graph: every point walks edge lists through two levels of indirection,
//! resolves each FIFO's depth-parameterized WAR edge by scanning *all* of
//! its writes, and re-derives worklist order from a binary heap.
//! [`SweepPlan::compile_bytecode`] removes all of that ahead of time:
//!
//! * **Register allocation** — nodes are renumbered by topological rank,
//!   so register `r`'s value depends only on registers `< r` and the whole
//!   program is one forward sweep over a flat `u64` time tape.
//! * **Linear program** — each register's incoming edges become a
//!   contiguous run of `RELAX dst, src, weight` instructions (gather form:
//!   the run *computes* `dst` from already-final registers), and each
//!   blocking write's depth-parameterized edge becomes one
//!   `WAR dst, fifo, slot` instruction that resolves `reads[slot − depth]`
//!   against the current depth vector at run time.
//! * **Per-FIFO dirty-set entry points** — the WAR instructions of each
//!   FIFO double as the delta-evaluation entry points: when a depth
//!   changes, evaluation jumps straight to the affected instruction runs
//!   (there is one per *blocking* write, typically a handful) instead of
//!   scanning every write of the FIFO, then propagates through a bitset
//!   worklist in register order, stopping wherever a recomputed register
//!   is unchanged.
//!
//! Outcomes are **bit-identical** to the interpreter and to
//! [`IncrementalState::try_with_depths`]: infeasible depths are rejected
//! in the same order ([`IncrementalOutcome::DepthInfeasible`]), points
//! below the cached order's supported bound take the same allocating Kahn
//! slow path (reporting [`IncrementalOutcome::DepthCyclic`] when no order
//! exists), constraints are re-checked in recording order, and the latency
//! formula is unchanged. The differential fuzz oracle pins this three ways
//! (`VM == PlanEvaluator == try_with_depths`) across every generator
//! preset.
//!
//! Programs serialize through `omnisim-codec` ([`CompiledPlan::encode`] /
//! [`CompiledPlan::decode`], magic `OSBC`), so a serving tier can persist
//! them in its `ArtifactStore` next to the session artifacts they were
//! lowered from and warm-start the DSE fast path across process restarts.

use crate::plan::{PlanError, SweepPlan, NONE};
use omnisim::IncrementalOutcome;
use omnisim_codec::{frame, unframe, ByteReader, ByteWriter, CodecError};
use omnisim_graph::NodeId;

/// Magic bytes of the encoded bytecode program ("OmniSim Bytecode").
pub const BYTECODE_MAGIC: [u8; 4] = *b"OSBC";

/// Version of the encoded bytecode program format.
pub const BYTECODE_VERSION: u16 = 1;

/// One 16-byte `RELAX dst, src, weight` instruction of the linear
/// program: `a` is the source register, `b` the edge weight, and the
/// effect is `tape[dst] = max(tape[dst], tape[src] + weight)`.
///
/// `dst` is implicit: instructions are grouped by destination register in
/// ascending order ([`CompiledPlan::group_start`]). The depth-dependent
/// `WAR dst, fifo, slot` instruction is not in the stream — a register has
/// at most one (its node is at most one FIFO's blocking write), so it
/// lives in the per-register side table [`CompiledPlan::war_of`], applied
/// after the register's `RELAX` run. That factoring is also what gives
/// delta evaluation its fast path: the `RELAX` prefix of a run changes
/// only when a source register changes, so a pure depth change re-applies
/// just the `WAR` tail against the cached prefix value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Op {
    a: u32,
    b: i64,
}

/// Per-FIFO access lane in register space (same shape as the plan's node
/// -space lane, so feasibility and constraint checks replicate verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
struct VmLane {
    /// Register of each committed write, in commit order.
    writes: Vec<u32>,
    /// Blocking flag of each committed write.
    write_blocking: Vec<bool>,
    /// Register of each committed read, in commit order.
    reads: Vec<u32>,
}

/// A recorded query constraint with its node rewritten to register space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VmConstraint {
    write_side: bool,
    fifo: u32,
    ordinal: u32,
    reg: u32,
    outcome: bool,
}

/// One WAR instruction's location: the occupancy slot (write index) and
/// the destination register whose instruction run it lives in. Each FIFO's
/// list of these is its **dirty-set entry table**: a depth change seeds
/// delta evaluation with exactly these registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WarEntry {
    slot: u32,
    dst: u32,
}

/// A write-side constraint of one FIFO, carrying its recording index so a
/// per-FIFO scan still reports the global first-mismatch position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WsConstraint {
    index: u32,
    ordinal: u32,
    reg: u32,
    outcome: bool,
}

/// A read-side constraint: depth-independent, so its result is fixed for a
/// given tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RsConstraint {
    index: u32,
    fifo: u32,
    ordinal: u32,
    reg: u32,
    outcome: bool,
}

/// A [`SweepPlan`] lowered to a register-allocated linear program.
///
/// Self-contained (it embeds everything evaluation needs, including the
/// forward graph for the sub-minimum-depth slow path), `Send + Sync`, and
/// serializable with [`CompiledPlan::encode`] / [`CompiledPlan::decode`].
/// Build one with [`SweepPlan::compile_bytecode`]; evaluate with
/// [`CompiledPlan::evaluate`] / [`CompiledPlan::evaluate_batch`] or a
/// reusable [`CompiledVm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPlan {
    /// Number of registers (= plan nodes); the time tape's length.
    regs: u32,
    /// Base time of every register (its node's base, in register order).
    base: Vec<u64>,
    /// The linear program, grouped by destination register ascending.
    ops: Vec<Op>,
    /// Register → first instruction of its run (`regs + 1` entries).
    group_start: Vec<u32>,
    /// Forward successors in register space (CSR rows), for worklist
    /// propagation and the slow path's Kahn pass.
    fwd_row: Vec<u32>,
    fwd_col: Vec<u32>,
    fwd_weight: Vec<i64>,
    /// Per-FIFO access lanes in register space.
    lanes: Vec<VmLane>,
    /// Per-FIFO dirty-set entry points: one per blocking write.
    war_entries: Vec<Vec<WarEntry>>,
    /// Per-FIFO clamp for the delta-probe memo: beyond the FIFO's highest
    /// entry slot every `WAR` tail is gone, so all deeper depths share one
    /// memo slot.
    probe_clamp: Vec<u32>,
    /// Register → its `WAR` instruction `(fifo, occupancy slot)`, or
    /// `(NONE, NONE)` — at most one per register, applied after its
    /// `RELAX` run.
    war_of: Vec<(u32, u32)>,
    /// Per-FIFO infeasibility threshold (highest blocking-write slot minus
    /// the read count): the depth is infeasible iff it is ≤ this, with 0
    /// meaning no validated depth can be, since depths are ≥ 1.
    infeasible_thr: Vec<u32>,
    /// Register → `(fifo, read index)` when it is a committed read.
    read_of: Vec<(u32, u32)>,
    /// Flat constraint table, in the baseline's recording order.
    constraints: Vec<VmConstraint>,
    /// The write-side constraints bucketed per FIFO (recording order
    /// within each bucket): for a fixed tape, a bucket's first mismatch
    /// depends only on that FIFO's depth, which is what lets the VM
    /// memoize verdicts.
    ws_by_fifo: Vec<Vec<WsConstraint>>,
    /// Per-FIFO start offsets (last entry = total size) into the VM's flat
    /// verdict memo: FIFO `f` owns `ws_memo_off[f] + 0..=max ordinal`.
    ws_memo_off: Vec<u32>,
    /// Per-FIFO start offsets into the VM's flat delta-probe memo: FIFO
    /// `f` owns `probe_off[f] + 0..=probe_clamp[f]`.
    probe_off: Vec<u32>,
    /// The read-side constraints: their results depend on the tape alone.
    read_side: Vec<RsConstraint>,
    /// True when every supported minimum depth is ≤ 1, letting the hot
    /// path skip the slow-path routing check entirely (validation already
    /// guarantees depths ≥ 1).
    min_depth_trivial: bool,
    /// End register of every task that finished.
    end_regs: Vec<u32>,
    /// FIFO depths of the baseline run.
    original_depths: Vec<usize>,
    /// Per-FIFO minimum depth the register order supports; probes below it
    /// take the allocating slow path, exactly as in the interpreter.
    supported_min_depth: Vec<usize>,
}

impl CompiledPlan {
    /// Lowers a frozen plan into its bytecode program. Total: every
    /// successfully compiled [`SweepPlan`] lowers.
    pub(crate) fn lower(plan: &SweepPlan) -> CompiledPlan {
        let n = plan.fwd.len();
        assert!(
            (n as u64) < NONE as u64 && (plan.lanes.len() as u64) < NONE as u64,
            "plan size exceeds the bytecode register space"
        );
        let reg_of = |node: u32| plan.topo_rank[node as usize];

        let mut base = Vec::with_capacity(n);
        let mut ops = Vec::new();
        let mut group_start = Vec::with_capacity(n + 1);
        let mut fwd_row = Vec::with_capacity(n + 1);
        let mut fwd_col = Vec::new();
        let mut fwd_weight = Vec::new();
        for r in 0..n {
            let node = plan.topo[r];
            base.push(plan.fwd.base(NodeId(node)));
            group_start.push(ops.len() as u32);
            for (pred, weight) in plan.rev.successors(NodeId(node)) {
                ops.push(Op {
                    a: reg_of(pred.0),
                    b: weight,
                });
            }
            fwd_row.push(fwd_col.len() as u32);
            for (succ, weight) in plan.fwd.successors(NodeId(node)) {
                fwd_col.push(reg_of(succ.0));
                fwd_weight.push(weight);
            }
        }
        group_start.push(ops.len() as u32);
        fwd_row.push(fwd_col.len() as u32);

        let lanes: Vec<VmLane> = plan
            .lanes
            .iter()
            .map(|lane| VmLane {
                writes: lane.writes.iter().map(|&w| reg_of(w)).collect(),
                write_blocking: lane.write_blocking.clone(),
                reads: lane.reads.iter().map(|&r| reg_of(r)).collect(),
            })
            .collect();
        let constraints = plan
            .constraints
            .iter()
            .map(|c| VmConstraint {
                write_side: c.write_side,
                fifo: c.fifo,
                ordinal: c.ordinal,
                reg: reg_of(c.node),
                outcome: c.outcome,
            })
            .collect();
        let end_regs = plan.end_nodes.iter().map(|&node| reg_of(node)).collect();

        CompiledPlan::assemble(
            n as u32,
            base,
            ops,
            group_start,
            fwd_row,
            fwd_col,
            fwd_weight,
            lanes,
            constraints,
            end_regs,
            plan.original_depths.clone(),
            plan.supported_min_depth.clone(),
        )
    }

    /// Builds a program from its serialized fields, computing every
    /// derived table (dirty-set entries, feasibility bounds, read lookup,
    /// verdict buckets) — shared by [`CompiledPlan::lower`] and
    /// [`CompiledPlan::decode`] so both paths agree structurally.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        regs: u32,
        base: Vec<u64>,
        ops: Vec<Op>,
        group_start: Vec<u32>,
        fwd_row: Vec<u32>,
        fwd_col: Vec<u32>,
        fwd_weight: Vec<i64>,
        lanes: Vec<VmLane>,
        constraints: Vec<VmConstraint>,
        end_regs: Vec<u32>,
        original_depths: Vec<usize>,
        supported_min_depth: Vec<usize>,
    ) -> CompiledPlan {
        let mut ws_by_fifo: Vec<Vec<WsConstraint>> = vec![Vec::new(); lanes.len()];
        let mut read_side = Vec::new();
        for (index, c) in constraints.iter().enumerate() {
            if c.write_side {
                ws_by_fifo[c.fifo as usize].push(WsConstraint {
                    index: index as u32,
                    ordinal: c.ordinal,
                    reg: c.reg,
                    outcome: c.outcome,
                });
            } else {
                read_side.push(RsConstraint {
                    index: index as u32,
                    fifo: c.fifo,
                    ordinal: c.ordinal,
                    reg: c.reg,
                    outcome: c.outcome,
                });
            }
        }
        let war_entries = derive_war_entries(&lanes);
        let probe_clamp: Vec<u32> = war_entries
            .iter()
            .map(|entries| entries.iter().map(|e| e.slot + 1).max().unwrap_or(0))
            .collect();
        let mut probe_off = Vec::with_capacity(lanes.len() + 1);
        let mut total = 0u32;
        for &clamp in &probe_clamp {
            probe_off.push(total);
            total += clamp + 1;
        }
        probe_off.push(total);
        let mut ws_memo_off = Vec::with_capacity(lanes.len() + 1);
        let mut total = 0u32;
        for bucket in &ws_by_fifo {
            ws_memo_off.push(total);
            total += bucket.iter().map(|c| c.ordinal + 1).max().unwrap_or(0);
        }
        ws_memo_off.push(total);
        CompiledPlan {
            regs,
            base,
            ops,
            group_start,
            fwd_row,
            fwd_col,
            fwd_weight,
            probe_clamp,
            probe_off,
            ws_memo_off,
            war_entries,
            war_of: derive_war_of(&lanes, regs as usize),
            infeasible_thr: derive_max_blocking(&lanes)
                .iter()
                .zip(&lanes)
                .map(|(&max, lane)| {
                    if max == NONE {
                        0
                    } else {
                        (max as usize).saturating_sub(lane.reads.len()) as u32
                    }
                })
                .collect(),
            read_of: derive_read_of(&lanes, regs as usize),
            lanes,
            constraints,
            ws_by_fifo,
            read_side,
            min_depth_trivial: supported_min_depth.iter().all(|&m| m <= 1),
            end_regs,
            original_depths,
            supported_min_depth,
        }
    }

    /// Number of FIFOs the program was compiled for.
    pub fn fifo_count(&self) -> usize {
        self.lanes.len()
    }

    /// Number of registers on the time tape (= plan nodes).
    pub fn register_count(&self) -> usize {
        self.regs as usize
    }

    /// Number of instructions in the linear program.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of recorded constraints re-checked per point.
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// FIFO depths of the baseline run the program was lowered from.
    pub fn original_depths(&self) -> &[usize] {
        &self.original_depths
    }

    /// Creates a fresh VM with its own time tape and worklist; reuse it
    /// across points to keep delta evaluation.
    pub fn vm(&self) -> CompiledVm<'_> {
        let ws_memo = vec![MEMO_UNSET; *self.ws_memo_off.last().unwrap_or(&0) as usize];
        CompiledVm {
            plan: self,
            tape: Vec::with_capacity(self.regs as usize),
            relax_part: Vec::with_capacity(self.regs as usize),
            depths: Vec::new(),
            dirty: vec![0u64; (self.regs as usize).div_ceil(64)],
            full_dirty: vec![0u64; (self.regs as usize).div_ceil(64)],
            tape_dirty: true,
            fixed_first: MEMO_CLEAN,
            latency_memo: 0,
            ws_memo,
            memo_touched: Vec::new(),
            probe_memo: vec![PROBE_UNSET; *self.probe_off.last().unwrap_or(&0) as usize],
            probe_touched: Vec::new(),
        }
    }

    /// Validates one depth vector against the program (same rules as the
    /// interpreter: arity must match, depths must be ≥ 1).
    fn validate(&self, depths: &[usize]) -> Result<(), PlanError> {
        if depths.len() != self.lanes.len() {
            return Err(PlanError::DepthMismatch {
                expected: self.lanes.len(),
                got: depths.len(),
            });
        }
        if let Some(fifo) = depths.iter().position(|&d| d == 0) {
            return Err(PlanError::ZeroDepth { fifo });
        }
        Ok(())
    }

    /// Evaluates one depth vector on a fresh VM (one full program run).
    /// For sequences of related points, hold a [`CompiledPlan::vm`] instead
    /// and let delta evaluation skip the unaffected instruction runs.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for wrong-arity or zero-depth vectors.
    pub fn evaluate(&self, depths: &[usize]) -> Result<IncrementalOutcome, PlanError> {
        self.vm().evaluate(depths)
    }

    /// Estimated-work cutoff (points × registers) below which
    /// [`CompiledPlan::evaluate_batch`]`(…, parallel = true)` stays serial.
    /// The VM's per-point cost is an order of magnitude below the
    /// interpreter's, so the fixed parallel costs (thread spawn/join, one
    /// cold full program run per chunk, chunks losing the warm VM's memo
    /// locality) amortize nearly two orders of magnitude later than
    /// [`SweepPlan::PARALLEL_WORK_CUTOFF`].
    pub(crate) const PARALLEL_WORK_CUTOFF: usize = 128_000_000;

    fn auto_workers(&self, points: usize) -> usize {
        if points.saturating_mul(self.regs as usize) < Self::PARALLEL_WORK_CUTOFF {
            1
        } else {
            crate::pool::default_workers()
        }
    }

    /// Evaluates every point, in order, chunking across scoped worker
    /// threads when `parallel` is set and the batch's estimated work
    /// (points × registers) clears the VM's parallel cutoff — small
    /// batches stay serial, where one warm VM beats per-chunk cold starts.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any point has the wrong arity or contains
    /// a zero depth; no evaluation happens in that case.
    pub fn evaluate_batch<P>(
        &self,
        points: &[P],
        parallel: bool,
    ) -> Result<Vec<IncrementalOutcome>, PlanError>
    where
        P: AsRef<[usize]> + Sync,
    {
        let workers = if parallel {
            self.auto_workers(points.len())
        } else {
            1
        };
        self.evaluate_batch_workers(points, workers)
    }

    /// [`CompiledPlan::evaluate_batch`] with an explicit worker count
    /// (clamped to at least one and honored unconditionally).
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if any point has the wrong arity or contains
    /// a zero depth; no evaluation happens in that case.
    pub fn evaluate_batch_workers<P>(
        &self,
        points: &[P],
        workers: usize,
    ) -> Result<Vec<IncrementalOutcome>, PlanError>
    where
        P: AsRef<[usize]> + Sync,
    {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let workers = workers.max(1).min(points.len());
        if workers == 1 {
            // Serial: one warm VM, one pass — validation folds into the
            // per-point call and any error fails the batch as a whole.
            let mut vm = self.vm();
            let mut out = Vec::with_capacity(points.len());
            for point in points {
                out.push(vm.evaluate(point.as_ref())?);
            }
            return Ok(out);
        }
        for point in points {
            self.validate(point.as_ref())?;
        }
        let chunk_size = points.len().div_ceil(workers);
        let chunks: Vec<&[P]> = points.chunks(chunk_size).collect();
        let per_chunk = crate::pool::parallel_map(&chunks, workers, |chunk| {
            let mut vm = self.vm();
            chunk
                .iter()
                .map(|p| vm.evaluate_validated(p.as_ref()))
                .collect::<Vec<IncrementalOutcome>>()
        });
        Ok(per_chunk.into_iter().flatten().collect())
    }

    /// Serializes the program into a framed, checksummed, versioned byte
    /// stream (magic [`BYTECODE_MAGIC`], version [`BYTECODE_VERSION`]) —
    /// the same `omnisim-codec` discipline as the backend artifacts, so a
    /// serving tier can persist lowered programs in its store.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(self.regs);
        w.seq(self.base.iter(), |w, &t| w.u64(t));
        w.seq(self.ops.iter(), |w, op| {
            w.u32(op.a);
            w.i64(op.b);
        });
        w.seq(self.group_start.iter(), |w, &g| w.u32(g));
        w.seq(self.fwd_row.iter(), |w, &r| w.u32(r));
        w.seq(self.fwd_col.iter(), |w, &c| w.u32(c));
        w.seq(self.fwd_weight.iter(), |w, &x| w.i64(x));
        w.seq(self.lanes.iter(), |w, lane| {
            w.seq(lane.writes.iter(), |w, &r| w.u32(r));
            w.seq(lane.write_blocking.iter(), |w, &b| w.bool(b));
            w.seq(lane.reads.iter(), |w, &r| w.u32(r));
        });
        w.seq(self.constraints.iter(), |w, c| {
            w.bool(c.write_side);
            w.u32(c.fifo);
            w.u32(c.ordinal);
            w.u32(c.reg);
            w.bool(c.outcome);
        });
        w.seq(self.end_regs.iter(), |w, &r| w.u32(r));
        w.seq(self.original_depths.iter(), |w, &d| w.usize(d));
        w.seq(self.supported_min_depth.iter(), |w, &d| w.usize(d));
        frame(BYTECODE_MAGIC, BYTECODE_VERSION, &w.into_bytes())
    }

    /// Decodes a program from [`CompiledPlan::encode`]'s byte stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a bad frame (wrong magic, unsupported
    /// version, checksum mismatch) or a structurally invalid payload —
    /// corrupted files degrade to a re-lowering, never a panic.
    pub fn decode(bytes: &[u8]) -> Result<CompiledPlan, CodecError> {
        let payload = unframe(BYTECODE_MAGIC, BYTECODE_VERSION, bytes)?;
        let mut r = ByteReader::new(payload);
        let regs = r.u32()?;
        let base = r.seq(|r| r.u64())?;
        let ops = r.seq(|r| {
            Ok(Op {
                a: r.u32()?,
                b: r.i64()?,
            })
        })?;
        let group_start = r.seq(|r| r.u32())?;
        let fwd_row = r.seq(|r| r.u32())?;
        let fwd_col = r.seq(|r| r.u32())?;
        let fwd_weight = r.seq(|r| r.i64())?;
        let lanes: Vec<VmLane> = r.seq(|r| {
            Ok(VmLane {
                writes: r.seq(|r| r.u32())?,
                write_blocking: r.seq(|r| r.bool())?,
                reads: r.seq(|r| r.u32())?,
            })
        })?;
        let constraints = r.seq(|r| {
            Ok(VmConstraint {
                write_side: r.bool()?,
                fifo: r.u32()?,
                ordinal: r.u32()?,
                reg: r.u32()?,
                outcome: r.bool()?,
            })
        })?;
        let end_regs = r.seq(|r| r.u32())?;
        let original_depths = r.seq(|r| r.usize())?;
        let supported_min_depth = r.seq(|r| r.usize())?;
        r.finish()?;

        let n = regs as usize;
        let in_regs = |xs: &[u32]| xs.iter().all(|&x| (x as usize) < n);
        let monotone_to = |xs: &[u32], limit: usize| {
            xs.len() == n + 1
                && xs.first() == Some(&0)
                && xs.windows(2).all(|w| w[0] <= w[1])
                && xs.last().copied() == Some(limit as u32)
        };
        let structure_ok = base.len() == n
            && monotone_to(&group_start, ops.len())
            && monotone_to(&fwd_row, fwd_col.len())
            && fwd_weight.len() == fwd_col.len()
            && in_regs(&fwd_col)
            && in_regs(&end_regs)
            && ops.iter().all(|op| (op.a as usize) < n)
            && lanes.iter().all(|lane| {
                lane.write_blocking.len() == lane.writes.len()
                    && in_regs(&lane.writes)
                    && in_regs(&lane.reads)
            })
            && constraints
                .iter()
                .all(|c| (c.reg as usize) < n && (c.fifo as usize) < lanes.len())
            && original_depths.len() == lanes.len()
            && supported_min_depth.len() == lanes.len();
        if !structure_ok {
            return Err(CodecError::Invalid(
                "bytecode program structure is inconsistent".into(),
            ));
        }
        Ok(CompiledPlan::assemble(
            regs,
            base,
            ops,
            group_start,
            fwd_row,
            fwd_col,
            fwd_weight,
            lanes,
            constraints,
            end_regs,
            original_depths,
            supported_min_depth,
        ))
    }

    /// Replicates `IncrementalState::first_infeasible_fifo` (and the
    /// interpreter's copy of it) so rejection order is bit-identical:
    /// "some blocking write sits at slot ≥ depth + reads" is exactly
    /// "the highest blocking slot does", i.e. `depth ≤ max − reads`, so
    /// the per-point check is one precomputed threshold compare per FIFO
    /// instead of the interpreter's bool-slice scan.
    #[inline]
    fn first_infeasible_fifo(&self, depths: &[usize]) -> Option<usize> {
        depths
            .iter()
            .zip(&self.infeasible_thr)
            .position(|(&depth, &thr)| depth <= thr as usize)
    }
}

/// Per-FIFO highest blocking-write slot, [`NONE`] when there is none.
fn derive_max_blocking(lanes: &[VmLane]) -> Vec<u32> {
    lanes
        .iter()
        .map(|lane| {
            lane.write_blocking
                .iter()
                .rposition(|&blocking| blocking)
                .map_or(NONE, |slot| slot as u32)
        })
        .collect()
}

/// The per-FIFO dirty-set entry tables: one entry per blocking write.
fn derive_war_entries(lanes: &[VmLane]) -> Vec<Vec<WarEntry>> {
    lanes
        .iter()
        .map(|lane| {
            lane.writes
                .iter()
                .zip(&lane.write_blocking)
                .enumerate()
                .filter(|(_, (_, &blocking))| blocking)
                .map(|(slot, (&dst, _))| WarEntry {
                    slot: slot as u32,
                    dst,
                })
                .collect()
        })
        .collect()
}

/// Register → its `WAR` instruction `(fifo, occupancy slot)`; every
/// blocking write carries exactly one.
fn derive_war_of(lanes: &[VmLane], regs: usize) -> Vec<(u32, u32)> {
    let mut war_of = vec![(NONE, NONE); regs];
    for (f, lane) in lanes.iter().enumerate() {
        for (slot, (&reg, &blocking)) in lane.writes.iter().zip(&lane.write_blocking).enumerate() {
            if blocking {
                war_of[reg as usize] = (f as u32, slot as u32);
            }
        }
    }
    war_of
}

/// Register → `(fifo, read index)` lookup for WAR-successor propagation.
fn derive_read_of(lanes: &[VmLane], regs: usize) -> Vec<(u32, u32)> {
    let mut read_of = vec![(NONE, NONE); regs];
    for (f, lane) in lanes.iter().enumerate() {
        for (j, &reg) in lane.reads.iter().enumerate() {
            read_of[reg as usize] = (f as u32, j as u32);
        }
    }
    read_of
}

/// Memo slot not yet computed for the current tape.
const MEMO_UNSET: u32 = u32::MAX;
/// Memo slot computed: no mismatching constraint in this bucket.
const MEMO_CLEAN: u32 = u32::MAX - 1;

/// Delta-probe memo slot not yet computed for the current tape.
const PROBE_UNSET: u8 = 0;
/// Switching this FIFO to this (clamped) depth leaves the tape unchanged.
const PROBE_UNCHANGED: u8 = 1;
/// Switching this FIFO to this (clamped) depth moves at least one register.
const PROBE_CHANGED: u8 = 2;

/// The value a register's `WAR` tail contributes under `depths`: the
/// matching read's time + 1, or `None` when the write's occupancy slot is
/// below the depth or the read never commits.
#[inline]
fn war_time(
    plan: &CompiledPlan,
    tape: &[u64],
    fifo: usize,
    slot: usize,
    depths: &[usize],
) -> Option<u64> {
    let depth = depths[fifo];
    if slot < depth {
        return None;
    }
    plan.lanes[fifo]
        .reads
        .get(slot - depth)
        .map(|&read| tape[read as usize].saturating_add(1))
}

/// First mismatching write-side constraint of FIFO `f` under depth `d`
/// over `tape` ([`MEMO_CLEAN`] when the whole bucket holds). Replicates
/// `IncrementalState::evaluate_constraint`'s write side, scanning in
/// recording order with the interpreter's early exit.
fn ws_first_mismatch(plan: &CompiledPlan, tape: &[u64], f: usize, d: usize) -> u32 {
    let lane = &plan.lanes[f];
    for c in &plan.ws_by_fifo[f] {
        let result = if c.ordinal as usize <= d {
            true
        } else {
            match lane.reads.get(c.ordinal as usize - d - 1) {
                Some(&read) => tape[read as usize] < tape[c.reg as usize],
                None => false,
            }
        };
        if result != c.outcome {
            return c.index;
        }
    }
    MEMO_CLEAN
}

/// First mismatching read-side constraint over `tape` ([`MEMO_CLEAN`]
/// when they all hold); read-side checks are depth-independent.
fn first_fixed_mismatch(plan: &CompiledPlan, tape: &[u64]) -> u32 {
    for c in &plan.read_side {
        let lane = &plan.lanes[c.fifo as usize];
        let result = match c
            .ordinal
            .checked_sub(1)
            .and_then(|i| lane.writes.get(i as usize))
        {
            Some(&write) => tape[write as usize] < tape[c.reg as usize],
            None => false,
        };
        if result != c.outcome {
            return c.index;
        }
    }
    MEMO_CLEAN
}

/// Reusable per-thread execution state for one [`CompiledPlan`]: the flat
/// `u64` time tape, the depth vector it reflects, the bitset worklist
/// delta evaluation propagates through, and the verdict memo.
///
/// The first [`CompiledVm::evaluate`] runs the full program; subsequent
/// calls jump straight to the changed FIFOs' WAR entry points and
/// re-execute only the instruction runs whose registers actually move.
/// When none do — the overwhelmingly common case in a dense sweep — the
/// verdict is answered from the memo: for a fixed tape, each FIFO's
/// write-side first mismatch is a function of that FIFO's depth alone,
/// read-side results and latency are functions of the tape alone, and the
/// recording-order first mismatch is the minimum over those buckets.
#[derive(Debug)]
pub struct CompiledVm<'p> {
    plan: &'p CompiledPlan,
    /// Longest-path time of every register under `depths` (valid once
    /// `depths` is non-empty).
    tape: Vec<u64>,
    /// Each register's value from its base and `RELAX` run only (no `WAR`
    /// tail) — valid whenever `tape` is, because any source change forces
    /// a full re-execution of the register's run. A depth-only change can
    /// then re-apply just the `WAR` tail against this cached prefix.
    relax_part: Vec<u64>,
    /// Depth vector `tape` currently reflects; empty before the first
    /// evaluation.
    depths: Vec<usize>,
    /// Bitset worklist over registers; processed in ascending register
    /// order, which is topological order by construction.
    dirty: Vec<u64>,
    /// Subset of `dirty` whose registers need their full `RELAX` run
    /// re-executed (a source changed), not just the `WAR` tail.
    full_dirty: Vec<u64>,
    /// Set whenever the tape changes; the next verdict refreshes the
    /// tape-dependent memo state below before using it.
    tape_dirty: bool,
    /// First mismatching read-side constraint for the current tape
    /// ([`MEMO_CLEAN`] when none).
    fixed_first: u32,
    /// Latency of the current tape.
    latency_memo: u64,
    /// Flat verdict memo, FIFO-partitioned by the plan's `ws_memo_off`:
    /// clamped depth → first mismatching write-side constraint of that
    /// FIFO ([`MEMO_UNSET`] until computed for the current tape).
    ws_memo: Vec<u32>,
    /// The memo slots computed since the last tape change, so invalidation
    /// clears exactly what was touched.
    memo_touched: Vec<u32>,
    /// Flat delta-probe memo, FIFO-partitioned by the plan's `probe_off`:
    /// clamped depth → whether switching that FIFO there (with the current
    /// tape) moves any register. Like the verdict memo this is a pure
    /// function of (tape, that FIFO's depth): the probe compares
    /// `max(relax_part, war_time)` against the tape, and `war_time` reads
    /// only the probed FIFO's own depth.
    probe_memo: Vec<u8>,
    /// The probe-memo slots computed since the last tape change.
    probe_touched: Vec<u32>,
}

impl CompiledVm<'_> {
    /// The program this VM executes.
    pub fn plan(&self) -> &CompiledPlan {
        self.plan
    }

    /// Evaluates one depth vector, bit-identically to
    /// [`crate::PlanEvaluator::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for wrong-arity or zero-depth vectors.
    pub fn evaluate(&mut self, depths: &[usize]) -> Result<IncrementalOutcome, PlanError> {
        self.plan.validate(depths)?;
        Ok(self.evaluate_validated(depths))
    }

    /// Evaluation core; `depths` must already be validated.
    #[inline]
    fn evaluate_validated(&mut self, depths: &[usize]) -> IncrementalOutcome {
        if let Some(fifo) = self.plan.first_infeasible_fifo(depths) {
            return IncrementalOutcome::DepthInfeasible { fifo };
        }
        if !self.plan.min_depth_trivial
            && depths
                .iter()
                .zip(&self.plan.supported_min_depth)
                .any(|(&d, &m)| d < m)
        {
            return self.evaluate_slow(depths);
        }
        if self.depths.is_empty() {
            self.run_full(depths);
            self.tape_dirty = true;
        } else if self.run_delta(depths) {
            self.tape_dirty = true;
        }
        self.depths.clear();
        self.depths.extend_from_slice(depths);
        self.verdict()
    }

    /// Executes one register's full instruction run — its `RELAX` run from
    /// already-final lower registers (caching the prefix value), then its
    /// `WAR` tail if any.
    #[inline]
    fn exec_group(&mut self, r: usize, depths: &[usize]) -> u64 {
        let plan = self.plan;
        let mut t = plan.base[r];
        let run = &plan.ops[plan.group_start[r] as usize..plan.group_start[r + 1] as usize];
        for op in run {
            let cand = self.tape[op.a as usize].saturating_add_signed(op.b);
            if cand > t {
                t = cand;
            }
        }
        self.relax_part[r] = t;
        let (fifo, slot) = plan.war_of[r];
        if fifo != NONE {
            if let Some(w) = war_time(plan, &self.tape, fifo as usize, slot as usize, depths) {
                if w > t {
                    t = w;
                }
            }
        }
        t
    }

    /// One forward sweep over the whole program.
    fn run_full(&mut self, depths: &[usize]) {
        self.tape.clear();
        self.tape.extend_from_slice(&self.plan.base);
        self.relax_part.clear();
        self.relax_part.extend_from_slice(&self.plan.base);
        for r in 0..self.plan.regs as usize {
            let t = self.exec_group(r, depths);
            self.tape[r] = t;
        }
    }

    /// Delta execution. A depth change can only enter the tape through the
    /// changed FIFOs' blocking writes — their dirty-set entry tables — so
    /// probing exactly those registers (no state writes) decides whether
    /// the tape moves at all. Each FIFO's probe result is a pure function
    /// of (tape, that FIFO's depth) and is memoized like the verdict; on a
    /// hit the whole decision is one table load. When every probed FIFO
    /// reports no change — the overwhelmingly common case in a dense
    /// sweep — the tape is proven unchanged and evaluation is done.
    /// Otherwise fall back to the exact worklist pass. Returns whether any
    /// tape value changed.
    #[inline]
    fn run_delta(&mut self, depths: &[usize]) -> bool {
        let plan = self.plan;
        let mut fallback = false;
        for f in 0..depths.len() {
            if self.depths[f] == depths[f] {
                continue;
            }
            // Beyond the FIFO's highest entry slot every `WAR` tail is
            // gone, so all deeper depths share one memo slot.
            let idx = plan.probe_off[f] as usize + depths[f].min(plan.probe_clamp[f] as usize);
            let changed = match self.probe_memo[idx] {
                PROBE_UNCHANGED => false,
                PROBE_CHANGED => true,
                _ => {
                    let changed = self.probe_fifo(f, depths);
                    self.probe_memo[idx] = if changed {
                        PROBE_CHANGED
                    } else {
                        PROBE_UNCHANGED
                    };
                    self.probe_touched.push(idx as u32);
                    changed
                }
            };
            if changed {
                fallback = true;
                break;
            }
        }
        if !fallback {
            return false;
        }
        self.run_delta_worklist(depths)
    }

    /// Whether switching FIFO `f` to `depths[f]` (current tape) moves any
    /// of its entry registers: recompute each as cached `RELAX` prefix +
    /// `WAR` tail, no state writes.
    fn probe_fifo(&self, f: usize, depths: &[usize]) -> bool {
        let plan = self.plan;
        for entry in &plan.war_entries[f] {
            let r = entry.dst as usize;
            let mut t = self.relax_part[r];
            if let Some(w) = war_time(plan, &self.tape, f, entry.slot as usize, depths) {
                if w > t {
                    t = w;
                }
            }
            if t != self.tape[r] {
                return true;
            }
        }
        false
    }

    /// The exact delta pass: seed every entry of every changed FIFO into
    /// the bitset worklist, then re-execute dirty instruction runs in
    /// register order, propagating only where a register's recomputed
    /// value moved. Returns whether any tape value changed (the caller
    /// has already proven at least one will).
    fn run_delta_worklist(&mut self, depths: &[usize]) -> bool {
        let plan = self.plan;
        let mut pending = 0usize;
        let mut min_word = usize::MAX;
        for (f, entries) in plan.war_entries.iter().enumerate() {
            if self.depths[f] == depths[f] {
                continue;
            }
            for entry in entries {
                let (word, bit) = (entry.dst as usize / 64, 1u64 << (entry.dst % 64));
                if self.dirty[word] & bit == 0 {
                    self.dirty[word] |= bit;
                    pending += 1;
                    min_word = min_word.min(word);
                }
            }
        }
        if pending == 0 {
            return false;
        }
        let mut changed = false;
        let mut word = min_word;
        loop {
            let bits = self.dirty[word];
            if bits == 0 {
                word += 1;
                continue;
            }
            // Pop the lowest dirty register; everything marked while
            // processing it is strictly higher, so this sweep is a single
            // forward pass in topological order.
            self.dirty[word] = bits & (bits - 1);
            pending -= 1;
            let bit = bits & bits.wrapping_neg();
            let r = word * 64 + bits.trailing_zeros() as usize;
            let t = if self.full_dirty[word] & bit != 0 {
                // A source register moved: re-execute the whole run.
                self.full_dirty[word] &= !bit;
                self.exec_group(r, depths)
            } else {
                // Seeded by a depth change alone: the `RELAX` prefix is
                // untouched, so re-apply just the `WAR` tail against its
                // cached value.
                let mut t = self.relax_part[r];
                let (fifo, slot) = plan.war_of[r];
                if let Some(w) = war_time(plan, &self.tape, fifo as usize, slot as usize, depths) {
                    if w > t {
                        t = w;
                    }
                }
                t
            };
            if t != self.tape[r] {
                self.tape[r] = t;
                changed = true;
                for i in plan.fwd_row[r] as usize..plan.fwd_row[r + 1] as usize {
                    let succ = plan.fwd_col[i] as usize;
                    let (word, bit) = (succ / 64, 1u64 << (succ % 64));
                    if self.dirty[word] & bit == 0 {
                        self.dirty[word] |= bit;
                        pending += 1;
                    }
                    self.full_dirty[word] |= bit;
                }
                let (f, j) = plan.read_of[r];
                if f != NONE {
                    let lane = &plan.lanes[f as usize];
                    if let Some(slot) = (j as usize).checked_add(depths[f as usize]) {
                        if slot < lane.writes.len() && lane.write_blocking[slot] {
                            let succ = lane.writes[slot] as usize;
                            let (word, bit) = (succ / 64, 1u64 << (succ % 64));
                            if self.dirty[word] & bit == 0 {
                                self.dirty[word] |= bit;
                                pending += 1;
                            }
                        }
                    }
                }
            }
            if pending == 0 {
                return changed;
            }
        }
    }

    /// The allocating path for depths below the register order's bound: a
    /// fresh Kahn pass over base + overlay edges (reporting
    /// [`IncrementalOutcome::DepthCyclic`] when none exists), then a
    /// relaxation in that order — bit-identical to the interpreter's slow
    /// path, which this mirrors in register space. The tape it leaves
    /// behind is exact, so later fast-path points still delta-execute.
    fn evaluate_slow(&mut self, depths: &[usize]) -> IncrementalOutcome {
        let plan = self.plan;
        let n = plan.regs as usize;
        let mut overlay: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (f, lane) in plan.lanes.iter().enumerate() {
            let depth = depths[f];
            for iw in depth..lane.writes.len() {
                if !lane.write_blocking[iw] {
                    continue;
                }
                if let Some(&read) = lane.reads.get(iw - depth) {
                    overlay[read as usize].push(lane.writes[iw]);
                }
            }
        }
        let successors = |u: usize| {
            (plan.fwd_row[u] as usize..plan.fwd_row[u + 1] as usize)
                .map(|i| (plan.fwd_col[i], plan.fwd_weight[i]))
        };
        let mut indegree = vec![0u32; n];
        for (u, over) in overlay.iter().enumerate() {
            for (v, _) in successors(u) {
                indegree[v as usize] += 1;
            }
            for &v in over {
                indegree[v as usize] += 1;
            }
        }
        let mut ready: Vec<u32> = (0..n as u32)
            .filter(|&u| indegree[u as usize] == 0)
            .collect();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            order.push(u);
            for (v, _) in successors(u as usize) {
                indegree[v as usize] -= 1;
                if indegree[v as usize] == 0 {
                    ready.push(v);
                }
            }
            for &v in &overlay[u as usize] {
                indegree[v as usize] -= 1;
                if indegree[v as usize] == 0 {
                    ready.push(v);
                }
            }
        }
        if order.len() != n {
            return IncrementalOutcome::DepthCyclic;
        }
        self.tape_dirty = true;
        self.tape.clear();
        self.tape.extend_from_slice(&plan.base);
        self.relax_part.clear();
        self.relax_part.extend_from_slice(&plan.base);
        for &u in &order {
            let tu = self.tape[u as usize];
            for (v, w) in successors(u as usize) {
                let cand = tu.saturating_add_signed(w);
                if cand > self.tape[v as usize] {
                    self.tape[v as usize] = cand;
                }
                // Base edges are the `RELAX` runs, so the prefix cache
                // stays consistent for later fast-path deltas.
                if cand > self.relax_part[v as usize] {
                    self.relax_part[v as usize] = cand;
                }
            }
            for &v in &overlay[u as usize] {
                let cand = tu.saturating_add(1);
                if cand > self.tape[v as usize] {
                    self.tape[v as usize] = cand;
                }
            }
        }
        self.depths.clear();
        self.depths.extend_from_slice(depths);
        self.verdict()
    }

    /// Constraint re-check (recording order, first mismatch wins) plus the
    /// latency formula, over the current tape — answered from the memo.
    ///
    /// The recording-order first mismatch decomposes exactly: every
    /// constraint is in the read-side bucket or one FIFO's write-side
    /// bucket, each bucket scan returns *its* minimum recording index, and
    /// the global first mismatch is the minimum over buckets. Bucket
    /// results are pure functions of (tape) resp. (tape, that FIFO's
    /// depth), so they are cached until the tape changes.
    #[inline]
    fn verdict(&mut self) -> IncrementalOutcome {
        if self.tape_dirty {
            self.tape_dirty = false;
            for slot in self.memo_touched.drain(..) {
                self.ws_memo[slot as usize] = MEMO_UNSET;
            }
            for slot in self.probe_touched.drain(..) {
                self.probe_memo[slot as usize] = PROBE_UNSET;
            }
            self.fixed_first = first_fixed_mismatch(self.plan, &self.tape);
            self.latency_memo = self.latency();
        }
        let mut first = self.fixed_first;
        let off = &self.plan.ws_memo_off;
        for f in 0..off.len() - 1 {
            let (start, end) = (off[f] as usize, off[f + 1] as usize);
            if start == end {
                continue;
            }
            // Beyond the bucket's highest ordinal every write-side check
            // degenerates to `ordinal <= depth`, so deeper depths share
            // one memo slot.
            let d = self.depths[f].min(end - start - 1);
            let mut m = self.ws_memo[start + d];
            if m == MEMO_UNSET {
                m = ws_first_mismatch(self.plan, &self.tape, f, d);
                self.ws_memo[start + d] = m;
                self.memo_touched.push((start + d) as u32);
            }
            first = first.min(m);
        }
        if first == MEMO_CLEAN {
            IncrementalOutcome::Valid {
                total_cycles: self.latency_memo,
            }
        } else {
            IncrementalOutcome::ConstraintViolated {
                constraint: first as usize,
            }
        }
    }

    /// Replicates `IncrementalState::latency_from_times`.
    fn latency(&self) -> u64 {
        let end = self
            .plan
            .end_regs
            .iter()
            .map(|&r| self.tape[r as usize])
            .max();
        match end {
            Some(t) => t + 1,
            None => self.tape.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim::test_fixtures::{nb_drop_counter, producer_consumer};
    use omnisim::OmniSimulator;

    /// Deterministic xorshift64* so the randomized grids are reproducible.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        fn depth(&mut self, max: usize) -> usize {
            1 + (self.next() as usize) % max
        }
    }

    #[test]
    fn vm_matches_interpreter_and_try_with_depths_on_random_walks() {
        for design in [nb_drop_counter(48, 2, 3), producer_consumer(48, 3, 2)] {
            let baseline = OmniSimulator::new(&design).run().unwrap();
            let plan = SweepPlan::compile(&baseline.incremental).unwrap();
            let program = plan.compile_bytecode();
            let mut interp = plan.evaluator();
            let mut vm = program.vm();
            let mut rng = Rng(0xb17e_c0de_5eed_0001);
            let mut depths = vec![1usize; plan.fifo_count()];
            for step in 0..120 {
                // Mostly single-axis deltas (the delta path), occasionally
                // a jump (bigger dirty sets), rarely a repeat (no-op path).
                if step % 11 != 0 {
                    let axis = rng.next() as usize % depths.len();
                    depths[axis] = if step % 5 == 0 {
                        rng.depth(130)
                    } else {
                        (depths[axis] + rng.depth(3)).saturating_sub(1).max(1)
                    };
                }
                let expected = baseline.incremental.try_with_depths(&depths).unwrap();
                let from_interp = interp.evaluate(&depths).unwrap();
                let from_vm = vm.evaluate(&depths).unwrap();
                assert_eq!(from_vm, expected, "step {step} depths {depths:?}");
                assert_eq!(from_vm, from_interp, "step {step} depths {depths:?}");
            }
        }
    }

    #[test]
    fn one_shot_and_warm_vm_answers_agree() {
        let design = nb_drop_counter(40, 2, 3);
        let baseline = OmniSimulator::new(&design).run().unwrap();
        let program = SweepPlan::compile(&baseline.incremental)
            .unwrap()
            .compile_bytecode();
        let mut warm = program.vm();
        let mut rng = Rng(0xb17e_c0de_5eed_0002);
        for _ in 0..40 {
            let depths = vec![rng.depth(128)];
            assert_eq!(
                warm.evaluate(&depths).unwrap(),
                program.evaluate(&depths).unwrap(),
                "depths {depths:?}"
            );
        }
    }

    #[test]
    fn batch_serial_parallel_and_pinned_workers_agree() {
        let design = nb_drop_counter(32, 1, 4);
        let baseline = OmniSimulator::new(&design).run().unwrap();
        let plan = SweepPlan::compile(&baseline.incremental).unwrap();
        let program = plan.compile_bytecode();
        let points: Vec<Vec<usize>> = (1..=96).map(|d| vec![d]).collect();
        let serial = program.evaluate_batch(&points, false).unwrap();
        let auto = program.evaluate_batch(&points, true).unwrap();
        let pinned = program.evaluate_batch_workers(&points, 3).unwrap();
        assert_eq!(serial, auto);
        assert_eq!(serial, pinned);
        assert_eq!(serial, plan.evaluate_batch(&points, false).unwrap());
    }

    #[test]
    fn validation_matches_the_interpreter() {
        let design = producer_consumer(8, 2, 1);
        let baseline = OmniSimulator::new(&design).run().unwrap();
        let program = SweepPlan::compile(&baseline.incremental)
            .unwrap()
            .compile_bytecode();
        assert_eq!(
            program.evaluate(&[1, 2]).unwrap_err(),
            PlanError::DepthMismatch {
                expected: 1,
                got: 2
            }
        );
        assert_eq!(
            program.evaluate(&[0]).unwrap_err(),
            PlanError::ZeroDepth { fifo: 0 }
        );
        assert_eq!(
            program
                .evaluate_batch(&[vec![1], vec![0]], true)
                .unwrap_err(),
            PlanError::ZeroDepth { fifo: 0 }
        );
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let design = nb_drop_counter(48, 2, 3);
        let baseline = OmniSimulator::new(&design).run().unwrap();
        let program = SweepPlan::compile(&baseline.incremental)
            .unwrap()
            .compile_bytecode();
        let bytes = program.encode();
        let decoded = CompiledPlan::decode(&bytes).unwrap();
        assert_eq!(decoded, program, "decoded program is structurally equal");
        let mut rng = Rng(0xb17e_c0de_5eed_0003);
        let mut vm = program.vm();
        let mut dvm = decoded.vm();
        for _ in 0..40 {
            let depths = vec![rng.depth(130)];
            assert_eq!(
                vm.evaluate(&depths).unwrap(),
                dvm.evaluate(&depths).unwrap()
            );
        }
    }

    #[test]
    fn corrupted_encodings_are_rejected_not_panicking() {
        let design = producer_consumer(16, 2, 1);
        let baseline = OmniSimulator::new(&design).run().unwrap();
        let program = SweepPlan::compile(&baseline.incremental)
            .unwrap()
            .compile_bytecode();
        let good = program.encode();
        assert!(CompiledPlan::decode(&good[..good.len() / 2]).is_err());
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            CompiledPlan::decode(&bad_magic),
            Err(CodecError::BadMagic { .. })
        ));
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x55;
        assert!(CompiledPlan::decode(&flipped).is_err());
    }
}
