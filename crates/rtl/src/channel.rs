//! Cycle-accurate FIFO and AXI channel state.

use omnisim_ir::{AxiPortSpec, FifoSpec};
use std::collections::VecDeque;

/// Cycle-accurate state of one FIFO channel.
///
/// The channel records the commit cycle of every access so that the
/// "strictly before" visibility rule of the timing-model contract can be
/// evaluated independently of the order in which tasks are stepped within a
/// global cycle:
///
/// * the *r*-th read may commit at cycle `c` only if the *r*-th write
///   committed strictly before `c`;
/// * the *w*-th write may commit at cycle `c` only if `w ≤ depth` or the
///   *(w − depth)*-th read committed strictly before `c`.
#[derive(Debug, Clone)]
pub struct FifoChannel {
    depth: usize,
    values: VecDeque<i64>,
    write_cycles: Vec<u64>,
    read_cycles: Vec<u64>,
}

impl FifoChannel {
    /// Creates the channel for a FIFO specification.
    pub fn new(spec: &FifoSpec) -> Self {
        FifoChannel {
            depth: spec.depth,
            values: VecDeque::new(),
            write_cycles: Vec::new(),
            read_cycles: Vec::new(),
        }
    }

    /// Buffer capacity in elements.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of writes committed so far.
    pub fn writes_committed(&self) -> usize {
        self.write_cycles.len()
    }

    /// Number of reads committed so far.
    pub fn reads_committed(&self) -> usize {
        self.read_cycles.len()
    }

    /// Number of elements currently buffered (ignoring visibility cycles).
    pub fn occupancy(&self) -> usize {
        self.values.len()
    }

    /// Can a write commit at cycle `cycle`?
    pub fn can_write(&self, cycle: u64) -> bool {
        let w = self.write_cycles.len() + 1;
        if w <= self.depth {
            return true;
        }
        let freeing_read = w - self.depth; // 1-indexed
        self.read_cycles
            .get(freeing_read - 1)
            .is_some_and(|&rc| rc < cycle)
    }

    /// Can a read commit at cycle `cycle`?
    pub fn can_read(&self, cycle: u64) -> bool {
        let r = self.read_cycles.len() + 1;
        self.write_cycles.get(r - 1).is_some_and(|&wc| wc < cycle)
    }

    /// Earliest cycle at which the next read could commit, given the writes
    /// recorded so far, or `None` if the matching write is not recorded yet.
    pub fn next_read_ready(&self) -> Option<u64> {
        let r = self.read_cycles.len();
        self.write_cycles.get(r).map(|&wc| wc + 1)
    }

    /// Earliest cycle at which the next write could commit, given the reads
    /// recorded so far: `Some(0)` while buffer slack remains, the freeing
    /// read's cycle + 1 once the buffer is at capacity, or `None` if that
    /// read is not recorded yet.
    pub fn next_write_ready(&self) -> Option<u64> {
        let w = self.write_cycles.len() + 1;
        if w <= self.depth {
            return Some(0);
        }
        self.read_cycles.get(w - self.depth - 1).map(|&rc| rc + 1)
    }

    /// `empty()` as observed by hardware at cycle `cycle`.
    pub fn is_empty_at(&self, cycle: u64) -> bool {
        !self.can_read(cycle)
    }

    /// `full()` as observed by hardware at cycle `cycle`.
    pub fn is_full_at(&self, cycle: u64) -> bool {
        !self.can_write(cycle)
    }

    /// Three-valued [`FifoChannel::can_read`] for evaluation at a possibly
    /// retroactive cycle: `None` while the matching write is unrecorded but
    /// could still be labelled before `cycle` (commit cycles per side are
    /// nondecreasing, so once the last recorded write is at or past `cycle`
    /// the answer is a definite no).
    pub fn can_read_decided(&self, cycle: u64) -> Option<bool> {
        let r = self.read_cycles.len();
        match self.write_cycles.get(r) {
            Some(&wc) => Some(wc < cycle),
            None => match self.write_cycles.last() {
                Some(&last) if last >= cycle => Some(false),
                _ => None,
            },
        }
    }

    /// Three-valued [`FifoChannel::can_write`]; see
    /// [`FifoChannel::can_read_decided`].
    pub fn can_write_decided(&self, cycle: u64) -> Option<bool> {
        let w = self.write_cycles.len() + 1;
        if w <= self.depth {
            return Some(true);
        }
        match self.read_cycles.get(w - self.depth - 1) {
            Some(&rc) => Some(rc < cycle),
            None => match self.read_cycles.last() {
                Some(&last) if last >= cycle => Some(false),
                _ => None,
            },
        }
    }

    /// Commits a write at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the write is not allowed at `cycle` (callers must check
    /// [`FifoChannel::can_write`] first), or if `cycle` precedes an earlier
    /// committed write. Per-side commit cycles must be nondecreasing — the
    /// three-valued [`FifoChannel::can_read_decided`] /
    /// [`FifoChannel::can_write_decided`] rules depend on it — and a design
    /// that accesses one FIFO at schedule offsets further apart than its
    /// loop's initiation interval could violate it via retroactive commits;
    /// failing loudly here beats silently mis-deciding a non-blocking
    /// outcome.
    pub fn push(&mut self, value: i64, cycle: u64) {
        assert!(self.can_write(cycle), "fifo write committed while full");
        assert!(
            self.write_cycles.last().is_none_or(|&last| cycle >= last),
            "fifo write commit cycles must be nondecreasing"
        );
        self.values.push_back(value);
        self.write_cycles.push(cycle);
    }

    /// Commits a read at `cycle` and returns the value.
    ///
    /// # Panics
    ///
    /// Panics if the read is not allowed at `cycle` (callers must check
    /// [`FifoChannel::can_read`] first) or if `cycle` precedes an earlier
    /// committed read; see [`FifoChannel::push`] for why commit cycles must
    /// be nondecreasing per side.
    pub fn pop(&mut self, cycle: u64) -> i64 {
        assert!(self.can_read(cycle), "fifo read committed while empty");
        assert!(
            self.read_cycles.last().is_none_or(|&last| cycle >= last),
            "fifo read commit cycles must be nondecreasing"
        );
        let value = self.values.pop_front().expect("value present");
        self.read_cycles.push(cycle);
        value
    }

    /// Values still buffered at the end of simulation (leftover data).
    pub fn leftover(&self) -> usize {
        self.values.len()
    }
}

/// One outstanding AXI read or write burst.
#[derive(Debug, Clone)]
struct Burst {
    addr: i64,
    len: i64,
    ready_cycle: u64,
    beats_done: i64,
}

/// Cycle-accurate state of one AXI master port.
///
/// The model is deliberately simple and identical across all simulators in
/// the workspace: a burst request issued at cycle `c` delivers (accepts) its
/// first beat no earlier than `c + request_latency`, subsequent beats one
/// cycle apart, and the write response arrives `request_latency` cycles after
/// the last write beat.
#[derive(Debug, Clone)]
pub struct AxiChannel {
    request_latency: u64,
    read_bursts: VecDeque<Burst>,
    write_bursts: VecDeque<Burst>,
    last_write_beat_cycle: u64,
}

impl AxiChannel {
    /// Creates the channel for an AXI port specification.
    pub fn new(spec: &AxiPortSpec) -> Self {
        AxiChannel {
            request_latency: spec.request_latency,
            read_bursts: VecDeque::new(),
            write_bursts: VecDeque::new(),
            last_write_beat_cycle: 0,
        }
    }

    /// Issues a read-burst request at `cycle`.
    pub fn read_req(&mut self, addr: i64, len: i64, cycle: u64) {
        self.read_bursts.push_back(Burst {
            addr,
            len,
            ready_cycle: cycle + self.request_latency,
            beats_done: 0,
        });
    }

    /// The earliest cycle at which the next read beat can be consumed, and
    /// the memory address it reads, if a burst is outstanding.
    pub fn next_read_beat(&self) -> Option<(u64, i64)> {
        self.read_bursts
            .front()
            .map(|b| (b.ready_cycle + b.beats_done as u64, b.addr + b.beats_done))
    }

    /// Consumes one read beat (the caller has verified the cycle).
    pub fn take_read_beat(&mut self) {
        let done = {
            let burst = self
                .read_bursts
                .front_mut()
                .expect("outstanding read burst");
            burst.beats_done += 1;
            burst.beats_done >= burst.len
        };
        if done {
            self.read_bursts.pop_front();
        }
    }

    /// Issues a write-burst request at `cycle`.
    pub fn write_req(&mut self, addr: i64, len: i64, cycle: u64) {
        self.write_bursts.push_back(Burst {
            addr,
            len,
            ready_cycle: cycle + self.request_latency,
            beats_done: 0,
        });
    }

    /// The memory address the next write beat stores to, if a burst is
    /// outstanding.
    pub fn next_write_addr(&self) -> Option<i64> {
        self.write_bursts.front().map(|b| b.addr + b.beats_done)
    }

    /// Records one write beat at `cycle`.
    pub fn take_write_beat(&mut self, cycle: u64) {
        self.last_write_beat_cycle = cycle;
        let done = {
            let burst = self
                .write_bursts
                .front_mut()
                .expect("outstanding write burst");
            burst.beats_done += 1;
            burst.beats_done >= burst.len
        };
        if done {
            self.write_bursts.pop_front();
        }
    }

    /// The cycle at which the write response for the last burst arrives.
    pub fn write_resp_ready(&self) -> u64 {
        self.last_write_beat_cycle + self.request_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fifo(depth: usize) -> FifoChannel {
        FifoChannel::new(&FifoSpec {
            name: "q".into(),
            depth,
        })
    }

    #[test]
    fn write_visible_only_strictly_after_its_cycle() {
        let mut f = fifo(4);
        assert!(f.can_write(1));
        f.push(42, 1);
        assert!(!f.can_read(1), "same-cycle read must not see the write");
        assert!(f.can_read(2));
        assert_eq!(f.pop(2), 42);
        assert_eq!(f.reads_committed(), 1);
    }

    #[test]
    fn depth_limits_writes_until_a_read_frees_space() {
        let mut f = fifo(1);
        f.push(1, 1);
        assert!(!f.can_write(2), "depth-1 fifo is full");
        assert!(f.can_read(2));
        f.pop(2);
        assert!(!f.can_write(2), "space frees strictly after the read cycle");
        assert!(f.can_write(3));
        f.push(2, 3);
        assert_eq!(f.writes_committed(), 2);
    }

    #[test]
    fn empty_and_full_status_track_cycles() {
        let mut f = fifo(2);
        assert!(f.is_empty_at(5));
        assert!(!f.is_full_at(5));
        f.push(7, 5);
        assert!(f.is_empty_at(5));
        assert!(!f.is_empty_at(6));
        f.push(8, 6);
        assert!(f.is_full_at(7));
    }

    #[test]
    #[should_panic(expected = "fifo write committed while full")]
    fn pushing_to_full_fifo_panics() {
        let mut f = fifo(1);
        f.push(1, 1);
        f.push(2, 1);
    }

    #[test]
    fn axi_read_burst_timing() {
        let spec = AxiPortSpec {
            name: "gmem".into(),
            array: omnisim_ir::ArrayId(0),
            request_latency: 4,
        };
        let mut axi = AxiChannel::new(&spec);
        axi.read_req(10, 3, 2);
        let (ready, addr) = axi.next_read_beat().unwrap();
        assert_eq!(ready, 6);
        assert_eq!(addr, 10);
        axi.take_read_beat();
        let (ready, addr) = axi.next_read_beat().unwrap();
        assert_eq!(ready, 7);
        assert_eq!(addr, 11);
        axi.take_read_beat();
        axi.take_read_beat();
        assert!(axi.next_read_beat().is_none());
    }

    #[test]
    fn axi_write_response_waits_for_latency() {
        let spec = AxiPortSpec {
            name: "gmem".into(),
            array: omnisim_ir::ArrayId(0),
            request_latency: 3,
        };
        let mut axi = AxiChannel::new(&spec);
        axi.write_req(0, 2, 1);
        assert_eq!(axi.next_write_addr(), Some(0));
        axi.take_write_beat(4);
        assert_eq!(axi.next_write_addr(), Some(1));
        axi.take_write_beat(5);
        assert!(axi.next_write_addr().is_none());
        assert_eq!(axi.write_resp_ready(), 8);
    }
}
