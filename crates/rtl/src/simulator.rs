//! The cycle-stepped simulation driver.

use crate::report::{RtlOutcome, RtlReport};
use crate::task::{SharedState, TaskState, TaskStatus};
use omnisim_interp::SimError;
use omnisim_ir::Design;
use std::time::Instant;

/// Configuration of the reference simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtlConfig {
    /// Maximum number of clock cycles to simulate before giving up.
    pub max_cycles: u64,
}

impl Default for RtlConfig {
    fn default() -> Self {
        RtlConfig {
            max_cycles: 20_000_000,
        }
    }
}

/// Cycle-stepped reference simulator (the workspace's C/RTL co-simulation
/// stand-in). See the crate-level documentation for the model.
#[derive(Debug)]
pub struct RtlSimulator<'d> {
    design: &'d Design,
    config: RtlConfig,
}

impl<'d> RtlSimulator<'d> {
    /// Creates a simulator with the default configuration.
    pub fn new(design: &'d Design) -> Self {
        Self::with_config(design, RtlConfig::default())
    }

    /// Creates a simulator with an explicit configuration.
    pub fn with_config(design: &'d Design, config: RtlConfig) -> Self {
        RtlSimulator { design, config }
    }

    /// Runs the design to completion (or deadlock / cycle limit).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for array out-of-bounds accesses or AXI
    /// protocol violations. Deadlocks and cycle-limit aborts are *not*
    /// errors; they are reported through [`RtlOutcome`].
    pub fn run(&self) -> Result<RtlReport, SimError> {
        let started = Instant::now();
        let mut shared = SharedState::new(self.design);
        let mut tasks: Vec<TaskState<'d>> = self
            .design
            .dataflow_tasks()
            .into_iter()
            .map(|m| TaskState::new(self.design, m, 1))
            .collect();

        let mut cycle = 1u64;
        let mut cycles_stepped = 0u64;
        let outcome = loop {
            if tasks.iter().all(TaskState::is_finished) {
                break RtlOutcome::Completed;
            }
            if cycle > self.config.max_cycles {
                break RtlOutcome::CycleLimit {
                    limit: self.config.max_cycles,
                };
            }

            let mut progressed_any = false;
            let mut any_waiting = false;
            let mut blocked: Vec<String> = Vec::new();
            // Forward-progress frontier of every stuck task, indexed by task.
            let mut frontiers: Vec<Option<u64>> = vec![None; tasks.len()];
            let mut undecided: Vec<(u64, usize)> = Vec::new();
            for (index, task) in tasks.iter_mut().enumerate() {
                if task.is_finished() {
                    continue;
                }
                let outcome = task.step_cycle(cycle, &mut shared, false)?;
                progressed_any |= outcome.progressed;
                match outcome.status {
                    TaskStatus::Waiting => any_waiting = true,
                    TaskStatus::Blocked { reason, frontier } => {
                        blocked.push(format!("{}: {}", task.name(), reason));
                        frontiers[index] = Some(frontier);
                    }
                    TaskStatus::Undecided {
                        effective,
                        frontier,
                    } => {
                        undecided.push((effective, index));
                        frontiers[index] = Some(frontier);
                    }
                    TaskStatus::Finished => {}
                }
            }
            cycles_stepped += 1;

            let unfinished = tasks.iter().filter(|t| !t.is_finished()).count();
            if unfinished > 0 && !progressed_any && !any_waiting {
                if !undecided.is_empty() {
                    // Forward progress (§7.1, frontier-aware): the whole
                    // simulation is stuck on undecided non-blocking outcomes,
                    // so one is resolved pessimistically using the exact
                    // selection rule of the engine's query pool: candidates
                    // ordered by (cycle, frontier descending, task), the
                    // first *safe* one (no other stuck task's frontier below
                    // its cycle) preferred, the first in order as fallback.
                    undecided.sort_by_key(|&(effective, index)| {
                        (
                            effective,
                            std::cmp::Reverse(frontiers[index].unwrap_or(u64::MAX)),
                            index,
                        )
                    });
                    let chosen = undecided
                        .iter()
                        .copied()
                        .find(|&(effective, index)| {
                            frontiers
                                .iter()
                                .enumerate()
                                .all(|(t, f)| t == index || f.is_none_or(|f| f >= effective))
                        })
                        .unwrap_or(undecided[0]);
                    let _ = tasks[chosen.1].step_cycle(cycle, &mut shared, true)?;
                } else if !blocked.is_empty() {
                    break RtlOutcome::Deadlock { cycle, blocked };
                }
            }
            cycle += 1;
        };

        let end = tasks
            .iter()
            .filter(|t| t.is_finished())
            .map(TaskState::end_time)
            .max()
            .unwrap_or(cycle);
        let total_cycles = match &outcome {
            RtlOutcome::Completed => end + 1,
            RtlOutcome::Deadlock { cycle, .. } => *cycle,
            RtlOutcome::CycleLimit { limit } => *limit,
        };

        Ok(RtlReport {
            outcome,
            outputs: shared.outputs,
            total_cycles,
            cycles_stepped,
            fifo_accesses: shared.fifo_accesses,
            wall_time: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::{DesignBuilder, Expr};

    fn producer_consumer(n: i64, depth: usize) -> Design {
        let mut d = DesignBuilder::new("pc");
        let data = d.array("data", (1..=n).collect::<Vec<i64>>());
        let out = d.output("sum");
        let q = d.fifo("q", depth);
        let p = d.function("producer", |m| {
            m.counted_loop("i", n, 1, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(data, i);
                b.fifo_write(q, Expr::var(v));
            });
        });
        let c = d.function("consumer", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", n, 1, |b| {
                let v = b.fifo_read(q);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        d.build().unwrap()
    }

    #[test]
    fn producer_consumer_functional_result() {
        let design = producer_consumer(100, 4);
        let report = RtlSimulator::new(&design).run().unwrap();
        assert!(report.outcome.is_completed());
        assert_eq!(report.output("sum"), Some(5050));
        // 100 pipelined iterations at II=1, plus FIFO latency: roughly N cycles.
        assert!(report.total_cycles >= 100);
        assert!(report.total_cycles < 400, "got {}", report.total_cycles);
        assert_eq!(report.fifo_accesses, 200);
    }

    #[test]
    fn smaller_fifo_depth_never_speeds_things_up() {
        let deep = RtlSimulator::new(&producer_consumer(64, 64))
            .run()
            .unwrap()
            .total_cycles;
        let shallow = RtlSimulator::new(&producer_consumer(64, 1))
            .run()
            .unwrap()
            .total_cycles;
        assert!(shallow >= deep);
    }

    #[test]
    fn mutual_blocking_reads_deadlock() {
        let mut d = DesignBuilder::new("deadlock");
        let a2b = d.fifo("a2b", 2);
        let b2a = d.fifo("b2a", 2);
        let ta = d.function("task_a", |m| {
            m.entry(|b| {
                // Waits for task_b before ever writing: classic deadlock.
                let v = b.fifo_read(b2a);
                b.fifo_write(a2b, Expr::var(v));
            });
        });
        let tb = d.function("task_b", |m| {
            m.entry(|b| {
                let v = b.fifo_read(a2b);
                b.fifo_write(b2a, Expr::var(v));
            });
        });
        d.dataflow_top("top", [ta, tb]);
        let design = d.build().unwrap();
        let report = RtlSimulator::new(&design).run().unwrap();
        assert!(report.outcome.is_deadlock());
        match report.outcome {
            RtlOutcome::Deadlock { blocked, .. } => {
                assert_eq!(blocked.len(), 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn nonblocking_writes_drop_when_consumer_is_slow() {
        // Producer attempts 16 NB writes back-to-back into a depth-1 FIFO
        // while the consumer drains slowly: some writes must fail.
        let mut d = DesignBuilder::new("drop");
        let q = d.fifo("q", 1);
        let sent = d.output("sent");
        let received = d.output("received");
        let p = d.function("producer", |m| {
            let ok_count = m.var("ok_count");
            m.entry(|b| {
                b.assign(ok_count, Expr::imm(0));
            });
            m.counted_loop("i", 16, 1, |b| {
                let i = b.var_expr("i");
                let ok = b.fifo_nb_write(q, i);
                b.assign(ok_count, Expr::var(ok_count).add(Expr::var(ok)));
            });
            m.exit(|b| {
                b.output(sent, Expr::var(ok_count));
            });
        });
        let c = d.function("consumer", |m| {
            let n = m.var("n");
            m.entry(|b| {
                b.assign(n, Expr::imm(0));
            });
            m.counted_loop("i", 16, 4, |b| {
                let (_v, ok) = b.fifo_nb_read(q);
                b.assign(n, Expr::var(n).add(Expr::var(ok)));
            });
            m.exit(|b| {
                b.output(received, Expr::var(n));
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().unwrap();
        let report = RtlSimulator::new(&design).run().unwrap();
        let sent = report.output("sent").unwrap();
        let received = report.output("received").unwrap();
        assert!(sent < 16, "some non-blocking writes must fail, sent={sent}");
        assert!(received <= sent);
        assert!(sent >= 1);
    }

    #[test]
    fn cycle_limit_is_reported() {
        // An infinite loop that never writes anything observable.
        let mut d = DesignBuilder::new("spin");
        let q = d.fifo("q", 1);
        let spin = d.function("spin", |m| {
            m.loop_block(1, |b| {
                let t = b.tmp();
                b.assign(t, Expr::imm(1));
                b.fifo_empty_unused(q);
            });
        });
        let other = d.function("other", |m| {
            m.entry(|b| {
                b.fifo_write(q, Expr::imm(1));
            });
        });
        d.dataflow_top("top", [spin, other]);
        let design = d.build().unwrap();
        let report = RtlSimulator::with_config(&design, RtlConfig { max_cycles: 500 })
            .run()
            .unwrap();
        assert_eq!(report.outcome, RtlOutcome::CycleLimit { limit: 500 });
    }

    #[test]
    fn sequential_call_latency_is_accounted() {
        let mut d = DesignBuilder::new("call");
        let out = d.output("r");
        let helper = d.function("slow_square", |m| {
            let x = m.var("x");
            m.entry(|b| {
                b.latency(10);
                b.ret_val(Expr::var(x).mul(Expr::var(x)));
            });
        });
        d.function_top("main", |m| {
            m.entry(|b| {
                let r = b.call(helper, vec![Expr::imm(6)]);
                b.output(out, Expr::var(r));
            });
        });
        let design = d.build().unwrap();
        let report = RtlSimulator::new(&design).run().unwrap();
        assert_eq!(report.output("r"), Some(36));
        assert!(report.total_cycles >= 12, "call latency must be included");
    }
}
