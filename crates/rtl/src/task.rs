//! Per-task resumable execution for the cycle-stepped reference simulator.
//!
//! Unlike the run-to-completion interpreter in `omnisim-interp`, the
//! reference simulator must be able to *suspend* a task mid-block whenever an
//! operation cannot commit at the current clock cycle and resume it on a
//! later cycle. Each task therefore carries an explicit frame stack (for
//! calls into sub-functions) with a per-frame [`Timeline`].

use crate::channel::{AxiChannel, FifoChannel};
use omnisim_interp::{SimError, Timeline};
use omnisim_ir::design::OutputMap;
use omnisim_ir::{BlockId, Design, Expr, ModuleId, Op, Terminator, VarId};

/// State shared by every task: FIFO channels, AXI ports, array memory and the
/// testbench-visible outputs.
#[derive(Debug)]
pub struct SharedState {
    /// FIFO channel state, indexed by `FifoId`.
    pub fifos: Vec<FifoChannel>,
    /// AXI port state, indexed by `AxiId`.
    pub axis: Vec<AxiChannel>,
    /// Array memory, indexed by `ArrayId`.
    pub arrays: Vec<Vec<i64>>,
    /// Final output values.
    pub outputs: OutputMap,
    /// Total FIFO accesses committed.
    pub fifo_accesses: u64,
}

impl SharedState {
    /// Initialises shared state from a design.
    pub fn new(design: &Design) -> Self {
        SharedState {
            fifos: design.fifos.iter().map(FifoChannel::new).collect(),
            axis: design.axi_ports.iter().map(AxiChannel::new).collect(),
            arrays: design.arrays.iter().map(|a| a.init.clone()).collect(),
            outputs: OutputMap::new(),
            fifo_accesses: 0,
        }
    }
}

/// The per-cycle status of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// The task has run to completion.
    Finished,
    /// The task's next operation is scheduled at a future cycle.
    Waiting,
    /// The task is stalled on a blocking FIFO access that could not commit
    /// this cycle. Carries a human-readable description for deadlock reports
    /// and the task's forward-progress frontier.
    Blocked {
        /// What the task is blocked on.
        reason: String,
        /// Lower bound on the cycle of any future FIFO access of this task.
        frontier: u64,
    },
    /// The task's next operation is a non-blocking access (or status check)
    /// whose outcome cannot be decided yet: the peer side has not recorded
    /// the access that determines it. Mirrors a pending query in the OmniSim
    /// engine's query pool; if the whole simulation gets stuck, the driver
    /// force-resolves one such access pessimistically (§7.1 forward
    /// progress, frontier-aware).
    Undecided {
        /// Scheduled hardware cycle of the undecided access.
        effective: u64,
        /// Lower bound on the cycle of any future FIFO access of this task.
        frontier: u64,
    },
}

/// Result of stepping one task for one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// True if at least one operation committed during this cycle.
    pub progressed: bool,
    /// The task's status at the end of the cycle.
    pub status: TaskStatus,
}

#[derive(Debug)]
struct Frame {
    module: ModuleId,
    vars: Vec<i64>,
    block: BlockId,
    op_idx: usize,
    timeline: Timeline,
    /// Caller bookkeeping (absent for the root frame): destination variable
    /// for the return value and the scheduled offset of the call op.
    ret_dst: Option<VarId>,
    call_offset: u64,
}

/// One dataflow task (or the non-dataflow top function) being simulated
/// cycle by cycle.
#[derive(Debug)]
pub struct TaskState<'d> {
    design: &'d Design,
    /// Root module of the task (for reporting).
    pub module: ModuleId,
    frames: Vec<Frame>,
    finished: bool,
    end_time: u64,
    ops_executed: u64,
}

impl<'d> TaskState<'d> {
    /// Creates a task whose root module starts executing at `start_cycle`.
    pub fn new(design: &'d Design, module: ModuleId, start_cycle: u64) -> Self {
        let m = design.module(module);
        debug_assert!(!m.is_dataflow(), "tasks must be function modules");
        let mut timeline = Timeline::starting_at(start_cycle);
        timeline.enter_block(&m.blocks[0].schedule, false);
        TaskState {
            design,
            module,
            frames: vec![Frame {
                module,
                vars: vec![0; m.num_vars as usize],
                block: BlockId(0),
                op_idx: 0,
                timeline,
                ret_dst: None,
                call_offset: 0,
            }],
            finished: false,
            end_time: start_cycle,
            ops_executed: 0,
        }
    }

    /// True once the task has returned from its root module.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Cycle at which the task finished (meaningful once finished).
    pub fn end_time(&self) -> u64 {
        self.end_time
    }

    /// Total operations committed by this task.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Name of the task's root module.
    pub fn name(&self) -> &str {
        &self.design.module(self.module).name
    }

    /// Executes every operation of this task that can commit at `cycle`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] for array out-of-bounds accesses and AXI
    /// protocol violations.
    /// `force_nb` pessimistically resolves the first undecided non-blocking
    /// access encountered (at most one per call) instead of reporting
    /// [`TaskStatus::Undecided`]; the driver sets it when the whole
    /// simulation is stuck.
    pub fn step_cycle(
        &mut self,
        cycle: u64,
        shared: &mut SharedState,
        mut force_nb: bool,
    ) -> Result<StepOutcome, SimError> {
        let mut progressed = false;
        loop {
            if self.finished {
                return Ok(StepOutcome {
                    progressed,
                    status: TaskStatus::Finished,
                });
            }
            let frame = self.frames.last_mut().expect("unfinished task has a frame");
            let module = self.design.module(frame.module);
            let block = &module.blocks[frame.block.index()];

            if frame.timeline.block_entry() > cycle {
                return Ok(StepOutcome {
                    progressed,
                    status: TaskStatus::Waiting,
                });
            }

            if frame.op_idx < block.ops.len() {
                let sop = &block.ops[frame.op_idx];
                let effective = frame.timeline.op_cycle(sop.offset);
                // Only channel-interacting operations are gated on the wall
                // clock: their hardware cycle must not run ahead of the
                // global step, so that every access is committed against
                // channel state that is final up to that cycle. Local
                // operations (assigns, array traffic, outputs) have no
                // cross-task timing and execute as soon as program order
                // reaches them — their hardware time is fully described by
                // the timeline. Without this split, an operation scheduled
                // late in a pipelined loop body would serialize against the
                // next iteration's early operations, which real pipelined
                // hardware overlaps.
                if interacts_with_channels(&sop.op) && effective > cycle {
                    return Ok(StepOutcome {
                        progressed,
                        status: TaskStatus::Waiting,
                    });
                }
                match Self::try_op(
                    self.design,
                    frame,
                    sop.offset,
                    &sop.op,
                    cycle,
                    shared,
                    &mut force_nb,
                )? {
                    OpResult::Committed => {
                        frame.op_idx += 1;
                        progressed = true;
                        self.ops_executed += 1;
                    }
                    OpResult::Blocked(reason) => {
                        let frame = self.frames.last().expect("frame");
                        let sop = &self.design.module(frame.module).blocks[frame.block.index()].ops
                            [frame.op_idx];
                        let effective = frame.timeline.op_cycle(sop.offset);
                        let frontier = effective.min(frame.timeline.next_entry_floor());
                        return Ok(StepOutcome {
                            progressed,
                            status: TaskStatus::Blocked { reason, frontier },
                        });
                    }
                    OpResult::WaitFuture => {
                        return Ok(StepOutcome {
                            progressed,
                            status: TaskStatus::Waiting,
                        });
                    }
                    OpResult::Undecided { effective } => {
                        let frame = self.frames.last().expect("frame");
                        let frontier = effective.min(frame.timeline.next_entry_floor());
                        return Ok(StepOutcome {
                            progressed,
                            status: TaskStatus::Undecided {
                                effective,
                                frontier,
                            },
                        });
                    }
                    OpResult::EnterCall {
                        callee,
                        args,
                        dst,
                        offset,
                    } => {
                        let callee_module = self.design.module(callee);
                        let start = frame.timeline.op_cycle(offset) + 1;
                        let mut timeline = Timeline::starting_at(start);
                        timeline.enter_block(&callee_module.blocks[0].schedule, false);
                        let mut vars = vec![0; callee_module.num_vars as usize];
                        for (slot, value) in vars.iter_mut().zip(&args) {
                            *slot = *value;
                        }
                        self.frames.push(Frame {
                            module: callee,
                            vars,
                            block: BlockId(0),
                            op_idx: 0,
                            timeline,
                            ret_dst: dst,
                            call_offset: offset,
                        });
                        progressed = true;
                        self.ops_executed += 1;
                    }
                }
                continue;
            }

            // All ops of the block committed: evaluate the terminator.
            match &block.terminator {
                Terminator::Jump(next) => {
                    let next = *next;
                    let back_edge = next == frame.block;
                    frame.block = next;
                    frame.op_idx = 0;
                    frame
                        .timeline
                        .enter_block(&module.blocks[next.index()].schedule, back_edge);
                }
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => {
                    let taken = eval(cond, &frame.vars) != 0;
                    let next = if taken { *if_true } else { *if_false };
                    let back_edge = next == frame.block;
                    frame.block = next;
                    frame.op_idx = 0;
                    frame
                        .timeline
                        .enter_block(&module.blocks[next.index()].schedule, back_edge);
                }
                Terminator::Return(value) => {
                    let rv = value.as_ref().map(|e| eval(e, &frame.vars));
                    let exit = frame.timeline.block_exit();
                    let ret_dst = frame.ret_dst;
                    let call_offset = frame.call_offset;
                    let is_root = self.frames.len() == 1;
                    self.frames.pop();
                    if is_root {
                        self.finished = true;
                        self.end_time = exit;
                        return Ok(StepOutcome {
                            progressed,
                            status: TaskStatus::Finished,
                        });
                    }
                    let caller = self.frames.last_mut().expect("caller frame");
                    if let (Some(dst), Some(v)) = (ret_dst, rv) {
                        caller.vars[dst.index()] = v;
                    }
                    caller.timeline.stall_until(call_offset, exit + 1);
                    caller.op_idx += 1;
                    progressed = true;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_op(
        design: &Design,
        frame: &mut Frame,
        offset: u64,
        op: &Op,
        cycle: u64,
        shared: &mut SharedState,
        force_nb: &mut bool,
    ) -> Result<OpResult, SimError> {
        let vars = &mut frame.vars;
        // Pessimistically resolves an undecided non-blocking outcome when
        // the driver forces forward progress, consuming the force so at most
        // one access per call is resolved this way.
        let mut decide = |decision: Option<bool>, effective: u64| match decision {
            Some(b) => Ok(b),
            None if *force_nb => {
                *force_nb = false;
                Ok(false)
            }
            None => Err(OpResult::Undecided { effective }),
        };
        match op {
            Op::Assign { dst, expr } => {
                vars[dst.index()] = eval(expr, vars);
                Ok(OpResult::Committed)
            }
            Op::ArrayLoad { dst, array, index } => {
                let idx = eval(index, vars);
                let data = &shared.arrays[array.index()];
                let value = usize::try_from(idx)
                    .ok()
                    .and_then(|i| data.get(i).copied())
                    .ok_or(SimError::ArrayOutOfBounds {
                        array: *array,
                        index: idx,
                        len: data.len(),
                    })?;
                vars[dst.index()] = value;
                Ok(OpResult::Committed)
            }
            Op::ArrayStore {
                array,
                index,
                value,
            } => {
                let idx = eval(index, vars);
                let val = eval(value, vars);
                let data = &mut shared.arrays[array.index()];
                let len = data.len();
                let slot = usize::try_from(idx)
                    .ok()
                    .and_then(|i| data.get_mut(i))
                    .ok_or(SimError::ArrayOutOfBounds {
                        array: *array,
                        index: idx,
                        len,
                    })?;
                *slot = val;
                Ok(OpResult::Committed)
            }
            Op::FifoWrite { fifo, value } => {
                // The write commits at the earliest cycle that satisfies
                // both its schedule and the buffer rule — which may lie
                // *before* the wall cycle when the op walk lagged behind a
                // pipelined iteration overlap (the timeline, not the walk,
                // is hardware time).
                let effective = frame.timeline.op_cycle(offset);
                let channel = &mut shared.fifos[fifo.index()];
                match channel.next_write_ready() {
                    Some(ready) => {
                        let commit = ready.max(effective);
                        if commit > cycle {
                            return Ok(OpResult::WaitFuture);
                        }
                        let val = eval(value, vars);
                        frame.timeline.stall_until(offset, commit);
                        channel.push(val, commit);
                        shared.fifo_accesses += 1;
                        Ok(OpResult::Committed)
                    }
                    None => Ok(OpResult::Blocked(format!(
                        "blocking write to full fifo '{}'",
                        design.fifo(*fifo).name
                    ))),
                }
            }
            Op::FifoRead { fifo, dst } => {
                let effective = frame.timeline.op_cycle(offset);
                let channel = &mut shared.fifos[fifo.index()];
                match channel.next_read_ready() {
                    Some(ready) => {
                        let commit = ready.max(effective);
                        if commit > cycle {
                            return Ok(OpResult::WaitFuture);
                        }
                        frame.timeline.stall_until(offset, commit);
                        vars[dst.index()] = channel.pop(commit);
                        shared.fifo_accesses += 1;
                        Ok(OpResult::Committed)
                    }
                    None => Ok(OpResult::Blocked(format!(
                        "blocking read from empty fifo '{}'",
                        design.fifo(*fifo).name
                    ))),
                }
            }
            Op::FifoNbWrite {
                fifo,
                value,
                success,
            } => {
                // Non-blocking accesses and status checks observe the
                // channel at their *scheduled* hardware cycle (never later):
                // the wall gate in `step_cycle` guarantees the channel state
                // up to that cycle is final.
                let effective = frame.timeline.op_cycle(offset);
                let channel = &mut shared.fifos[fifo.index()];
                let ok = match decide(channel.can_write_decided(effective), effective) {
                    Ok(b) => b,
                    Err(undecided) => return Ok(undecided),
                };
                if ok {
                    let val = eval(value, vars);
                    channel.push(val, effective);
                    shared.fifo_accesses += 1;
                }
                if let Some(s) = success {
                    vars[s.index()] = i64::from(ok);
                }
                Ok(OpResult::Committed)
            }
            Op::FifoNbRead { fifo, dst, success } => {
                let effective = frame.timeline.op_cycle(offset);
                let channel = &mut shared.fifos[fifo.index()];
                let ok = match decide(channel.can_read_decided(effective), effective) {
                    Ok(b) => b,
                    Err(undecided) => return Ok(undecided),
                };
                if ok {
                    vars[dst.index()] = channel.pop(effective);
                    shared.fifo_accesses += 1;
                }
                if let Some(s) = success {
                    vars[s.index()] = i64::from(ok);
                }
                Ok(OpResult::Committed)
            }
            Op::FifoEmpty { fifo, dst } => {
                let effective = frame.timeline.op_cycle(offset);
                if let Some(d) = dst {
                    let channel = &shared.fifos[fifo.index()];
                    let can = match decide(channel.can_read_decided(effective), effective) {
                        Ok(b) => b,
                        Err(undecided) => return Ok(undecided),
                    };
                    vars[d.index()] = i64::from(!can);
                }
                Ok(OpResult::Committed)
            }
            Op::FifoFull { fifo, dst } => {
                let effective = frame.timeline.op_cycle(offset);
                if let Some(d) = dst {
                    let channel = &shared.fifos[fifo.index()];
                    let can = match decide(channel.can_write_decided(effective), effective) {
                        Ok(b) => b,
                        Err(undecided) => return Ok(undecided),
                    };
                    vars[d.index()] = i64::from(!can);
                }
                Ok(OpResult::Committed)
            }
            Op::AxiReadReq { bus, addr, len } => {
                let a = eval(addr, vars);
                let l = eval(len, vars);
                let effective = frame.timeline.op_cycle(offset);
                shared.axis[bus.index()].read_req(a, l, effective);
                Ok(OpResult::Committed)
            }
            Op::AxiRead { bus, dst } => {
                let port = design.axi_port(*bus);
                let channel = &mut shared.axis[bus.index()];
                let (ready, addr) =
                    channel
                        .next_read_beat()
                        .ok_or_else(|| SimError::AxiProtocolViolation {
                            detail: format!(
                                "read beat on '{}' without an outstanding burst",
                                port.name
                            ),
                        })?;
                let effective = frame.timeline.op_cycle(offset);
                let commit = ready.max(effective);
                if commit > cycle {
                    return Ok(OpResult::WaitFuture);
                }
                let data = &shared.arrays[port.array.index()];
                let value = usize::try_from(addr)
                    .ok()
                    .and_then(|i| data.get(i).copied())
                    .ok_or(SimError::ArrayOutOfBounds {
                        array: port.array,
                        index: addr,
                        len: data.len(),
                    })?;
                frame.timeline.stall_until(offset, commit);
                channel.take_read_beat();
                vars[dst.index()] = value;
                Ok(OpResult::Committed)
            }
            Op::AxiWriteReq { bus, addr, len } => {
                let a = eval(addr, vars);
                let l = eval(len, vars);
                let effective = frame.timeline.op_cycle(offset);
                shared.axis[bus.index()].write_req(a, l, effective);
                Ok(OpResult::Committed)
            }
            Op::AxiWrite { bus, value } => {
                let port = design.axi_port(*bus);
                let val = eval(value, vars);
                let addr = shared.axis[bus.index()].next_write_addr().ok_or_else(|| {
                    SimError::AxiProtocolViolation {
                        detail: format!(
                            "write beat on '{}' without an outstanding burst",
                            port.name
                        ),
                    }
                })?;
                let data = &mut shared.arrays[port.array.index()];
                let len = data.len();
                let slot = usize::try_from(addr)
                    .ok()
                    .and_then(|i| data.get_mut(i))
                    .ok_or(SimError::ArrayOutOfBounds {
                        array: port.array,
                        index: addr,
                        len,
                    })?;
                *slot = val;
                let effective = frame.timeline.op_cycle(offset);
                shared.axis[bus.index()].take_write_beat(effective);
                Ok(OpResult::Committed)
            }
            Op::AxiWriteResp { bus } => {
                let ready = shared.axis[bus.index()].write_resp_ready();
                let effective = frame.timeline.op_cycle(offset);
                let commit = ready.max(effective);
                if commit > cycle {
                    return Ok(OpResult::WaitFuture);
                }
                frame.timeline.stall_until(offset, commit);
                Ok(OpResult::Committed)
            }
            Op::Call { callee, args, dst } => {
                let arg_values: Vec<i64> = args.iter().map(|a| eval(a, vars)).collect();
                Ok(OpResult::EnterCall {
                    callee: *callee,
                    args: arg_values,
                    dst: *dst,
                    offset,
                })
            }
            Op::Output { output, value } => {
                let val = eval(value, vars);
                shared
                    .outputs
                    .insert(design.output_name(*output).to_owned(), val);
                Ok(OpResult::Committed)
            }
        }
    }
}

#[derive(Debug)]
enum OpResult {
    Committed,
    Blocked(String),
    WaitFuture,
    Undecided {
        effective: u64,
    },
    EnterCall {
        callee: ModuleId,
        args: Vec<i64>,
        dst: Option<VarId>,
        offset: u64,
    },
}

fn eval(expr: &Expr, vars: &[i64]) -> i64 {
    expr.eval(&|v: VarId| vars[v.index()])
}

/// True for operations whose timing is visible to other tasks through a
/// shared channel (FIFO or AXI): only these are gated on the wall clock in
/// [`TaskState::step_cycle`].
fn interacts_with_channels(op: &Op) -> bool {
    matches!(
        op,
        Op::FifoWrite { .. }
            | Op::FifoRead { .. }
            | Op::FifoNbWrite { .. }
            | Op::FifoNbRead { .. }
            | Op::FifoEmpty { .. }
            | Op::FifoFull { .. }
            | Op::AxiReadReq { .. }
            | Op::AxiRead { .. }
            | Op::AxiWriteReq { .. }
            | Op::AxiWrite { .. }
            | Op::AxiWriteResp { .. }
    )
}
