//! Unified-API adapter: the cycle-stepped reference simulator as a
//! [`Simulator`] backend, its [`CompiledSim`] session artifact, and the
//! conversions from the native report types.

use crate::report::{RtlOutcome, RtlReport};
use crate::simulator::{RtlConfig, RtlSimulator};
use omnisim_api::{
    Capabilities, CompiledSim, RunConfig, RunPath, SimFailure, SimOutcome, SimReport, SimTimings,
    Simulator,
};
use omnisim_codec::{frame, unframe, ByteReader, ByteWriter, CodecError};
use omnisim_ir::{Design, ModuleId};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Magic bytes of an encoded reference-simulator artifact.
pub const RTL_MAGIC: [u8; 4] = *b"OSAR";
/// Current reference-artifact encoding version.
pub const RTL_VERSION: u16 = 1;

/// The cycle-stepped reference simulator as a unified [`Simulator`] backend.
///
/// Cycle-accurate on every taxonomy class, but slow: runtime scales with the
/// simulated cycle count, exactly like the RTL co-simulation it stands in
/// for. Its [`CompiledSim`] artifact caches the elaborated design and task
/// list, but — unlike the trace/graph backends — every run still steps
/// every cycle; the compile phase amortizes elaboration only, by design.
#[derive(Debug, Default, Clone, Copy)]
pub struct RtlBackend {
    /// Configuration used for every run.
    pub config: RtlConfig,
}

impl RtlBackend {
    /// Creates a backend with an explicit configuration.
    pub fn with_config(config: RtlConfig) -> Self {
        RtlBackend { config }
    }
}

impl Simulator for RtlBackend {
    fn name(&self) -> &'static str {
        "rtl"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            cycle_accurate: true,
            handles_type_b: true,
            handles_type_c: true,
            produces_timings: false,
            incremental_dse: false,
            compiled_dse: false,
            compiled_run: true,
            serializable_artifact: true,
        }
    }

    fn compile(&self, design: &Design) -> Result<Box<dyn CompiledSim>, SimFailure> {
        let started = Instant::now();
        let design = design.clone();
        let tasks = design.dataflow_tasks();
        let declared_depths = design.fifo_depths();
        Ok(Box::new(CompiledRtl {
            design,
            tasks,
            declared_depths,
            config: self.config,
            compile_timings: SimTimings {
                front_end: started.elapsed(),
                ..SimTimings::default()
            },
            declared_runs: AtomicU64::new(0),
            resized_runs: AtomicU64::new(0),
        }))
    }

    fn decode_artifact(
        &self,
        design: &Design,
        bytes: &[u8],
    ) -> Result<Box<dyn CompiledSim>, SimFailure> {
        decode_compiled(design, bytes)
            .map(|compiled| Box::new(compiled) as Box<dyn CompiledSim>)
            .map_err(|error| {
                SimFailure::internal("rtl", format!("artifact decode failed: {error}"))
            })
    }
}

/// Encodes a compiled reference-simulator artifact.
///
/// The reference simulator re-steps every cycle per run, so its artifact
/// holds nothing the design cannot re-derive — only the compile-time
/// [`RtlConfig`] (plus the design name as a wrong-design guard) needs to
/// survive the round trip; elaboration (design clone, task list, declared
/// depths) is repeated at decode time.
pub fn encode_compiled(compiled: &CompiledRtl) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(&compiled.design.name);
    w.u64(compiled.config.max_cycles);
    frame(RTL_MAGIC, RTL_VERSION, &w.into_bytes())
}

/// Decodes an artifact encoded by [`encode_compiled`] against the design it
/// was compiled from.
///
/// # Errors
///
/// Any [`CodecError`]; an artifact naming a different design surfaces as
/// [`CodecError::Invalid`].
pub fn decode_compiled(design: &Design, bytes: &[u8]) -> Result<CompiledRtl, CodecError> {
    let payload = unframe(RTL_MAGIC, RTL_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let design_name = r.str()?;
    if design_name != design.name {
        return Err(CodecError::Invalid(format!(
            "artifact belongs to design '{design_name}', not '{}'",
            design.name
        )));
    }
    let config = RtlConfig {
        max_cycles: r.u64()?,
    };
    r.finish()?;
    Ok(CompiledRtl {
        design: design.clone(),
        tasks: design.dataflow_tasks(),
        declared_depths: design.fifo_depths(),
        config,
        compile_timings: SimTimings::default(),
        declared_runs: AtomicU64::new(0),
        resized_runs: AtomicU64::new(0),
    })
}

/// The reference simulator's session artifact: the elaborated design and
/// its dataflow task list, cycle-stepped afresh on every run.
#[derive(Debug)]
pub struct CompiledRtl {
    design: Design,
    tasks: Vec<ModuleId>,
    declared_depths: Vec<usize>,
    config: RtlConfig,
    compile_timings: SimTimings,
    // Every run cycle-steps; these record whether it stepped the compiled
    // design or a depth-resized clone. Scraped by the serving tier through
    // `CompiledSim::counters`.
    declared_runs: AtomicU64,
    resized_runs: AtomicU64,
}

impl CompiledRtl {
    /// The dataflow tasks cached at compile time.
    pub fn tasks(&self) -> &[ModuleId] {
        &self.tasks
    }
}

impl CompiledSim for CompiledRtl {
    fn backend(&self) -> &'static str {
        "rtl"
    }

    fn design_name(&self) -> &str {
        &self.design.name
    }

    fn compile_timings(&self) -> SimTimings {
        self.compile_timings
    }

    fn run(&self, config: &RunConfig) -> Result<SimReport, SimFailure> {
        let rtl_config = RtlConfig {
            max_cycles: config.max_cycles.unwrap_or(self.config.max_cycles),
        };
        let resized = match config.fifo_depths.as_deref() {
            Some(depths) if depths != self.declared_depths => {
                if depths.len() != self.declared_depths.len() {
                    return Err(SimFailure::execution(
                        "rtl",
                        format!(
                            "depth vector has {} entries but the design has {} fifos",
                            depths.len(),
                            self.declared_depths.len()
                        ),
                    ));
                }
                if depths.contains(&0) {
                    return Err(SimFailure::execution(
                        "rtl",
                        "FIFO depths must be at least one",
                    ));
                }
                Some(self.design.with_fifo_depths(depths))
            }
            _ => None,
        };
        let design = resized.as_ref().unwrap_or(&self.design);
        let path = if resized.is_some() {
            self.resized_runs.fetch_add(1, Ordering::Relaxed);
            RunPath("resized_run")
        } else {
            self.declared_runs.fetch_add(1, Ordering::Relaxed);
            RunPath("declared_run")
        };
        RtlSimulator::with_config(design, rtl_config)
            .run()
            .map(|native| {
                let mut report = SimReport::from(native);
                report.extras.insert(path);
                report
            })
            .map_err(|error| SimFailure::execution("rtl", error.to_string()))
    }

    fn encode(&self) -> Option<Vec<u8>> {
        Some(encode_compiled(self))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("declared_runs", self.declared_runs.load(Ordering::Relaxed)),
            ("resized_runs", self.resized_runs.load(Ordering::Relaxed)),
        ]
    }
}

impl From<RtlOutcome> for SimOutcome {
    fn from(outcome: RtlOutcome) -> SimOutcome {
        match outcome {
            RtlOutcome::Completed => SimOutcome::Completed,
            RtlOutcome::Deadlock { blocked, .. } => SimOutcome::Deadlock { blocked },
            RtlOutcome::CycleLimit { limit } => SimOutcome::CycleLimit { limit },
        }
    }
}

impl From<RtlReport> for SimReport {
    fn from(report: RtlReport) -> SimReport {
        let mut unified = SimReport::new("rtl", report.outcome.clone().into());
        unified.outputs = report.outputs.clone();
        unified.total_cycles = Some(report.total_cycles);
        unified.timings.execution = report.wall_time;
        unified.extras.insert(report);
        unified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::design::OutputMap;
    use omnisim_ir::{DesignBuilder, Expr};
    use std::time::Duration;

    fn sample_report(outcome: RtlOutcome) -> RtlReport {
        let mut outputs = OutputMap::new();
        outputs.insert("sum".into(), 55);
        RtlReport {
            outcome,
            outputs,
            total_cycles: 42,
            cycles_stepped: 42,
            fifo_accesses: 20,
            wall_time: Duration::from_millis(3),
        }
    }

    #[test]
    fn completed_report_converts() {
        let unified: SimReport = sample_report(RtlOutcome::Completed).into();
        assert_eq!(unified.backend, "rtl");
        assert!(unified.outcome.is_completed());
        assert_eq!(unified.output("sum"), Some(55));
        assert_eq!(unified.total_cycles, Some(42));
        assert_eq!(unified.timings.execution, Duration::from_millis(3));
        // The native report rides along in the extras.
        let native = unified.extras.get::<RtlReport>().unwrap();
        assert_eq!(native.cycles_stepped, 42);
        assert_eq!(native.fifo_accesses, 20);
    }

    #[test]
    fn deadlock_keeps_blocked_tasks() {
        let outcome = RtlOutcome::Deadlock {
            cycle: 17,
            blocked: vec!["task 'a' blocked on fifo 'q'".into()],
        };
        let unified: SimOutcome = outcome.into();
        match &unified {
            SimOutcome::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].contains("task 'a'"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(unified.is_deadlock());
    }

    #[test]
    fn cycle_limit_maps_to_cycle_limit() {
        let unified: SimOutcome = RtlOutcome::CycleLimit { limit: 99 }.into();
        assert_eq!(unified, SimOutcome::CycleLimit { limit: 99 });
    }

    fn producer_consumer(n: i64, depth: usize) -> Design {
        let mut d = DesignBuilder::new("pc");
        let out = d.output("sum");
        let q = d.fifo("q", depth);
        let p = d.function("p", |m| {
            m.counted_loop("i", n, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(q, i.add(Expr::imm(1)));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", n, 1, |b| {
                let v = b.fifo_read(q);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        d.build().unwrap()
    }

    #[test]
    fn compiled_sessions_step_cycles_per_run() {
        let design = producer_consumer(24, 2);
        let backend = RtlBackend::default();
        let one_shot = backend.simulate(&design).unwrap();
        let compiled = backend.compile(&design).unwrap();
        assert_eq!(compiled.design_name(), "pc");

        let replay = compiled.run(&RunConfig::default()).unwrap();
        assert_eq!(replay.outputs, one_shot.outputs);
        assert_eq!(replay.total_cycles, one_shot.total_cycles);

        // Depth overrides re-step the resized design.
        let narrow = compiled
            .run(&RunConfig::new().with_fifo_depths([1usize]))
            .unwrap();
        let fresh = backend.simulate(&design.with_fifo_depths(&[1])).unwrap();
        assert_eq!(narrow.total_cycles, fresh.total_cycles);

        // Per-run cycle budgets are honoured.
        let limited = compiled.run(&RunConfig::new().with_max_cycles(3)).unwrap();
        assert_eq!(limited.outcome, SimOutcome::CycleLimit { limit: 3 });

        // Bad depth vectors are caller errors, not panics.
        assert!(compiled
            .run(&RunConfig::new().with_fifo_depths([1usize, 2]))
            .is_err());
        assert!(compiled
            .run(&RunConfig::new().with_fifo_depths([0usize]))
            .is_err());
    }
}
