//! Unified-API adapter: the cycle-stepped reference simulator as a
//! [`Simulator`] backend, plus the conversions from the native report types.

use crate::report::{RtlOutcome, RtlReport};
use crate::simulator::{RtlConfig, RtlSimulator};
use omnisim_api::{Capabilities, SimFailure, SimOutcome, SimReport, Simulator};
use omnisim_ir::Design;

/// The cycle-stepped reference simulator as a unified [`Simulator`] backend.
///
/// Cycle-accurate on every taxonomy class, but slow: runtime scales with the
/// simulated cycle count, exactly like the RTL co-simulation it stands in
/// for.
#[derive(Debug, Default, Clone, Copy)]
pub struct RtlBackend {
    /// Configuration used for every run.
    pub config: RtlConfig,
}

impl RtlBackend {
    /// Creates a backend with an explicit configuration.
    pub fn with_config(config: RtlConfig) -> Self {
        RtlBackend { config }
    }
}

impl Simulator for RtlBackend {
    fn name(&self) -> &'static str {
        "rtl"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            cycle_accurate: true,
            handles_type_b: true,
            handles_type_c: true,
            produces_timings: false,
            incremental_dse: false,
            compiled_dse: false,
        }
    }

    fn simulate(&self, design: &Design) -> Result<SimReport, SimFailure> {
        RtlSimulator::with_config(design, self.config)
            .run()
            .map(SimReport::from)
            .map_err(|error| SimFailure::execution("rtl", error.to_string()))
    }
}

impl From<RtlOutcome> for SimOutcome {
    fn from(outcome: RtlOutcome) -> SimOutcome {
        match outcome {
            RtlOutcome::Completed => SimOutcome::Completed,
            RtlOutcome::Deadlock { blocked, .. } => SimOutcome::Deadlock { blocked },
            RtlOutcome::CycleLimit { limit } => SimOutcome::CycleLimit { limit },
        }
    }
}

impl From<RtlReport> for SimReport {
    fn from(report: RtlReport) -> SimReport {
        let mut unified = SimReport::new("rtl", report.outcome.clone().into());
        unified.outputs = report.outputs.clone();
        unified.total_cycles = Some(report.total_cycles);
        unified.timings.execution = report.wall_time;
        unified.extras.insert(report);
        unified
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::design::OutputMap;
    use std::time::Duration;

    fn sample_report(outcome: RtlOutcome) -> RtlReport {
        let mut outputs = OutputMap::new();
        outputs.insert("sum".into(), 55);
        RtlReport {
            outcome,
            outputs,
            total_cycles: 42,
            cycles_stepped: 42,
            fifo_accesses: 20,
            wall_time: Duration::from_millis(3),
        }
    }

    #[test]
    fn completed_report_converts() {
        let unified: SimReport = sample_report(RtlOutcome::Completed).into();
        assert_eq!(unified.backend, "rtl");
        assert!(unified.outcome.is_completed());
        assert_eq!(unified.output("sum"), Some(55));
        assert_eq!(unified.total_cycles, Some(42));
        assert_eq!(unified.timings.execution, Duration::from_millis(3));
        // The native report rides along in the extras.
        let native = unified.extras.get::<RtlReport>().unwrap();
        assert_eq!(native.cycles_stepped, 42);
        assert_eq!(native.fifo_accesses, 20);
    }

    #[test]
    fn deadlock_keeps_blocked_tasks() {
        let outcome = RtlOutcome::Deadlock {
            cycle: 17,
            blocked: vec!["task 'a' blocked on fifo 'q'".into()],
        };
        let unified: SimOutcome = outcome.into();
        match &unified {
            SimOutcome::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 1);
                assert!(blocked[0].contains("task 'a'"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert!(unified.is_deadlock());
    }

    #[test]
    fn cycle_limit_maps_to_cycle_limit() {
        let unified: SimOutcome = RtlOutcome::CycleLimit { limit: 99 }.into();
        assert_eq!(unified, SimOutcome::CycleLimit { limit: 99 });
    }
}
