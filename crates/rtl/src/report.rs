//! Reference-simulation results.

use omnisim_ir::design::OutputMap;
use std::time::Duration;

/// How the reference simulation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtlOutcome {
    /// Every dataflow task ran to completion.
    Completed,
    /// A design-level deadlock was detected: every unfinished task was
    /// blocked on a FIFO access that can never complete.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Names of the blocked tasks and the FIFOs they are blocked on.
        blocked: Vec<String>,
    },
    /// The configured cycle limit was reached before completion.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl RtlOutcome {
    /// True if the simulation completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RtlOutcome::Completed)
    }

    /// True if a deadlock was detected.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, RtlOutcome::Deadlock { .. })
    }
}

/// The result of a reference (cycle-stepped) simulation run.
#[derive(Debug, Clone)]
pub struct RtlReport {
    /// How the run ended.
    pub outcome: RtlOutcome,
    /// Final value of every testbench-visible output that was written.
    pub outputs: OutputMap,
    /// End-to-end latency in clock cycles (for deadlocks, the detection
    /// cycle; for cycle-limit aborts, the limit).
    pub total_cycles: u64,
    /// Number of simulated clock cycles actually stepped.
    pub cycles_stepped: u64,
    /// Total FIFO accesses committed (reads + writes).
    pub fifo_accesses: u64,
    /// Host wall-clock time of the run.
    pub wall_time: Duration,
}

impl RtlReport {
    /// Convenience accessor: value of a named output, if written.
    pub fn output(&self, name: &str) -> Option<i64> {
        self.outputs.get(name).copied()
    }
}
