//! # omnisim-rtlsim
//!
//! A cycle-stepped reference simulator that stands in for C/RTL
//! co-simulation in the paper's evaluation.
//!
//! Real co-simulation runs the synthesized Verilog in an event-driven RTL
//! simulator; its roles in the evaluation are (1) ground-truth functional
//! outputs, (2) ground-truth cycle counts and (3) the slow baseline that
//! OmniSim is compared against (Fig. 8). This crate provides the same three
//! roles for `omnisim-ir` designs by advancing a global clock one cycle at a
//! time and letting every dataflow task attempt its scheduled operations at
//! each cycle, with registered FIFO semantics (a value written at cycle *c*
//! is visible to reads strictly after *c*) and real FIFO depths.
//!
//! Because every module is evaluated at every cycle, runtime scales with the
//! simulated cycle count — exactly the property that makes RTL co-simulation
//! slow and event-driven simulation (LightningSim, OmniSim) fast.
//!
//! # Example
//!
//! ```
//! use omnisim_rtlsim::RtlSimulator;
//! use omnisim_ir::{DesignBuilder, Expr};
//!
//! let mut d = DesignBuilder::new("pc");
//! let data = d.array("data", (1..=8).collect::<Vec<i64>>());
//! let out = d.output("sum");
//! let q = d.fifo("q", 2);
//! let p = d.function("producer", |m| {
//!     m.counted_loop("i", 8, 1, |b| {
//!         let i = b.var_expr("i");
//!         let v = b.array_load(data, i);
//!         b.fifo_write(q, Expr::var(v));
//!     });
//! });
//! let c = d.function("consumer", |m| {
//!     let acc = m.var("acc");
//!     m.entry(|b| { b.assign(acc, Expr::imm(0)); });
//!     m.counted_loop("i", 8, 1, |b| {
//!         let v = b.fifo_read(q);
//!         b.assign(acc, Expr::var(acc).add(Expr::var(v)));
//!     });
//!     m.exit(|b| { b.output(out, Expr::var(acc)); });
//! });
//! d.dataflow_top("top", [p, c]);
//! let design = d.build().unwrap();
//!
//! let report = RtlSimulator::new(&design).run().unwrap();
//! assert_eq!(report.outputs["sum"], 36);
//! assert!(report.total_cycles > 8);
//!
//! // Via the unified API: the same run through `dyn Simulator`.
//! use omnisim_api::Simulator;
//! let backend: Box<dyn Simulator> = Box::new(omnisim_rtlsim::RtlBackend::default());
//! assert!(backend.capabilities().cycle_accurate);
//! let unified = backend.simulate(&design).unwrap();
//! assert_eq!(unified.output("sum"), Some(36));
//! assert_eq!(unified.total_cycles, Some(report.total_cycles));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod channel;
pub mod report;
pub mod simulator;
pub mod task;
pub mod unified;

pub use report::{RtlOutcome, RtlReport};
pub use simulator::{RtlConfig, RtlSimulator};
pub use unified::{CompiledRtl, RtlBackend};
