//! Benchmarks comparing the simulators on representative designs (the
//! measured counterparts of Fig. 8(b) and Table 5), plus the incremental
//! re-simulation microbenchmark behind Table 6 and the §7.3 ablations.
//!
//! The build container has no access to external crates, so this is a
//! plain `harness = false` binary with a manual timing loop (median of N
//! iterations after warmup) instead of Criterion. Run with:
//! `cargo bench -p omnisim-bench`

use omnisim_designs::{fig4, misc, typea};
use omnisim_suite::omnisim::IncrementalState;
use omnisim_suite::{backend, Simulator};
use std::time::{Duration, Instant};

/// Times `f` over `iters` iterations (after one warmup call) and returns
/// the median.
fn median_time(iters: usize, mut f: impl FnMut()) -> Duration {
    f(); // warmup
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn report(group: &str, name: &str, time: Duration) {
    println!("{group:<28} {name:<36} {time:>12.2?}");
}

fn header(group: &str) {
    println!("\n== {group} ==");
}

/// Fig. 8(b): reference (co-sim stand-in) vs OmniSim vs C-sim on Type B/C
/// designs, at a reduced workload size to keep runs short.
fn cosim_vs_omnisim() {
    header("fig8b_runtime");
    let n = 512;
    let designs = vec![
        ("fig4_ex5", fig4::ex5(n)),
        ("fig4_ex4b", fig4::ex4b(n)),
        ("branch", misc::branch(n)),
    ];
    for sim_name in ["rtl", "omnisim", "csim"] {
        let sim = backend(sim_name).expect("registered");
        for (name, design) in &designs {
            let time = median_time(10, || {
                sim.simulate(design).expect("benchmark run succeeds");
            });
            report("fig8b_runtime", &format!("{sim_name}/{name}"), time);
        }
    }
}

/// Table 5: LightningSim baseline vs OmniSim on Type A designs of increasing
/// size (the largest corresponds to a FlowGNN-scale dataflow graph).
fn lightning_vs_omnisim() {
    header("table5_typea");
    let designs = vec![
        ("matmul_16", typea::matmul(16)),
        ("vecadd_4k", typea::vecadd_stream(4096, 4)),
        (
            "pipeline_12x4k",
            typea::dataflow_graph("pipeline_12x4k", 12, 4096, 1),
        ),
    ];
    for sim_name in ["lightning", "omnisim"] {
        let sim = backend(sim_name).expect("registered");
        for (name, design) in &designs {
            let time = median_time(10, || {
                sim.simulate(design).expect("benchmark run succeeds");
            });
            report("table5_typea", &format!("{sim_name}/{name}"), time);
        }
    }
}

/// Table 6: incremental re-analysis vs full re-simulation of fig4_ex5.
fn incremental_resimulation() {
    header("table6_incremental");
    let n = 1024;
    let design = fig4::ex5_with_depths(n, 2, 2);
    let omni = backend("omnisim").expect("registered");
    let baseline = omni.simulate(&design).expect("baseline run");
    let incremental = baseline
        .extras
        .get::<IncrementalState>()
        .expect("omnisim ships incremental state");

    let time = median_time(20, || {
        incremental.try_with_depths(&[2, 100]).unwrap();
    });
    report("table6_incremental", "incremental_depth_change", time);

    let resized = fig4::ex5_with_depths(n, 2, 100);
    let time = median_time(10, || {
        omni.simulate(&resized).expect("full re-simulation");
    });
    report("table6_incremental", "full_resimulation", time);
}

/// Ablations called out in §7.3: adjacency-list vs CSR simulation graphs,
/// and the dead FIFO-check elision pass.
fn ablations() {
    use omnisim_graph::{CsrGraphBuilder, EventGraph};
    use omnisim_suite::omnisim::{OmniBackend, SimConfig};

    header("ablation_graph_structure");
    let nodes = 50_000usize;
    let time = median_time(20, || {
        let mut g = EventGraph::with_capacity(nodes);
        let mut prev = g.add_node(0);
        for i in 1..nodes {
            let node = g.add_node(i as u64);
            g.add_edge(prev, node, 1);
            prev = node;
        }
        g.recompute().unwrap();
    });
    report("ablation_graph_structure", "adjacency_build_and_time", time);

    let time = median_time(20, || {
        let mut builder = CsrGraphBuilder::new();
        let mut prev = builder.add_node(0);
        for i in 1..nodes {
            let node = builder.add_node(i as u64);
            builder.add_edge(prev, node, 1);
            prev = node;
        }
        let g = builder.build();
        g.times().unwrap();
    });
    report("ablation_graph_structure", "csr_build_and_time", time);

    header("ablation_dead_check_elision");
    let design = fig4::ex2(512);
    let with_elision = OmniBackend::with_config(SimConfig::default());
    let without_elision =
        OmniBackend::with_config(SimConfig::default().with_dead_check_elision(false));
    let time = median_time(10, || {
        with_elision.simulate(&design).unwrap();
    });
    report("ablation_dead_check_elision", "with_elision", time);
    let time = median_time(10, || {
        without_elision.simulate(&design).unwrap();
    });
    report("ablation_dead_check_elision", "without_elision", time);
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    cosim_vs_omnisim();
    lightning_vs_omnisim();
    incremental_resimulation();
    ablations();
}
