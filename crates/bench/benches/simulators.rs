//! Criterion benchmarks comparing the simulators on representative designs
//! (the measured counterparts of Fig. 8(b) and Table 5), plus the
//! incremental-re-simulation microbenchmark behind Table 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omnisim::OmniSimulator;
use omnisim_csim as csim;
use omnisim_designs::{fig4, misc, typea};
use omnisim_lightning::LightningSimulator;
use omnisim_rtlsim::RtlSimulator;
use std::time::Duration;

/// Fig. 8(b): reference (co-sim stand-in) vs OmniSim vs C-sim on Type B/C
/// designs, at a reduced workload size to keep Criterion runs short.
fn cosim_vs_omnisim(c: &mut Criterion) {
    let n = 512;
    let designs = vec![
        ("fig4_ex5", fig4::ex5(n)),
        ("fig4_ex4b", fig4::ex4b(n)),
        ("branch", misc::branch(n)),
    ];
    let mut group = c.benchmark_group("fig8b_runtime");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for (name, design) in &designs {
        group.bench_with_input(BenchmarkId::new("reference", name), design, |b, d| {
            b.iter(|| RtlSimulator::new(d).run().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("omnisim", name), design, |b, d| {
            b.iter(|| OmniSimulator::new(d).run().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("csim", name), design, |b, d| {
            b.iter(|| csim::simulate(d));
        });
    }
    group.finish();
}

/// Table 5: LightningSim baseline vs OmniSim on Type A designs of increasing
/// size (the largest corresponds to a FlowGNN-scale dataflow graph).
fn lightning_vs_omnisim(c: &mut Criterion) {
    let designs = vec![
        ("matmul_16", typea::matmul(16)),
        ("vecadd_4k", typea::vecadd_stream(4096, 4)),
        ("pipeline_12x4k", typea::dataflow_graph("pipeline_12x4k", 12, 4096, 1)),
    ];
    let mut group = c.benchmark_group("table5_typea");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    for (name, design) in &designs {
        group.bench_with_input(BenchmarkId::new("lightningsim", name), design, |b, d| {
            b.iter(|| LightningSimulator::new(d).unwrap().simulate().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("omnisim", name), design, |b, d| {
            b.iter(|| OmniSimulator::new(d).run().unwrap());
        });
    }
    group.finish();
}

/// Table 6: incremental re-analysis vs full re-simulation of fig4_ex5.
fn incremental_resimulation(c: &mut Criterion) {
    let n = 1024;
    let design = fig4::ex5_with_depths(n, 2, 2);
    let report = OmniSimulator::new(&design).run().unwrap();
    let mut group = c.benchmark_group("table6_incremental");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("incremental_depth_change", |b| {
        b.iter(|| report.incremental.try_with_depths(&[2, 100]).unwrap());
    });
    group.bench_function("full_resimulation", |b| {
        let resized = fig4::ex5_with_depths(n, 2, 100);
        b.iter(|| OmniSimulator::new(&resized).run().unwrap());
    });
    group.finish();
}

/// Ablations called out in §7.3: adjacency-list vs CSR simulation graphs,
/// and the dead FIFO-check elision pass.
fn ablations(c: &mut Criterion) {
    use omnisim_graph::{CsrGraphBuilder, EventGraph};

    let nodes = 50_000usize;
    let mut group = c.benchmark_group("ablation_graph_structure");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("adjacency_build_and_time", |b| {
        b.iter(|| {
            let mut g = EventGraph::with_capacity(nodes);
            let mut prev = g.add_node(0);
            for i in 1..nodes {
                let node = g.add_node(i as u64);
                g.add_edge(prev, node, 1);
                prev = node;
            }
            g.recompute().unwrap()
        });
    });
    group.bench_function("csr_build_and_time", |b| {
        b.iter(|| {
            let mut builder = CsrGraphBuilder::new();
            let mut prev = builder.add_node(0);
            for i in 1..nodes {
                let node = builder.add_node(i as u64);
                builder.add_edge(prev, node, 1);
                prev = node;
            }
            let g = builder.build();
            g.times().unwrap()
        });
    });
    group.finish();

    let mut group = c.benchmark_group("ablation_dead_check_elision");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    let design = fig4::ex2(512);
    group.bench_function("with_elision", |b| {
        b.iter(|| {
            OmniSimulator::with_config(&design, omnisim::SimConfig::default())
                .run()
                .unwrap()
        });
    });
    group.bench_function("without_elision", |b| {
        b.iter(|| {
            OmniSimulator::with_config(
                &design,
                omnisim::SimConfig::default().with_dead_check_elision(false),
            )
            .run()
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    cosim_vs_omnisim,
    lightning_vs_omnisim,
    incremental_resimulation,
    ablations
);
criterion_main!(benches);
