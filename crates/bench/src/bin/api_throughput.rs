//! Session-API throughput benchmark: one-shot `Simulator::simulate` vs
//! amortized `CompiledSim::run`, per backend, plus `SimService` batched
//! serving throughput.
//!
//! For every backend, a Type A fixture is simulated two ways:
//!
//! 1. **one-shot** — a fresh `simulate()` per request, re-paying the front
//!    end (elaboration, trace/event-graph construction, execution) every
//!    time;
//! 2. **amortized** — `compile()` once, then one `run()` per request
//!    against the shared artifact: cached replays for the compiled depths
//!    and incremental re-finalizations for FIFO-depth overrides.
//!
//! A third section measures `SimService::run_batch` — the concurrent
//! serving layer — at several worker counts. A fourth compares a **cold
//! start** (fresh `compile`) against a **warm start** (`decode_artifact`
//! on the persisted encoding) per backend, on a trace-heavy workload
//! (`vecadd_stream`) and a compute-heavy one (`fir_filter`); a fifth
//! pushes the same batch through the TCP serving tier (`Server`/`Client`)
//! and checks it answers exactly like the in-process service; a sixth
//! replays a depth-sweep batch (every request re-finalizes under a
//! FIFO-depth override) on an instrumented vs an uninstrumented
//! (`MetricsRegistry::disabled`) service and asserts the telemetry layer
//! costs less than 5% of throughput; a seventh does the same for the
//! tracing layer (a live head-sampling `Tracer` vs `Tracer::disabled()`),
//! recorded as `trace_overhead`.
//!
//! Results are printed as a table and written to `BENCH_api.json`. Pass
//! `--smoke` for a seconds-scale run (used by CI) — same measurements,
//! smaller workload. The bench asserts the acceptance bars: amortized runs
//! beat one-shot simulation by ≥ 5x, and warm starts beat cold starts by
//! ≥ 5x on the compute-bound workload, each on the omnisim and lightning
//! backends.

use omnisim_bench::secs;
use omnisim_suite::designs::typea;
use omnisim_suite::ir::Design;
use omnisim_suite::obs::MetricsRegistry;
use omnisim_suite::serve::wire::WireReport;
use omnisim_suite::serve::{Client, DesignKey, Server, TraceConfig, Tracer};
use omnisim_suite::{backend, RunConfig, SimService, Simulator};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct BackendRow {
    name: &'static str,
    compile_time: Duration,
    one_shot_rps: f64,
    amortized_rps: f64,
    override_rps: Option<f64>,
    speedup: f64,
}

fn measure_backend(
    sim: &dyn Simulator,
    design: &Design,
    one_shot_iters: usize,
    run_iters: usize,
) -> BackendRow {
    // One-shot: a fresh full simulation per request.
    let start = Instant::now();
    for _ in 0..one_shot_iters {
        sim.simulate(design).expect("one-shot run succeeds");
    }
    let one_shot_rps = one_shot_iters as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Amortized: compile once, run many at the compiled depths.
    let start = Instant::now();
    let compiled = sim.compile(design).expect("design compiles");
    let compile_time = start.elapsed();
    let start = Instant::now();
    for _ in 0..run_iters {
        compiled
            .run(&RunConfig::default())
            .expect("amortized run succeeds");
    }
    let amortized_rps = run_iters as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Depth-override runs: per-run re-finalization work (cycle-accurate
    // backends only; csim ignores depths and rtl re-steps every cycle).
    let override_rps = sim.capabilities().cycle_accurate.then(|| {
        let fifos = design.fifos.len();
        let start = Instant::now();
        for i in 0..run_iters {
            let depth = 1 + (i % 16);
            compiled
                .run(&RunConfig::new().with_fifo_depths(vec![depth; fifos]))
                .expect("override run succeeds");
        }
        run_iters as f64 / start.elapsed().as_secs_f64().max(1e-9)
    });

    BackendRow {
        name: sim.name(),
        compile_time,
        one_shot_rps,
        amortized_rps,
        override_rps,
        speedup: amortized_rps / one_shot_rps.max(1e-9),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: i64 = if smoke { 128 } else { 512 };
    let one_shot_iters = if smoke { 6 } else { 20 };
    let run_iters = if smoke { 200 } else { 2000 };
    // rtl re-executes every cycle per run, so its run counts stay small.
    let rtl_iters = if smoke { 6 } else { 20 };

    let design = typea::vecadd_stream(n, 2);
    println!(
        "session-API throughput on vecadd_stream (N = {n}){}\n",
        if smoke { " [smoke]" } else { "" }
    );

    let mut rows = Vec::new();
    for name in ["csim", "lightning", "omnisim", "rtl"] {
        let sim = backend(name).expect("registered backend");
        let runs = if name == "rtl" { rtl_iters } else { run_iters };
        let shots = if name == "rtl" {
            rtl_iters
        } else {
            one_shot_iters
        };
        rows.push(measure_backend(sim.as_ref(), &design, shots, runs));
    }

    println!(
        "{:<11} {:>12} {:>14} {:>15} {:>15} {:>9}",
        "backend", "compile", "one-shot/s", "amortized/s", "override/s", "speedup"
    );
    omnisim_bench::rule(80);
    for row in &rows {
        println!(
            "{:<11} {:>12} {:>14.1} {:>15.1} {:>15} {:>8.1}x",
            row.name,
            secs(row.compile_time),
            row.one_shot_rps,
            row.amortized_rps,
            row.override_rps
                .map_or("-".to_owned(), |r| format!("{r:.1}")),
            row.speedup
        );
    }

    // The serving layer: batched mixed requests over a compiled fleet.
    let designs = [
        typea::vecadd_stream(n, 2),
        typea::fir_filter(n, 8),
        typea::window_conv(n, 4),
    ];
    let service = SimService::new(backend("omnisim").unwrap());
    let keys: Vec<_> = designs
        .iter()
        .map(|d| service.register(d).expect("fleet compiles"))
        .collect();
    let mut requests = Vec::new();
    let request_count = if smoke { 300 } else { 3000 };
    for i in 0..request_count {
        let which = i % keys.len();
        let config = if i % 2 == 0 {
            RunConfig::default()
        } else {
            RunConfig::new().with_fifo_depths(vec![1 + (i % 12); designs[which].fifos.len()])
        };
        requests.push((keys[which], config));
    }
    println!(
        "\nSimService batched serving ({} requests, 3 designs):",
        requests.len()
    );
    let mut service_rps = Vec::new();
    for workers in [1usize, 4, 0] {
        let (label, service) = if workers == 0 {
            (
                "default".to_owned(),
                SimService::new(backend("omnisim").unwrap()),
            )
        } else {
            (
                format!("workers={workers}"),
                SimService::new(backend("omnisim").unwrap()).with_workers(workers),
            )
        };
        for d in &designs {
            service.register(d).expect("fleet compiles");
        }
        let start = Instant::now();
        let reports = service.run_batch(&requests);
        let elapsed = start.elapsed();
        assert!(reports.iter().all(|r| r.is_ok()), "all requests served");
        let rps = requests.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        println!("  {label:<12} {} ({rps:.0} runs/sec)", secs(elapsed));
        service_rps.push((label, rps));
    }

    // Cold vs warm start: a fresh `compile` against a `decode_artifact` of
    // the persisted encoding — the cost a process restart pays with and
    // without the artifact store. Two workload shapes: `vecadd_stream` is
    // trace-heavy (the artifact grows with the run, so decode pays for
    // every recorded event), `fir_filter` is compute-heavy (the front end
    // burns cycles the artifact never has to replay) — the shape the store
    // amortizes best.
    struct WarmRow {
        workload: &'static str,
        name: &'static str,
        cold_secs: f64,
        warm_secs: f64,
        speedup: f64,
        artifact_bytes: usize,
    }
    let warm_iters = if smoke { 5 } else { 20 };
    let warm_fixtures = [
        ("vecadd_stream", design.clone()),
        (
            "fir_filter",
            typea::fir_filter(n, if smoke { 16 } else { 32 }),
        ),
    ];
    let mut warm_rows: Vec<WarmRow> = Vec::new();
    for (workload, fixture) in &warm_fixtures {
        println!("\ncold compile vs warm decode (persisted artifact, {workload}):");
        for name in ["csim", "lightning", "omnisim", "rtl"] {
            let sim = backend(name).expect("registered backend");
            let bytes = sim
                .compile(fixture)
                .expect("design compiles")
                .encode()
                .expect("every workspace backend persists");
            let start = Instant::now();
            for _ in 0..warm_iters {
                sim.compile(fixture).expect("design compiles");
            }
            let cold_secs = start.elapsed().as_secs_f64() / warm_iters as f64;
            let start = Instant::now();
            for _ in 0..warm_iters {
                sim.decode_artifact(fixture, &bytes)
                    .expect("artifact decodes");
            }
            let warm_secs = start.elapsed().as_secs_f64() / warm_iters as f64;
            let speedup = cold_secs / warm_secs.max(1e-12);
            println!(
                "  {name:<11} cold {:>10} warm {:>10} ({speedup:>7.1}x, {} artifact bytes)",
                secs(Duration::from_secs_f64(cold_secs)),
                secs(Duration::from_secs_f64(warm_secs)),
                bytes.len()
            );
            warm_rows.push(WarmRow {
                workload,
                name: sim.name(),
                cold_secs,
                warm_secs,
                speedup,
                artifact_bytes: bytes.len(),
            });
        }
    }

    // Cross-process leg: the same mixed batch through the TCP serving
    // tier, checked for exact agreement with the in-process service.
    let reference_service = SimService::new(backend("omnisim").unwrap());
    for d in &designs {
        reference_service.register(d).expect("fleet compiles");
    }
    // Timings are machine-local wall clock, so the determinism check
    // compares the `without_timings` projections.
    let expected: Vec<Result<WireReport, String>> = reference_service
        .run_batch(&requests)
        .iter()
        .map(|r| match r {
            Ok(report) => Ok(WireReport::from(report).without_timings()),
            Err(failure) => Err(failure.to_string()),
        })
        .collect();
    let server = Server::bind(
        SimService::new(backend("omnisim").unwrap()),
        ("127.0.0.1", 0),
    )
    .expect("loopback binds")
    // The whole batch arrives as one request; admit it in full.
    .with_max_in_flight(requests.len());
    let server_handle = server.handle();
    let serving = std::thread::spawn(move || server.serve().expect("serve loop"));
    let mut client = Client::connect(server_handle.addr()).expect("client connects");
    for d in &designs {
        client.register(d).expect("designs register");
    }
    let start = Instant::now();
    let remote = client.run_batch(&requests).expect("batch admitted");
    let wire_elapsed = start.elapsed();
    let remote: Vec<Result<WireReport, String>> = remote
        .into_iter()
        .map(|r| r.map(WireReport::without_timings))
        .collect();
    assert_eq!(
        remote, expected,
        "remote batch must match the in-process service exactly"
    );
    client.shutdown().expect("server shuts down");
    serving.join().expect("server thread exits");
    let wire_rps = requests.len() as f64 / wire_elapsed.as_secs_f64().max(1e-9);
    println!(
        "\nTCP serving tier: {} requests in {} ({wire_rps:.0} runs/sec), \
         results bit-identical to in-process",
        requests.len(),
        secs(wire_elapsed)
    );

    // Telemetry overhead: a depth-sweep batch on an instrumented service
    // (the default registry) vs one rebuilt over a disabled registry,
    // where every handle is a no-op. The overhead legs always run
    // *standard-size* requests (the full bench's N = 512 designs), even
    // under `--smoke`, and every request carries a FIFO-depth override —
    // the DSE sweep pattern this stack serves. Both choices guard the
    // denominator: a cached replay finishes in well under a microsecond,
    // so a replay-heavy batch would quote the fixed per-request telemetry
    // cost against near-zero work and measure request size, not the
    // telemetry layer. Override requests do real re-finalization (and
    // re-simulation where certification fails), which is the work the
    // telemetry is amortized over in a sweep.
    let overhead_n: i64 = 512;
    let overhead_designs = [
        typea::vecadd_stream(overhead_n, 2),
        typea::fir_filter(overhead_n, 8),
        typea::window_conv(overhead_n, 4),
    ];
    let overhead_requests: usize = 120;
    let build_service = |registry: Arc<MetricsRegistry>| {
        let service = SimService::new(backend("omnisim").unwrap()).with_metrics(registry);
        let keys: Vec<_> = overhead_designs
            .iter()
            .map(|d| service.register(d).expect("fleet compiles"))
            .collect();
        let requests: Vec<_> = (0..overhead_requests)
            .map(|i| {
                let which = i % keys.len();
                let config =
                    RunConfig::new()
                        .with_fifo_depths(vec![1 + (i % 12); overhead_designs[which].fifos.len()]);
                (keys[which], config)
            })
            .collect();
        (service, requests)
    };
    let instrumented = build_service(Arc::new(MetricsRegistry::new()));
    let uninstrumented = build_service(Arc::new(MetricsRegistry::disabled()));
    let time_batch = |(service, requests): &(SimService, Vec<(DesignKey, RunConfig)>)| {
        let start = Instant::now();
        let reports = service.run_batch(requests);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        assert!(reports.iter().all(|r| r.is_ok()), "all requests served");
        requests.len() as f64 / elapsed
    };
    // The machine's throughput drifts at second scale (frequency, cache
    // pressure from neighbours), so a best-of per side is not comparable
    // across sides. Each round times one service of each side
    // back-to-back — drift hits both legs of a pair alike — and the
    // overhead ratio is the median of the per-round ratios. Two extra
    // defenses against *persistent* bias, which pairing alone cannot
    // cancel: each side brings two independently built instances (heap
    // layout luck differs per instance, so rounds cross-pair them), and
    // the in-pair measurement order alternates every round (whoever runs
    // second inherits the other's cache state).
    type Leg = (SimService, Vec<(DesignKey, RunConfig)>);
    let compare = |with: [&Leg; 2], without: [&Leg; 2]| {
        for service in with.iter().chain(without.iter()) {
            time_batch(service);
        }
        let mut with_rps: f64 = 0.0;
        let mut without_rps: f64 = 0.0;
        let mut ratios: Vec<f64> = Vec::new();
        for round in 0..16 {
            let with_leg = with[round % 2];
            let without_leg = without[(round / 2) % 2];
            let (w, wo) = if round % 2 == 0 {
                let w = time_batch(with_leg);
                let wo = time_batch(without_leg);
                (w, wo)
            } else {
                let wo = time_batch(without_leg);
                let w = time_batch(with_leg);
                (w, wo)
            };
            with_rps = with_rps.max(w);
            without_rps = without_rps.max(wo);
            ratios.push(w / wo.max(1e-9));
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        (with_rps, without_rps, ratios[ratios.len() / 2])
    };
    let instrumented2 = build_service(Arc::new(MetricsRegistry::new()));
    let uninstrumented2 = build_service(Arc::new(MetricsRegistry::disabled()));
    let (instrumented_rps, uninstrumented_rps, overhead_ratio) = compare(
        [&instrumented, &instrumented2],
        [&uninstrumented, &uninstrumented2],
    );
    println!(
        "\nmetrics overhead (depth-sweep batch, median of 16 cross-paired rounds): \
         instrumented {instrumented_rps:.0} runs/sec, \
         uninstrumented {uninstrumented_rps:.0} runs/sec \
         ({:.1}% overhead)",
        (1.0 - overhead_ratio).max(0.0) * 100.0
    );

    // Tracing overhead: the same batch on a service with a live tracer
    // (head-sampling every request into the flight recorder) vs one whose
    // tracer is the no-op `Tracer::disabled()`. Same paired-round
    // discipline as the metrics leg.
    let build_traced = |tracer: Tracer| {
        let service = SimService::new(backend("omnisim").unwrap()).with_tracer(tracer);
        let keys: Vec<_> = overhead_designs
            .iter()
            .map(|d| service.register(d).expect("fleet compiles"))
            .collect();
        let requests: Vec<_> = instrumented
            .1
            .iter()
            .enumerate()
            .map(|(i, (_, config))| (keys[i % keys.len()], config.clone()))
            .collect();
        (service, requests)
    };
    let traced = build_traced(Tracer::new(TraceConfig::default()));
    let traced2 = build_traced(Tracer::new(TraceConfig::default()));
    let untraced = build_traced(Tracer::disabled());
    let untraced2 = build_traced(Tracer::disabled());
    let (traced_rps, untraced_rps, trace_ratio) =
        compare([&traced, &traced2], [&untraced, &untraced2]);
    println!(
        "\ntracing overhead (depth-sweep batch, median of 16 cross-paired rounds): \
         traced {traced_rps:.0} runs/sec, \
         untraced {untraced_rps:.0} runs/sec \
         ({:.1}% overhead)",
        (1.0 - trace_ratio).max(0.0) * 100.0
    );

    let mut json = String::from("{\n  \"bench\": \"api_throughput\",\n");
    let _ = writeln!(json, "  \"design\": \"vecadd_stream\",\n  \"n\": {n},");
    let _ = writeln!(json, "  \"smoke\": {smoke},\n  \"backends\": {{");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"compile_secs\": {:.6}, \"one_shot_rps\": {:.2}, \
             \"amortized_rps\": {:.2}, \"override_rps\": {}, \"speedup\": {:.2}}}{}",
            row.name,
            row.compile_time.as_secs_f64(),
            row.one_shot_rps,
            row.amortized_rps,
            row.override_rps
                .map_or("null".to_owned(), |r| format!("{r:.2}")),
            row.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},\n  \"service\": {{");
    for (i, (label, rps)) in service_rps.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{label}\": {rps:.2}{}",
            if i + 1 < service_rps.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},\n  \"warm_start\": {{");
    for (w, (workload, _)) in warm_fixtures.iter().enumerate() {
        let _ = writeln!(json, "    \"{workload}\": {{");
        let group: Vec<&WarmRow> = warm_rows
            .iter()
            .filter(|r| r.workload == *workload)
            .collect();
        for (i, row) in group.iter().enumerate() {
            let _ = writeln!(
                json,
                "      \"{}\": {{\"cold_compile_secs\": {:.6}, \"warm_decode_secs\": {:.6}, \
                 \"speedup\": {:.2}, \"artifact_bytes\": {}}}{}",
                row.name,
                row.cold_secs,
                row.warm_secs,
                row.speedup,
                row.artifact_bytes,
                if i + 1 < group.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if w + 1 < warm_fixtures.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},\n  \"metrics_overhead\": {{");
    let _ = writeln!(json, "    \"instrumented_rps\": {instrumented_rps:.2},");
    let _ = writeln!(json, "    \"uninstrumented_rps\": {uninstrumented_rps:.2},");
    let _ = writeln!(json, "    \"ratio\": {overhead_ratio:.4}");
    let _ = writeln!(json, "  }},\n  \"trace_overhead\": {{");
    let _ = writeln!(json, "    \"traced_rps\": {traced_rps:.2},");
    let _ = writeln!(json, "    \"untraced_rps\": {untraced_rps:.2},");
    let _ = writeln!(json, "    \"ratio\": {trace_ratio:.4}");
    let _ = writeln!(json, "  }},\n  \"wire\": {{");
    let _ = writeln!(json, "    \"requests\": {},", requests.len());
    let _ = writeln!(json, "    \"rps\": {wire_rps:.2}");
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_api.json", &json).expect("write BENCH_api.json");
    println!("\nwrote BENCH_api.json");

    // Acceptance bars: the backends that amortize their front end must beat
    // one-shot simulation by at least 5x, and decoding their persisted
    // artifact must beat recompiling by at least 5x.
    for name in ["omnisim", "lightning"] {
        let row = rows.iter().find(|r| r.name == name).expect("row exists");
        assert!(
            row.speedup >= 5.0,
            "{name}: amortized runs must be >= 5x one-shot simulate, got {:.1}x",
            row.speedup
        );
        let warm = warm_rows
            .iter()
            .find(|r| r.name == name && r.workload == "fir_filter")
            .expect("row exists");
        assert!(
            warm.speedup >= 5.0,
            "{name}: warm starts must be >= 5x cold compiles on the \
             compute-bound workload, got {:.1}x",
            warm.speedup
        );
    }
    // The telemetry layer must stay within 5% of uninstrumented throughput
    // on the mixed service batch.
    assert!(
        overhead_ratio >= 0.95,
        "instrumented service must stay within 5% of uninstrumented \
         throughput, got ratio {overhead_ratio:.3}"
    );
    // So must the tracing layer, even while head-sampling every request.
    assert!(
        trace_ratio >= 0.95,
        "traced service must stay within 5% of untraced throughput, \
         got ratio {trace_ratio:.3}"
    );
}
