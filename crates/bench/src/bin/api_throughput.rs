//! Session-API throughput benchmark: one-shot `Simulator::simulate` vs
//! amortized `CompiledSim::run`, per backend, plus `SimService` batched
//! serving throughput.
//!
//! For every backend, a Type A fixture is simulated two ways:
//!
//! 1. **one-shot** — a fresh `simulate()` per request, re-paying the front
//!    end (elaboration, trace/event-graph construction, execution) every
//!    time;
//! 2. **amortized** — `compile()` once, then one `run()` per request
//!    against the shared artifact: cached replays for the compiled depths
//!    and incremental re-finalizations for FIFO-depth overrides.
//!
//! A third section measures `SimService::run_batch` — the concurrent
//! serving layer — at several worker counts.
//!
//! Results are printed as a table and written to `BENCH_api.json`. Pass
//! `--smoke` for a seconds-scale run (used by CI) — same measurements,
//! smaller workload. The bench asserts the acceptance bar: amortized runs
//! beat one-shot simulation by ≥ 5x on the omnisim and lightning backends.

use omnisim_bench::secs;
use omnisim_suite::designs::typea;
use omnisim_suite::ir::Design;
use omnisim_suite::{backend, RunConfig, SimService, Simulator};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct BackendRow {
    name: &'static str,
    compile_time: Duration,
    one_shot_rps: f64,
    amortized_rps: f64,
    override_rps: Option<f64>,
    speedup: f64,
}

fn measure_backend(
    sim: &dyn Simulator,
    design: &Design,
    one_shot_iters: usize,
    run_iters: usize,
) -> BackendRow {
    // One-shot: a fresh full simulation per request.
    let start = Instant::now();
    for _ in 0..one_shot_iters {
        sim.simulate(design).expect("one-shot run succeeds");
    }
    let one_shot_rps = one_shot_iters as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Amortized: compile once, run many at the compiled depths.
    let start = Instant::now();
    let compiled = sim.compile(design).expect("design compiles");
    let compile_time = start.elapsed();
    let start = Instant::now();
    for _ in 0..run_iters {
        compiled
            .run(&RunConfig::default())
            .expect("amortized run succeeds");
    }
    let amortized_rps = run_iters as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Depth-override runs: per-run re-finalization work (cycle-accurate
    // backends only; csim ignores depths and rtl re-steps every cycle).
    let override_rps = sim.capabilities().cycle_accurate.then(|| {
        let fifos = design.fifos.len();
        let start = Instant::now();
        for i in 0..run_iters {
            let depth = 1 + (i % 16);
            compiled
                .run(&RunConfig::new().with_fifo_depths(vec![depth; fifos]))
                .expect("override run succeeds");
        }
        run_iters as f64 / start.elapsed().as_secs_f64().max(1e-9)
    });

    BackendRow {
        name: sim.name(),
        compile_time,
        one_shot_rps,
        amortized_rps,
        override_rps,
        speedup: amortized_rps / one_shot_rps.max(1e-9),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: i64 = if smoke { 128 } else { 512 };
    let one_shot_iters = if smoke { 6 } else { 20 };
    let run_iters = if smoke { 200 } else { 2000 };
    // rtl re-executes every cycle per run, so its run counts stay small.
    let rtl_iters = if smoke { 6 } else { 20 };

    let design = typea::vecadd_stream(n, 2);
    println!(
        "session-API throughput on vecadd_stream (N = {n}){}\n",
        if smoke { " [smoke]" } else { "" }
    );

    let mut rows = Vec::new();
    for name in ["csim", "lightning", "omnisim", "rtl"] {
        let sim = backend(name).expect("registered backend");
        let runs = if name == "rtl" { rtl_iters } else { run_iters };
        let shots = if name == "rtl" {
            rtl_iters
        } else {
            one_shot_iters
        };
        rows.push(measure_backend(sim.as_ref(), &design, shots, runs));
    }

    println!(
        "{:<11} {:>12} {:>14} {:>15} {:>15} {:>9}",
        "backend", "compile", "one-shot/s", "amortized/s", "override/s", "speedup"
    );
    omnisim_bench::rule(80);
    for row in &rows {
        println!(
            "{:<11} {:>12} {:>14.1} {:>15.1} {:>15} {:>8.1}x",
            row.name,
            secs(row.compile_time),
            row.one_shot_rps,
            row.amortized_rps,
            row.override_rps
                .map_or("-".to_owned(), |r| format!("{r:.1}")),
            row.speedup
        );
    }

    // The serving layer: batched mixed requests over a compiled fleet.
    let designs = [
        typea::vecadd_stream(n, 2),
        typea::fir_filter(n, 8),
        typea::window_conv(n, 4),
    ];
    let service = SimService::new(backend("omnisim").unwrap());
    let keys: Vec<_> = designs
        .iter()
        .map(|d| service.register(d).expect("fleet compiles"))
        .collect();
    let mut requests = Vec::new();
    let request_count = if smoke { 300 } else { 3000 };
    for i in 0..request_count {
        let which = i % keys.len();
        let config = if i % 2 == 0 {
            RunConfig::default()
        } else {
            RunConfig::new().with_fifo_depths(vec![1 + (i % 12); designs[which].fifos.len()])
        };
        requests.push((keys[which], config));
    }
    println!(
        "\nSimService batched serving ({} requests, 3 designs):",
        requests.len()
    );
    let mut service_rps = Vec::new();
    for workers in [1usize, 4, 0] {
        let (label, service) = if workers == 0 {
            (
                "default".to_owned(),
                SimService::new(backend("omnisim").unwrap()),
            )
        } else {
            (
                format!("workers={workers}"),
                SimService::new(backend("omnisim").unwrap()).with_workers(workers),
            )
        };
        for d in &designs {
            service.register(d).expect("fleet compiles");
        }
        let start = Instant::now();
        let reports = service.run_batch(&requests);
        let elapsed = start.elapsed();
        assert!(reports.iter().all(|r| r.is_ok()), "all requests served");
        let rps = requests.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        println!("  {label:<12} {} ({rps:.0} runs/sec)", secs(elapsed));
        service_rps.push((label, rps));
    }

    let mut json = String::from("{\n  \"bench\": \"api_throughput\",\n");
    let _ = writeln!(json, "  \"design\": \"vecadd_stream\",\n  \"n\": {n},");
    let _ = writeln!(json, "  \"smoke\": {smoke},\n  \"backends\": {{");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"compile_secs\": {:.6}, \"one_shot_rps\": {:.2}, \
             \"amortized_rps\": {:.2}, \"override_rps\": {}, \"speedup\": {:.2}}}{}",
            row.name,
            row.compile_time.as_secs_f64(),
            row.one_shot_rps,
            row.amortized_rps,
            row.override_rps
                .map_or("null".to_owned(), |r| format!("{r:.2}")),
            row.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},\n  \"service\": {{");
    for (i, (label, rps)) in service_rps.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{label}\": {rps:.2}{}",
            if i + 1 < service_rps.len() { "," } else { "" }
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_api.json", &json).expect("write BENCH_api.json");
    println!("\nwrote BENCH_api.json");

    // Acceptance bar: the backends that amortize their front end must beat
    // one-shot simulation by at least 5x.
    for name in ["omnisim", "lightning"] {
        let row = rows.iter().find(|r| r.name == name).expect("row exists");
        assert!(
            row.speedup >= 5.0,
            "{name}: amortized runs must be >= 5x one-shot simulate, got {:.1}x",
            row.speedup
        );
    }
}
