//! Regenerates **Fig. 8(b)** and **Fig. 8(c)**: wall-clock runtime of the
//! cycle-stepped reference simulator vs OmniSim, and the breakdown of
//! OmniSim's runtime into front-end elaboration, multi-threaded execution
//! and finalization — all through the unified `Simulator` API, whose
//! `SimTimings` carry the per-phase breakdown.

use omnisim_bench::{geomean, secs};
use omnisim_designs::table4_designs;
use omnisim_suite::backend;
use std::time::Instant;

fn main() {
    println!("Fig. 8(b)/(c): simulation runtime, reference co-sim stand-in vs OmniSim\n");
    println!(
        "{:<14} {:>12} {:>12} {:>9} | {:>11} {:>11} {:>11}",
        "design", "reference", "omnisim", "speedup", "front-end", "execution", "finalize"
    );
    omnisim_bench::rule(90);
    let reference_sim = backend("rtl").expect("registered");
    let omni_sim = backend("omnisim").expect("registered");
    let mut speedups = Vec::new();
    for bench in table4_designs() {
        let reference_start = Instant::now();
        let _reference = reference_sim
            .simulate(&bench.design)
            .expect("reference run");
        let reference_time = reference_start.elapsed();

        let omni_start = Instant::now();
        let report = omni_sim.simulate(&bench.design).expect("omnisim run");
        let omni_time = omni_start.elapsed();

        let speedup = reference_time.as_secs_f64() / omni_time.as_secs_f64().max(1e-9);
        speedups.push(speedup);
        println!(
            "{:<14} {:>12} {:>12} {:>8.1}x | {:>11} {:>11} {:>11}",
            bench.name,
            secs(reference_time),
            secs(omni_time),
            speedup,
            secs(report.timings.front_end),
            secs(report.timings.execution),
            secs(report.timings.finalize),
        );
    }
    omnisim_bench::rule(90);
    println!(
        "\ngeomean speedup over the reference simulator: {:.1}x",
        geomean(&speedups)
    );
    println!(
        "(the paper reports a 30.7x geomean speedup over RTL co-simulation; absolute ratios depend on \
         the reference's per-cycle cost, the shape — large, consistent wins — is the reproduced claim)"
    );
}
