//! Cross-backend differential fuzzing CLI.
//!
//! Drives `omnisim-gen` over a seed range and reports every violated claim,
//! shrinking failures to minimal committable blueprints. A failing seed from
//! CI or the integration suite reproduces bit-identically here:
//!
//! ```text
//! cargo run --release -p omnisim-bench --bin fuzz -- --seed 17 --preset c
//! ```
//!
//! Options:
//!
//! * `--preset a|b|c|mixed|axi|calls|multirate|all` — generator preset
//!   (default `mixed`): the class presets target one taxonomy row, the
//!   dimension presets concentrate on AXI bursts, `Op::Call` chains or
//!   multi-rate/leftover dataflow, and `all` walks every preset (`--class`
//!   is an accepted alias),
//! * `--seeds N` / `--count N` — number of seeds to fuzz (default 1000),
//! * `--start S` — first seed (default 0),
//! * `--seed X` — fuzz exactly one seed (overrides the range),
//! * `--deadlocks P` — forced-deadlock probability in percent,
//! * `--min-depths` — also ground-truth the `min_depths` certificate with
//!   full re-simulations (the tightness oracle),
//! * `--bytecode` / `--no-bytecode` — force the bytecode-VM differential
//!   leg on/off (on by default: every DSE vector is also answered by the
//!   register-allocated VM, running a codec-roundtripped program),
//! * `--analyze` / `--no-analyze` — force the static-analyzer soundness
//!   leg on/off (on by default: certificates and depth bounds are checked
//!   against the reference outcome and the `min_depths` certificate),
//! * `--no-shrink` — skip shrinking on failure,
//! * `--smoke` — CI preset: 120 seeds per preset, all presets.
//!
//! Exits non-zero if any seed fails.

use omnisim_gen::{
    check_seeded, fuzz_seed, shrink, CsimAgreement, DeadlockVerdict, DiffConfig, GenConfig,
};
use std::time::Instant;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn preset(name: &str) -> GenConfig {
    match GenConfig::preset(name) {
        Some(cfg) => cfg,
        None => {
            eprintln!(
                "unknown preset '{name}' (expected one of {} or all)",
                GenConfig::PRESET_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    }
}

#[derive(Default)]
struct Tally {
    designs: usize,
    completed: usize,
    deadlocked: usize,
    csim_agreed: usize,
    csim_diverged: usize,
    csim_crashed: usize,
    dse_points: usize,
    min_depth_probes: usize,
    certified_free: usize,
    certified_deadlock: usize,
    analysis_unknown: usize,
    failures: usize,
}

fn fuzz_range(
    label: &str,
    cfg: &GenConfig,
    diff: &DiffConfig,
    seeds: impl Iterator<Item = u64>,
    shrink_failures: bool,
    tally: &mut Tally,
) {
    for seed in seeds {
        let (generated, report) = fuzz_seed(cfg, diff, seed);
        tally.designs += 1;
        if report.completed {
            tally.completed += 1;
        } else {
            tally.deadlocked += 1;
        }
        match report.csim {
            Some(CsimAgreement::Agreed) => tally.csim_agreed += 1,
            Some(CsimAgreement::Diverged) => tally.csim_diverged += 1,
            Some(CsimAgreement::Crashed) => tally.csim_crashed += 1,
            None => {}
        }
        tally.dse_points += report.dse_points_checked;
        tally.min_depth_probes += report.min_depths_probes;
        match report.analysis {
            Some(DeadlockVerdict::CertifiedFree) => tally.certified_free += 1,
            Some(DeadlockVerdict::CertifiedDeadlock) => tally.certified_deadlock += 1,
            Some(DeadlockVerdict::Unknown) => tally.analysis_unknown += 1,
            None => {}
        }
        if report.passed() {
            continue;
        }
        tally.failures += 1;
        println!(
            "\nFAIL preset {label} seed {seed} (design class {:?}):",
            generated.class
        );
        for failure in &report.failures {
            println!("  - {failure}");
        }
        println!(
            "  reproduce: cargo run --release -p omnisim-bench --bin fuzz -- \
             --seed {seed} --preset {label}"
        );
        if shrink_failures {
            let minimal = shrink(&generated.blueprint, |bp| {
                !check_seeded(&bp.lower(), diff, seed).passed()
            });
            let minimal_failures = check_seeded(&minimal.lower(), diff, seed).failures;
            println!("  minimized blueprint (failures {minimal_failures:?}):");
            println!("{minimal:#?}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let shrink_failures = !args.iter().any(|a| a == "--no-shrink");
    let start: u64 = arg_value(&args, "--start")
        .map(|v| v.parse().expect("--start takes a number"))
        .unwrap_or(0);
    let count: u64 = arg_value(&args, "--seeds")
        .or_else(|| arg_value(&args, "--count"))
        .map(|v| v.parse().expect("--seeds/--count take a number"))
        .unwrap_or(1000);
    let single: Option<u64> =
        arg_value(&args, "--seed").map(|v| v.parse().expect("--seed takes a number"));
    let deadlocks: Option<u32> =
        arg_value(&args, "--deadlocks").map(|v| v.parse().expect("--deadlocks takes a percent"));

    let mut diff = DiffConfig::default();
    if args.iter().any(|a| a == "--min-depths") {
        diff.min_depths_resim = true;
    }
    // `--bytecode` pins the leg on even if a future default flips; the
    // explicit off-switch wins when both are given.
    if args.iter().any(|a| a == "--bytecode") {
        diff.bytecode = true;
    }
    if args.iter().any(|a| a == "--no-bytecode") {
        diff.bytecode = false;
    }
    if args.iter().any(|a| a == "--analyze") {
        diff.analyze = true;
    }
    if args.iter().any(|a| a == "--no-analyze") {
        diff.analyze = false;
    }
    let mut tally = Tally::default();
    let started = Instant::now();

    let requested = arg_value(&args, "--preset").or_else(|| arg_value(&args, "--class"));
    let presets: Vec<String> = match requested.as_deref() {
        Some("all") => GenConfig::PRESET_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        Some(name) => vec![name.to_owned()],
        None if smoke => GenConfig::PRESET_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        None => vec!["mixed".into()],
    };
    let per_preset = if smoke { 120 } else { count };

    for name in &presets {
        let mut cfg = preset(name);
        if let Some(p) = deadlocks {
            cfg = cfg.with_deadlocks(p);
        }
        match single {
            Some(seed) => fuzz_range(name, &cfg, &diff, seed..=seed, shrink_failures, &mut tally),
            None => fuzz_range(
                name,
                &cfg,
                &diff,
                start..start + per_preset,
                shrink_failures,
                &mut tally,
            ),
        }
    }

    let elapsed = started.elapsed();
    let per_sec = tally.designs as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "\nfuzzed {} designs in {} ({per_sec:.0} designs/sec): \
         {} completed, {} deadlocked, {} DSE points, {} min-depth probes",
        tally.designs,
        omnisim_bench::secs(elapsed),
        tally.completed,
        tally.deadlocked,
        tally.dse_points,
        tally.min_depth_probes,
    );
    println!(
        "csim bookkeeping: {} agreed, {} diverged, {} crashed",
        tally.csim_agreed, tally.csim_diverged, tally.csim_crashed
    );
    if diff.analyze {
        println!(
            "analyzer verdicts: {} certified-free, {} certified-deadlock, {} unknown",
            tally.certified_free, tally.certified_deadlock, tally.analysis_unknown
        );
    }
    if tally.failures > 0 {
        println!("{} seed(s) FAILED", tally.failures);
        std::process::exit(1);
    }
    println!("all seeds passed");
}
