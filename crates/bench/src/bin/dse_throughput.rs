//! DSE throughput benchmark: bytecode VM vs compiled [`SweepPlan`] vs
//! per-point incremental analysis vs full re-simulation, in points/sec.
//!
//! Two grids over `fig4_ex5`, both in nested-loop order (last axis
//! fastest) so the delta-evaluating paths see realistic single-axis steps:
//!
//! * a **small grid** (40 x 25 = 1000 points) anchors the historical legs —
//!   compiled plan vs per-point `IncrementalState::try_with_depths` vs a
//!   sampled-and-extrapolated full re-simulation;
//! * a **large grid** (960 x 25 = 24000 points, N = 1024) owns the
//!   headline numbers — interpreter serial/parallel and bytecode VM
//!   serial/parallel — where per-leg times are long enough to measure and
//!   the parallel paths are past their work cutoffs.
//!
//! Every throughput leg reports its best of several repetitions: the
//! numbers feed ratio asserts, and single-shot wall times are far too
//! noisy to gate on. Three ratios are enforced: compiled >= 10x
//! incremental, bytecode >= 10x compiled, and parallel compiled >= serial
//! compiled (the batch path must never be slower than the loop it wraps).
//!
//! Results are printed as a table and written to `BENCH_dse.json` so the
//! perf trajectory of the compiled engine is recorded over time. Pass
//! `--smoke` for a seconds-scale run (used by CI) — same measurements and
//! asserts, smaller small-grid design and fewer repetitions.

use omnisim_bench::secs;
use omnisim_designs::fig4;
use omnisim_suite::omnisim::{IncrementalOutcome, OmniSimulator};
use omnisim_suite::SweepPlan;
use std::time::{Duration, Instant};

/// Best wall-clock of `reps` runs of `f`, with the last run's value.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed());
        out = Some(value);
    }
    (best, out.expect("reps >= 1"))
}

fn pps(points: usize, time: Duration) -> f64 {
    points as f64 / time.as_secs_f64().max(1e-9)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: i64 = if smoke { 256 } else { 1024 };
    let resim_sample = if smoke { 8 } else { 24 };
    let reps = if smoke { 3 } else { 5 };

    // 40 x 25 = 1000 points for the small (historical) grid.
    let points: Vec<Vec<usize>> = (1..=40usize)
        .flat_map(|d1| (1..=25usize).map(move |d2| vec![d1, d2]))
        .collect();

    println!(
        "DSE throughput on fig4_ex5 (N = {n}): {} points{}\n",
        points.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let design = fig4::ex5_with_depths(n, 2, 2);
    let start = Instant::now();
    let baseline = OmniSimulator::new(&design).run().expect("baseline run");
    let baseline_time = start.elapsed();

    let start = Instant::now();
    let plan = SweepPlan::compile(&baseline.incremental).expect("plan compiles");
    let compile_time = start.elapsed();
    println!(
        "baseline run {} + plan compile {} ({} nodes, {} edges, {} constraints)",
        secs(baseline_time),
        secs(compile_time),
        plan.node_count(),
        plan.edge_count(),
        plan.constraint_count()
    );

    // 1. Compiled plan on the small grid (one evaluator, delta evaluation).
    let (small_compiled_time, small_compiled) =
        best_of(reps, || plan.evaluate_batch(&points, false).expect("batch"));
    let small_compiled_pps = pps(points.len(), small_compiled_time);

    // 2. Uncompiled incremental path, one cold pass per point.
    let start = Instant::now();
    let mut agreement = 0usize;
    for (point, compiled_outcome) in points.iter().zip(&small_compiled) {
        let outcome = baseline
            .incremental
            .try_with_depths(point)
            .expect("incremental pass succeeds");
        agreement += usize::from(&outcome == compiled_outcome);
    }
    let incremental_time = start.elapsed();
    let incremental_pps = pps(points.len(), incremental_time);
    assert_eq!(
        agreement,
        points.len(),
        "compiled and incremental answers must be identical"
    );

    // 3. Full re-simulation, sampled and extrapolated.
    let stride = (points.len() / resim_sample).max(1);
    let sample: Vec<&Vec<usize>> = points.iter().step_by(stride).collect();
    let start = Instant::now();
    for point in &sample {
        let resized = design.with_fifo_depths(point);
        OmniSimulator::new(&resized).run().expect("full re-sim");
    }
    let resim_time = start.elapsed();
    let resim_pps = pps(sample.len(), resim_time);

    let valid = small_compiled
        .iter()
        .filter(|o| matches!(o, IncrementalOutcome::Valid { .. }))
        .count();
    println!(
        "{valid}/{} small-grid points certified by the plan; {} would fall back to re-simulation",
        points.len(),
        points.len() - valid
    );

    // 4. The large grid: 960 x 25 = 24000 points at N = 1024, where the
    // parallel paths are past their work cutoffs and per-leg times are
    // long enough to time reliably. Owns the headline interpreter-vs-VM
    // numbers.
    let big_points: Vec<Vec<usize>> = (1..=960usize)
        .flat_map(|d1| (1..=25usize).map(move |d2| vec![d1, d2]))
        .collect();
    let big_plan_owned;
    let big_plan = if n == 1024 {
        &plan
    } else {
        let big_design = fig4::ex5_with_depths(1024, 2, 2);
        let big_baseline = OmniSimulator::new(&big_design).run().expect("baseline run");
        big_plan_owned = SweepPlan::compile(&big_baseline.incremental).expect("plan compiles");
        &big_plan_owned
    };
    let start = Instant::now();
    let program = big_plan.compile_bytecode();
    let lower_time = start.elapsed();
    println!(
        "large grid: {} points at N = 1024, bytecode lowering {} ({} registers, {} ops)\n",
        big_points.len(),
        secs(lower_time),
        program.register_count(),
        program.op_count()
    );

    let (compiled_time, compiled) = best_of(reps, || {
        big_plan
            .evaluate_batch(&big_points, false)
            .expect("compiled batch succeeds")
    });
    let compiled_pps = pps(big_points.len(), compiled_time);

    let (compiled_par_time, compiled_par) = best_of(reps, || {
        big_plan
            .evaluate_batch(&big_points, true)
            .expect("compiled parallel batch succeeds")
    });
    let compiled_par_pps = pps(big_points.len(), compiled_par_time);
    assert_eq!(compiled, compiled_par, "parallel chunking changes nothing");

    let (bytecode_time, bytecode) = best_of(reps, || {
        program
            .evaluate_batch_workers(&big_points, 1)
            .expect("bytecode batch succeeds")
    });
    let bytecode_pps = pps(big_points.len(), bytecode_time);
    assert_eq!(
        compiled, bytecode,
        "bytecode VM must answer bit-identically"
    );

    let (bytecode_par_time, bytecode_par) = best_of(reps, || {
        program
            .evaluate_batch(&big_points, true)
            .expect("bytecode parallel batch succeeds")
    });
    let bytecode_par_pps = pps(big_points.len(), bytecode_par_time);
    assert_eq!(
        compiled, bytecode_par,
        "parallel VM chunking changes nothing"
    );

    println!("{:<26} {:>12} {:>16}", "method", "time", "points/sec");
    omnisim_bench::rule(56);
    let rows = [
        ("bytecode VM (serial)", bytecode_time, bytecode_pps),
        (
            "bytecode VM (parallel)",
            bytecode_par_time,
            bytecode_par_pps,
        ),
        ("compiled (sequential)", compiled_time, compiled_pps),
        ("compiled (parallel)", compiled_par_time, compiled_par_pps),
        ("incremental per-point*", incremental_time, incremental_pps),
        ("full re-sim (sampled)*", resim_time, resim_pps),
    ];
    for (label, time, leg_pps) in rows {
        println!("{label:<26} {:>12} {leg_pps:>16.0}", secs(time));
    }
    omnisim_bench::rule(56);
    println!("(*) small 1000-point grid; other legs on the 24000-point grid");
    let speedup_incremental = small_compiled_pps / incremental_pps.max(1e-9);
    let speedup_resim = small_compiled_pps / resim_pps.max(1e-9);
    let speedup_bytecode = bytecode_pps / compiled_pps.max(1e-9);
    println!(
        "compiled vs incremental: {speedup_incremental:.1}x    compiled vs full re-sim: \
         {speedup_resim:.0}x    bytecode vs compiled: {speedup_bytecode:.1}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"dse_throughput\",\n  \"design\": \"fig4_ex5\",\n  \"n\": {n},\n  \
         \"points\": {},\n  \"big_points\": {},\n  \"smoke\": {smoke},\n  \"plan_nodes\": {},\n  \
         \"plan_edges\": {},\n  \"plan_compile_secs\": {:.6},\n  \
         \"bytecode_lower_secs\": {:.6},\n  \"bytecode_pps\": {bytecode_pps:.1},\n  \
         \"bytecode_parallel_pps\": {bytecode_par_pps:.1},\n  \"compiled_pps\": {compiled_pps:.1},\n  \
         \"compiled_parallel_pps\": {compiled_par_pps:.1},\n  \
         \"small_compiled_pps\": {small_compiled_pps:.1},\n  \
         \"incremental_pps\": {incremental_pps:.1},\n  \"full_resim_pps\": {resim_pps:.3},\n  \
         \"speedup_compiled_vs_incremental\": {speedup_incremental:.2},\n  \
         \"speedup_compiled_vs_full_resim\": {speedup_resim:.1},\n  \
         \"speedup_bytecode_vs_compiled\": {speedup_bytecode:.2}\n}}\n",
        points.len(),
        big_points.len(),
        plan.node_count(),
        plan.edge_count(),
        compile_time.as_secs_f64(),
        lower_time.as_secs_f64(),
    );
    std::fs::write("BENCH_dse.json", &json).expect("write BENCH_dse.json");
    println!("\nwrote BENCH_dse.json");

    assert!(
        speedup_incremental >= 10.0,
        "the compiled plan must be >= 10x faster than per-point incremental analysis \
         (got {speedup_incremental:.1}x)"
    );
    // The work cutoff must keep `parallel = true` from ever regressing the
    // serial loop it wraps (pre-cutoff it measured 0.83x on paper-sized
    // batches). On low-core machines both legs resolve to the same serial
    // path, so allow a small measurement-noise tolerance on the ratio.
    assert!(
        compiled_par_pps >= 0.95 * compiled_pps,
        "the parallel batch path must not be slower than the serial loop it wraps \
         (parallel {compiled_par_pps:.0} pps vs serial {compiled_pps:.0} pps)"
    );
    assert!(
        speedup_bytecode >= 10.0,
        "the bytecode VM must be >= 10x faster than the interpreted plan \
         (got {speedup_bytecode:.1}x)"
    );
}
