//! DSE throughput benchmark: compiled [`SweepPlan`] vs per-point
//! incremental analysis vs full re-simulation, in points per second.
//!
//! Sweeps a ≥ 1000-point (depth1, depth2) grid over `fig4_ex5` three ways:
//!
//! 1. **compiled** — `SweepPlan::evaluate_batch`, sequential and parallel
//!    (delta evaluation, no per-point allocation),
//! 2. **incremental** — one `IncrementalState::try_with_depths` call per
//!    point (the pre-plan fast path: rebuilds the WAR overlay and runs a
//!    cold longest-path pass every time),
//! 3. **full re-sim** — a timed sample of complete re-simulations,
//!    extrapolated to points per second.
//!
//! Results are printed as a table and written to `BENCH_dse.json` so the
//! perf trajectory of the compiled engine is recorded over time. Pass
//! `--smoke` for a seconds-scale run (used by CI) — same measurements,
//! smaller workload.

use omnisim_bench::secs;
use omnisim_designs::fig4;
use omnisim_suite::omnisim::{IncrementalOutcome, OmniSimulator};
use omnisim_suite::SweepPlan;
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: i64 = if smoke { 256 } else { 1024 };
    let resim_sample = if smoke { 8 } else { 24 };

    // 40 x 25 = 1000 points, nested-loop order (last axis fastest) so the
    // compiled path's delta evaluation sees realistic single-axis steps.
    let axis1: Vec<usize> = (1..=40).collect();
    let axis2: Vec<usize> = (1..=25).collect();
    let points: Vec<Vec<usize>> = axis1
        .iter()
        .flat_map(|&d1| axis2.iter().map(move |&d2| vec![d1, d2]))
        .collect();

    println!(
        "DSE throughput on fig4_ex5 (N = {n}): {} points{}\n",
        points.len(),
        if smoke { " [smoke]" } else { "" }
    );

    let design = fig4::ex5_with_depths(n, 2, 2);
    let start = Instant::now();
    let baseline = OmniSimulator::new(&design).run().expect("baseline run");
    let baseline_time = start.elapsed();

    let start = Instant::now();
    let plan = SweepPlan::compile(&baseline.incremental).expect("plan compiles");
    let compile_time = start.elapsed();
    println!(
        "baseline run {} + plan compile {} ({} nodes, {} edges, {} constraints)",
        secs(baseline_time),
        secs(compile_time),
        plan.node_count(),
        plan.edge_count(),
        plan.constraint_count()
    );

    // 1a. Compiled, sequential (one evaluator, pure delta evaluation).
    let start = Instant::now();
    let compiled = plan
        .evaluate_batch(&points, false)
        .expect("compiled batch succeeds");
    let compiled_time = start.elapsed();
    let compiled_pps = points.len() as f64 / compiled_time.as_secs_f64().max(1e-9);

    // 1b. Compiled, parallel (chunked over scoped threads).
    let start = Instant::now();
    let compiled_par = plan
        .evaluate_batch(&points, true)
        .expect("compiled parallel batch succeeds");
    let compiled_par_time = start.elapsed();
    let compiled_par_pps = points.len() as f64 / compiled_par_time.as_secs_f64().max(1e-9);
    assert_eq!(compiled, compiled_par, "parallel chunking changes nothing");

    // 2. Uncompiled incremental path, one cold pass per point.
    let start = Instant::now();
    let mut agreement = 0usize;
    for (point, compiled_outcome) in points.iter().zip(&compiled) {
        let outcome = baseline
            .incremental
            .try_with_depths(point)
            .expect("incremental pass succeeds");
        agreement += usize::from(&outcome == compiled_outcome);
    }
    let incremental_time = start.elapsed();
    let incremental_pps = points.len() as f64 / incremental_time.as_secs_f64().max(1e-9);
    assert_eq!(
        agreement,
        points.len(),
        "compiled and incremental answers must be identical"
    );

    // 3. Full re-simulation, sampled and extrapolated.
    let stride = (points.len() / resim_sample).max(1);
    let sample: Vec<&Vec<usize>> = points.iter().step_by(stride).collect();
    let start = Instant::now();
    for point in &sample {
        let resized = design.with_fifo_depths(point);
        OmniSimulator::new(&resized).run().expect("full re-sim");
    }
    let resim_time = start.elapsed();
    let resim_pps = sample.len() as f64 / resim_time.as_secs_f64().max(1e-9);

    let valid = compiled
        .iter()
        .filter(|o| matches!(o, IncrementalOutcome::Valid { .. }))
        .count();
    println!(
        "{valid}/{} points certified by the plan; {} would fall back to re-simulation\n",
        points.len(),
        points.len() - valid
    );

    println!("{:<24} {:>12} {:>16}", "method", "time", "points/sec");
    omnisim_bench::rule(54);
    let rows = [
        ("compiled (sequential)", compiled_time, compiled_pps),
        ("compiled (parallel)", compiled_par_time, compiled_par_pps),
        ("incremental per-point", incremental_time, incremental_pps),
        ("full re-sim (sampled)", resim_time, resim_pps),
    ];
    for (label, time, pps) in rows {
        println!("{label:<24} {:>12} {pps:>16.0}", secs(time));
    }
    let speedup_incremental = compiled_pps / incremental_pps.max(1e-9);
    let speedup_resim = compiled_pps / resim_pps.max(1e-9);
    omnisim_bench::rule(54);
    println!(
        "compiled vs incremental: {speedup_incremental:.1}x    compiled vs full re-sim: {speedup_resim:.0}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"dse_throughput\",\n  \"design\": \"fig4_ex5\",\n  \"n\": {n},\n  \
         \"points\": {},\n  \"smoke\": {smoke},\n  \"plan_nodes\": {},\n  \"plan_edges\": {},\n  \
         \"plan_compile_secs\": {:.6},\n  \"compiled_pps\": {compiled_pps:.1},\n  \
         \"compiled_parallel_pps\": {compiled_par_pps:.1},\n  \"incremental_pps\": {incremental_pps:.1},\n  \
         \"full_resim_pps\": {resim_pps:.3},\n  \"speedup_compiled_vs_incremental\": {speedup_incremental:.2},\n  \
         \"speedup_compiled_vs_full_resim\": {speedup_resim:.1}\n}}\n",
        points.len(),
        plan.node_count(),
        plan.edge_count(),
        compile_time.as_secs_f64(),
    );
    std::fs::write("BENCH_dse.json", &json).expect("write BENCH_dse.json");
    println!("\nwrote BENCH_dse.json");

    assert!(
        speedup_incremental >= 10.0,
        "the compiled plan must be >= 10x faster than per-point incremental analysis \
         (got {speedup_incremental:.1}x)"
    );
}
