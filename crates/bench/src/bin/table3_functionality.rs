//! Regenerates **Table 3**: functional results of C simulation, the
//! cycle-stepped reference simulator (co-simulation stand-in) and OmniSim on
//! the eleven Type B/C designs, all driven through the unified `Simulator`
//! API.

use omnisim_bench::format_outputs;
use omnisim_designs::table4_designs;
use omnisim_suite::{backend, SimOutcome, SimReport};

fn cell(report: &SimReport) -> String {
    match &report.outcome {
        SimOutcome::Completed => {
            let warn = if report.warning_count() > 0 {
                format!(" [{} warnings]", report.warning_count())
            } else {
                String::new()
            };
            format!("{}{}", format_outputs(&report.outputs), warn)
        }
        SimOutcome::Deadlock { .. } => match report.total_cycles {
            Some(cycle) => format!("DEADLOCK DETECTED at cycle {cycle}"),
            None => "DEADLOCK DETECTED".to_owned(),
        },
        other => other.describe(),
    }
}

fn main() {
    println!("Table 3: functionality simulation across C-sim, reference co-sim and OmniSim\n");
    println!(
        "{:<14} | {:<52} | {:<44} | {:<44}",
        "design", "C-sim", "reference (co-sim stand-in)", "OmniSim"
    );
    omnisim_bench::rule(164);

    let csim = backend("csim").expect("registered");
    let reference_sim = backend("rtl").expect("registered");
    let omni_sim = backend("omnisim").expect("registered");

    let mut matches = 0usize;
    let mut comparable = 0usize;
    for bench in table4_designs() {
        let c = csim.simulate(&bench.design).expect("csim run");
        let reference = reference_sim
            .simulate(&bench.design)
            .expect("reference run");
        let omni = omni_sim.simulate(&bench.design).expect("omnisim run");

        if bench.name != "deadlock" {
            comparable += 1;
            if omni.outputs == reference.outputs {
                matches += 1;
            }
        }

        println!(
            "{:<14} | {:<52} | {:<44} | {:<44}",
            bench.name,
            cell(&c),
            cell(&reference),
            cell(&omni)
        );
    }
    omnisim_bench::rule(164);
    println!(
        "\nOmniSim matches the reference functional outputs on {matches}/{comparable} comparable designs \
         (the deadlock design is detected by both instead of hanging)."
    );
}
