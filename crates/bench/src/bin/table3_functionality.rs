//! Regenerates **Table 3**: functional results of C simulation, the
//! cycle-stepped reference simulator (co-simulation stand-in) and OmniSim on
//! the eleven Type B/C designs.

use omnisim::{OmniOutcome, OmniSimulator};
use omnisim_bench::format_outputs;
use omnisim_csim as csim;
use omnisim_designs::table4_designs;
use omnisim_rtlsim::{RtlOutcome, RtlSimulator};

fn main() {
    println!("Table 3: functionality simulation across C-sim, reference co-sim and OmniSim\n");
    println!(
        "{:<14} | {:<52} | {:<44} | {:<44}",
        "design", "C-sim", "reference (co-sim stand-in)", "OmniSim"
    );
    omnisim_bench::rule(164);

    let mut matches = 0usize;
    let mut comparable = 0usize;
    for bench in table4_designs() {
        let c = csim::simulate(&bench.design);
        let csim_cell = if c.outcome.is_completed() {
            let warn = if c.warning_count() > 0 {
                format!(" [{} warnings]", c.warning_count())
            } else {
                String::new()
            };
            format!("{}{}", format_outputs(&c.outputs), warn)
        } else {
            c.outcome.describe()
        };

        let reference = RtlSimulator::new(&bench.design).run().expect("reference run");
        let reference_cell = match &reference.outcome {
            RtlOutcome::Completed => format_outputs(&reference.outputs),
            RtlOutcome::Deadlock { cycle, .. } => {
                format!("DEADLOCK DETECTED at cycle {cycle}")
            }
            RtlOutcome::CycleLimit { limit } => format!("cycle limit {limit} reached"),
        };

        let omni = OmniSimulator::new(&bench.design).run().expect("omnisim run");
        let omni_cell = match &omni.outcome {
            OmniOutcome::Completed => format_outputs(&omni.outputs),
            OmniOutcome::Deadlock { .. } => "unresolvable deadlock detected".to_owned(),
        };

        if bench.name != "deadlock" {
            comparable += 1;
            if omni.outputs == reference.outputs {
                matches += 1;
            }
        }

        println!(
            "{:<14} | {:<52} | {:<44} | {:<44}",
            bench.name, csim_cell, reference_cell, omni_cell
        );
    }
    omnisim_bench::rule(164);
    println!(
        "\nOmniSim matches the reference functional outputs on {matches}/{comparable} comparable designs \
         (the deadlock design is detected by both instead of hanging)."
    );
}
