//! Generator throughput benchmark: how fast the fuzzing loop turns over.
//!
//! Measures three rates over a fixed seed window of the mixed configuration:
//!
//! 1. **generate** — blueprint construction + lowering + validation,
//! 2. **generate + simulate** — the above plus one OmniSim run,
//! 3. **full differential check** — the above plus the reference, lightning,
//!    csim and the compiled-DSE consistency probes (what the fuzzer actually
//!    spends per seed).
//!
//! Results are printed and written to `BENCH_gen.json` so the fuzzing
//! loop's perf trajectory is recorded over time. Pass `--smoke` for the
//! seconds-scale CI run.

use omnisim::OmniSimulator;
use omnisim_gen::{check_seeded, generate, DiffConfig, GenConfig};
use std::time::Instant;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: u64 = if smoke { 150 } else { 1500 };
    let cfg = GenConfig::mixed();
    let diff = DiffConfig::default();

    println!(
        "generator throughput over {seeds} mixed-config seeds{}\n",
        if smoke { " [smoke]" } else { "" }
    );

    // 1. Generation alone (blueprint + lowering + validation).
    let start = Instant::now();
    let mut ops = 0usize;
    for seed in 0..seeds {
        ops += generate(&cfg, seed).design.op_count();
    }
    let gen_time = start.elapsed();
    let gen_rate = seeds as f64 / gen_time.as_secs_f64().max(1e-9);

    // 2. Generation + one OmniSim run per design.
    let start = Instant::now();
    for seed in 0..seeds {
        let g = generate(&cfg, seed);
        OmniSimulator::new(&g.design)
            .run()
            .expect("generated designs simulate");
    }
    let sim_time = start.elapsed();
    let sim_rate = seeds as f64 / sim_time.as_secs_f64().max(1e-9);

    // 3. The full differential check (what the fuzzer pays per seed).
    let start = Instant::now();
    let mut failures = 0usize;
    for seed in 0..seeds {
        let g = generate(&cfg, seed);
        failures += usize::from(!check_seeded(&g.design, &diff, seed).passed());
    }
    let diff_time = start.elapsed();
    let diff_rate = seeds as f64 / diff_time.as_secs_f64().max(1e-9);

    println!("{:<28} {:>12} {:>16}", "stage", "time", "designs/sec");
    omnisim_bench::rule(58);
    for (label, time, rate) in [
        ("generate", gen_time, gen_rate),
        ("generate + omnisim", sim_time, sim_rate),
        ("full differential check", diff_time, diff_rate),
    ] {
        println!("{label:<28} {:>12} {rate:>16.0}", omnisim_bench::secs(time));
    }
    omnisim_bench::rule(58);
    println!(
        "{} ops generated across the window; {} differential failure(s)",
        ops, failures
    );

    let json = format!(
        "{{\n  \"bench\": \"gen_throughput\",\n  \"seeds\": {seeds},\n  \"smoke\": {smoke},\n  \
         \"generate_per_sec\": {gen_rate:.1},\n  \"generate_simulate_per_sec\": {sim_rate:.1},\n  \
         \"differential_check_per_sec\": {diff_rate:.1},\n  \"ops_generated\": {ops},\n  \
         \"failures\": {failures}\n}}\n"
    );
    std::fs::write("BENCH_gen.json", &json).expect("write BENCH_gen.json");
    println!("\nwrote BENCH_gen.json");

    assert_eq!(failures, 0, "differential failures in the benchmark window");
}
