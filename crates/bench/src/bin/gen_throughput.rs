//! Generator throughput benchmark: how fast the fuzzing loop turns over,
//! per preset.
//!
//! For every generator preset (the three taxonomy classes, the mixed
//! configuration, and the AXI / call-chain / multi-rate dimension presets)
//! two rates are measured over a fixed seed window:
//!
//! 1. **generate** — blueprint construction + lowering + validation,
//! 2. **oracle** — the full differential check (reference, lightning, csim,
//!    compiled-DSE consistency and the `min_depths` inverse query — what
//!    the fuzzer actually spends per seed).
//!
//! Results are printed and written to `BENCH_gen.json` so the fuzzing
//! loop's perf trajectory is recorded over time per dimension. Pass
//! `--smoke` for the seconds-scale CI run.

use omnisim_gen::{check_seeded, generate, DiffConfig, GenConfig};
use std::fmt::Write as _;
use std::time::Instant;

struct PresetResult {
    name: &'static str,
    gen_rate: f64,
    oracle_rate: f64,
    ops: usize,
    failures: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: u64 = if smoke { 60 } else { 600 };
    let diff = DiffConfig::default();

    println!(
        "generator throughput over {seeds} seeds per preset{}\n",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<12} {:>16} {:>16} {:>12}",
        "preset", "generate/sec", "oracle/sec", "ops"
    );
    omnisim_bench::rule(60);

    let mut results: Vec<PresetResult> = Vec::new();
    for name in GenConfig::PRESET_NAMES {
        let cfg = GenConfig::preset(name).expect("preset names are exhaustive");

        let start = Instant::now();
        let mut ops = 0usize;
        for seed in 0..seeds {
            ops += generate(&cfg, seed).design.op_count();
        }
        let gen_rate = seeds as f64 / start.elapsed().as_secs_f64().max(1e-9);

        let start = Instant::now();
        let mut failures = 0usize;
        for seed in 0..seeds {
            let g = generate(&cfg, seed);
            failures += usize::from(!check_seeded(&g.design, &diff, seed).passed());
        }
        let oracle_rate = seeds as f64 / start.elapsed().as_secs_f64().max(1e-9);

        println!("{name:<12} {gen_rate:>16.0} {oracle_rate:>16.0} {ops:>12}");
        results.push(PresetResult {
            name,
            gen_rate,
            oracle_rate,
            ops,
            failures,
        });
    }
    omnisim_bench::rule(60);

    let failures: usize = results.iter().map(|r| r.failures).sum();
    println!(
        "{} differential failure(s) across every preset window",
        failures
    );

    let mut json = String::from("{\n  \"bench\": \"gen_throughput\",\n");
    let _ = writeln!(json, "  \"seeds_per_preset\": {seeds},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"failures\": {failures},");
    json.push_str("  \"presets\": {\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{}\": {{ \"generate_per_sec\": {:.1}, \"oracle_per_sec\": {:.1}, \
             \"ops_generated\": {} }}",
            r.name, r.gen_rate, r.oracle_rate, r.ops
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_gen.json", &json).expect("write BENCH_gen.json");
    println!("\nwrote BENCH_gen.json");

    assert_eq!(failures, 0, "differential failures in the benchmark window");
}
