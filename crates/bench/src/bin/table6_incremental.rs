//! Regenerates **Table 6**: incremental re-simulation of `fig4_ex5` under
//! changed FIFO depths, through the unified compile-once session API — the
//! initial run *is* `Simulator::compile`, and the `IncrementalState` lives
//! on the session artifact.
//!
//! * `(2, 2) -> (2, 100)`: constraints hold, so the incremental path answers
//!   in microseconds.
//! * `(2, 2) -> (100, 2)`: constraints are violated (the congestion pattern
//!   changes), so a full re-simulation is required; the already-elaborated
//!   design still makes it cheaper than the initial run.
//!
//! The batch equivalent of this workflow is `omnisim_suite::Sweep`, shown at
//! the end together with the compiled `SweepPlan` it runs on (the plan is
//! compiled straight from the session artifact via `from_compiled`).

use omnisim_bench::secs;
use omnisim_designs::{fig4, DEFAULT_N};
use omnisim_suite::omnisim::{CompiledOmni, IncrementalOutcome};
use omnisim_suite::{backend, RunConfig, Sweep, SweepPlan};
use std::time::Instant;

fn main() {
    let n = DEFAULT_N;
    println!("Table 6: evaluating fig4_ex5 under different FIFO depths (N = {n})\n");

    let omni = backend("omnisim").expect("registered");
    let initial_start = Instant::now();
    let design = fig4::ex5_with_depths(n, 2, 2);
    let session = omni.compile(&design).expect("initial run (compile phase)");
    let initial_time = initial_start.elapsed();
    let report = session.run(&RunConfig::default()).expect("baseline replay");
    let incremental = session
        .as_any()
        .downcast_ref::<CompiledOmni>()
        .expect("the omnisim artifact")
        .state();

    println!(
        "{:<18} {:>10} {:>14} {:>8} {:>12} {:>12}",
        "description", "depths", "incr. time", "ok?", "total time", "speedup"
    );
    omnisim_bench::rule(82);
    println!(
        "{:<18} {:>10} {:>14} {:>8} {:>12} {:>12}",
        "initial run",
        "(2, 2)",
        "-",
        "-",
        secs(initial_time),
        "-"
    );

    // Case 1: growing the uncontended FIFO — incremental analysis succeeds.
    let start = Instant::now();
    let outcome = incremental
        .try_with_depths(&[2, 100])
        .expect("finalization succeeds");
    let incr_time = start.elapsed();
    match outcome {
        IncrementalOutcome::Valid { total_cycles } => {
            let speedup = initial_time.as_secs_f64() / incr_time.as_secs_f64().max(1e-9);
            println!(
                "{:<18} {:>10} {:>13.1?} {:>8} {:>12} {:>11.0}x",
                "incremental",
                "(2, 100)",
                incr_time,
                "yes",
                format!("{:.1?}", incr_time),
                speedup
            );
            println!("                   -> latency under (2, 100): {total_cycles} cycles");
        }
        other => panic!("expected the (2, 100) case to be incremental, got {other:?}"),
    }

    // Case 2: growing the contended FIFO — constraints violated, full re-run.
    let start = Instant::now();
    let outcome = incremental
        .try_with_depths(&[100, 2])
        .expect("finalization succeeds");
    let check_time = start.elapsed();
    match outcome {
        IncrementalOutcome::ConstraintViolated { constraint } => {
            let rerun_start = Instant::now();
            let resized = fig4::ex5_with_depths(n, 100, 2);
            let rerun = omni.simulate(&resized).expect("full re-simulation");
            let rerun_time = rerun_start.elapsed();
            let total = check_time + rerun_time;
            let speedup = initial_time.as_secs_f64() / total.as_secs_f64().max(1e-9);
            println!(
                "{:<18} {:>10} {:>13.1?} {:>8} {:>12} {:>11.2}x",
                "non-incremental",
                "(100, 2)",
                check_time,
                "no",
                secs(total),
                speedup
            );
            println!(
                "                   -> constraint #{constraint} violated; full re-simulation gives {} cycles, \
                 work split changes to P1={:?} / P2={:?}",
                rerun.total_cycles.unwrap(),
                rerun.output("processed_by_p1"),
                rerun.output("processed_by_p2"),
            );
        }
        other => panic!("expected the (100, 2) case to violate constraints, got {other:?}"),
    }

    omnisim_bench::rule(82);
    println!(
        "\noriginal run: {} cycles, P1={:?}, P2={:?}",
        report.total_cycles.unwrap(),
        report.output("processed_by_p1"),
        report.output("processed_by_p2"),
    );

    // The same two queries against the *compiled* plan: the session
    // artifact's frozen incremental state compiles into a CSR sweep plan
    // whose per-point evaluation allocates nothing.
    let start = Instant::now();
    let plan = SweepPlan::from_compiled(session.as_ref())
        .expect("the omnisim artifact compiles into a plan")
        .expect("plan compiles");
    let compile_time = start.elapsed();
    let start = Instant::now();
    let mut evaluator = plan.evaluator();
    let compiled_a = evaluator.evaluate(&[2, 100]).expect("plan evaluates");
    let compiled_b = evaluator.evaluate(&[100, 2]).expect("plan evaluates");
    let eval_time = start.elapsed();
    assert_eq!(compiled_a, incremental.try_with_depths(&[2, 100]).unwrap());
    assert_eq!(compiled_b, incremental.try_with_depths(&[100, 2]).unwrap());
    println!(
        "\ncompiled plan: {} nodes compiled in {}, both queries re-answered in {:.1?} \
         (identical verdicts)",
        plan.node_count(),
        secs(compile_time),
        eval_time
    );

    // The same workflow in batch form: one Sweep call covers both rows and
    // compiles this plan internally.
    let start = Instant::now();
    let sweep = Sweep::new(&design)
        .point([2usize, 100])
        .point([100usize, 2])
        .run()
        .expect("sweep succeeds");
    println!(
        "batch Sweep over the same two points: {} incremental / {} full re-sim in {}",
        sweep.incremental_hits(),
        sweep.full_resims(),
        secs(start.elapsed())
    );
}
