//! Regenerates **Fig. 8(a)**: OmniSim's cycle-count accuracy against the
//! cycle-stepped reference simulator on every Type B/C design, through the
//! unified `Simulator` API.

use omnisim_bench::percent_error;
use omnisim_designs::table4_designs;
use omnisim_suite::backend;

fn main() {
    println!("Fig. 8(a): cycle-count accuracy (reference vs OmniSim)\n");
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "design", "reference", "omnisim", "error"
    );
    omnisim_bench::rule(56);
    let reference_sim = backend("rtl").expect("registered");
    let omni_sim = backend("omnisim").expect("registered");
    let mut errors = Vec::new();
    for bench in table4_designs() {
        let reference = reference_sim
            .simulate(&bench.design)
            .expect("reference run");
        let omni = omni_sim.simulate(&bench.design).expect("omnisim run");
        if bench.name == "deadlock" {
            println!(
                "{:<14} {:>14} {:>14} {:>10}",
                bench.name, "deadlock", "deadlock", "detected"
            );
            continue;
        }
        let reference_cycles = reference.total_cycles.expect("reference is cycle-accurate");
        let omni_cycles = omni.total_cycles.expect("omnisim is cycle-accurate");
        let err = percent_error(omni_cycles, reference_cycles);
        errors.push(err);
        println!(
            "{:<14} {:>14} {:>14} {:>9.2}%",
            bench.name, reference_cycles, omni_cycles, err
        );
    }
    omnisim_bench::rule(56);
    let avg = errors.iter().sum::<f64>() / errors.len() as f64;
    let max = errors.iter().cloned().fold(0.0f64, f64::max);
    println!("\naverage cycle error: {avg:.3}%   worst case: {max:.3}%");
    println!("(the paper reports an average deviation of 0.09% against RTL co-simulation)");
}
