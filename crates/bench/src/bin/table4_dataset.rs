//! Regenerates **Table 4**: the evaluated Type B and Type C designs, their
//! sizes and their taxonomy features.

use omnisim_designs::table4_designs;
use omnisim_ir::taxonomy::classify;

fn main() {
    println!("Table 4: evaluated Type B and Type C designs\n");
    println!(
        "{:<14} {:>5} {:>6} {:>6} {:>7} {:>8}   description",
        "name", "type", "#mod", "#fifo", "B/NB", "cyclic?"
    );
    omnisim_bench::rule(100);
    for bench in table4_designs() {
        let report = classify(&bench.design);
        println!(
            "{:<14} {:>5} {:>6} {:>6} {:>7} {:>8}   {}",
            bench.name,
            report.class.to_string(),
            bench.design.modules.len(),
            bench.design.fifos.len(),
            report.access_style(),
            if report.cyclic_dataflow { "yes" } else { "no" },
            bench.description,
        );
        assert_eq!(
            report.class, bench.declared_class,
            "inferred class must match the hand label for {}",
            bench.name
        );
    }
    omnisim_bench::rule(100);
    println!(
        "\nfunc-sim / perf-sim requirement levels: Type A = L1/L1, Type B = L2/L3, Type C = L3/L3 (Fig. 3)."
    );
}
