//! Regenerates **Table 5**: OmniSim vs the LightningSimV2-style baseline on
//! the Type A benchmark suite, with OmniSim's runtime broken down into
//! front-end (FE) and multi-threaded execution (MT) — all through the
//! unified `Simulator` API.

use omnisim_bench::{geomean, secs};
use omnisim_designs::typea_suite;
use omnisim_suite::backend;
use std::time::Instant;

fn main() {
    println!("Table 5: OmniSim vs LightningSim baseline on the Type A suite\n");
    println!(
        "{:<26} {:>11} {:>11} {:>9} {:>9} {:>9}   match?",
        "benchmark", "LightningSim", "OmniSim", "FE", "MT", "speedup"
    );
    omnisim_bench::rule(100);

    let lightning = backend("lightning").expect("registered");
    let omni = backend("omnisim").expect("registered");
    let mut speedups = Vec::new();
    for bench in typea_suite() {
        let light_start = Instant::now();
        let light_report = lightning
            .simulate(&bench.design)
            .expect("suite designs are Type A");
        let light_time = light_start.elapsed();

        let omni_start = Instant::now();
        let omni_report = omni.simulate(&bench.design).expect("omnisim run");
        let omni_time = omni_start.elapsed();

        let agree = light_report.outputs == omni_report.outputs
            && light_report.total_cycles == omni_report.total_cycles;
        let speedup = light_time.as_secs_f64() / omni_time.as_secs_f64().max(1e-9);
        speedups.push(speedup);

        println!(
            "{:<26} {:>11} {:>11} {:>9} {:>9} {:>8.2}x   {}",
            bench.name,
            secs(light_time),
            secs(omni_time),
            secs(omni_report.timings.front_end),
            secs(omni_report.timings.execution + omni_report.timings.finalize),
            speedup,
            if agree { "yes" } else { "MISMATCH" },
        );
        assert!(
            agree,
            "{}: OmniSim and LightningSim must agree on Type A designs",
            bench.name
        );
    }
    omnisim_bench::rule(100);
    println!(
        "\ngeomean speedup of OmniSim over the LightningSim baseline: {:.2}x",
        geomean(&speedups)
    );
    println!(
        "(the paper reports a 1.26x geomean with the largest wins — up to 6.61x — on the biggest designs, \
         because OmniSim overlaps functionality and performance simulation across threads)"
    );
}
