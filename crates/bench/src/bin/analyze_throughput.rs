//! Static-analyzer throughput benchmark: how many designs per second the
//! analyzer fully processes, per generator preset, plus its speedup over
//! the cheapest alternative that answers the same deadlock question — one
//! cold cycle-accurate reference simulation.
//!
//! For every generator preset a fixed seed window is analyzed end to end
//! (trace enumeration, network run, cycle classification, depth bounds,
//! races, lints) and the wall-clock rate recorded, along with the verdict
//! mix — an analyzer that answered `unknown` everywhere would be fast and
//! useless, so certification coverage is part of the result.
//!
//! On the Type A fixture designs the analyzer is additionally raced
//! head-to-head against a cold `rtl` reference simulation of the same
//! design; the run asserts the analyzer is at least 100x faster, the
//! margin that makes per-request pre-flight analysis in the serving tier
//! free in practice.
//!
//! Results are printed and written to `BENCH_analyze.json`. Pass `--smoke`
//! for the seconds-scale CI run.

use omnisim_gen::{generate, DeadlockVerdict, GenConfig};
use omnisim_suite::analyze::analyze;
use omnisim_suite::rtlsim::RtlSimulator;
use std::fmt::Write as _;
use std::time::Instant;

struct PresetResult {
    name: &'static str,
    analyze_rate: f64,
    certified_free: usize,
    certified_deadlock: usize,
    unknown: usize,
    diagnostics: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seeds: u64 = if smoke { 120 } else { 1000 };

    println!(
        "analyzer throughput over {seeds} seeds per preset{}\n",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<12} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "preset", "analyze/sec", "free", "deadlock", "unknown", "diags"
    );
    omnisim_bench::rule(72);

    let mut results: Vec<PresetResult> = Vec::new();
    for name in GenConfig::PRESET_NAMES {
        let cfg = GenConfig::preset(name).expect("preset names are exhaustive");
        let designs: Vec<_> = (0..seeds).map(|seed| generate(&cfg, seed).design).collect();

        let start = Instant::now();
        let mut certified_free = 0usize;
        let mut certified_deadlock = 0usize;
        let mut unknown = 0usize;
        let mut diagnostics = 0usize;
        for design in &designs {
            let report = analyze(design);
            match report.verdict {
                DeadlockVerdict::CertifiedFree => certified_free += 1,
                DeadlockVerdict::CertifiedDeadlock => certified_deadlock += 1,
                DeadlockVerdict::Unknown => unknown += 1,
            }
            diagnostics += report.diagnostics.len();
        }
        let analyze_rate = seeds as f64 / start.elapsed().as_secs_f64().max(1e-9);

        println!(
            "{name:<12} {analyze_rate:>14.0} {certified_free:>10} {certified_deadlock:>10} \
             {unknown:>10} {diagnostics:>10}"
        );
        results.push(PresetResult {
            name,
            analyze_rate,
            certified_free,
            certified_deadlock,
            unknown,
            diagnostics,
        });
    }
    omnisim_bench::rule(72);

    // Head-to-head on the Type A fixtures: analysis must be at least two
    // orders of magnitude cheaper than one cold reference simulation of
    // the same design — the margin that makes it a free pre-flight.
    let fixtures = [
        (
            "vecadd_stream",
            omnisim_suite::designs::typea::vecadd_stream(16384, 4),
        ),
        (
            "dataflow_graph",
            omnisim_suite::designs::typea::dataflow_graph("bench_df", 4, 16384, 1),
        ),
    ];
    let mut speedups: Vec<(&str, f64)> = Vec::new();
    for (fixture, design) in &fixtures {
        // Median-free, deterministic-enough timing: average over repeats.
        let reps = if smoke { 3 } else { 10 };
        let start = Instant::now();
        for _ in 0..reps {
            let report = analyze(design);
            assert_eq!(
                report.verdict,
                DeadlockVerdict::CertifiedFree,
                "fixture {fixture} must certify deadlock-free"
            );
        }
        let analyze_nanos = start.elapsed().as_nanos() as f64 / reps as f64;

        let start = Instant::now();
        for _ in 0..reps {
            let report = RtlSimulator::new(design).run().expect("fixture simulates");
            assert!(report.outcome.is_completed());
        }
        let rtl_nanos = start.elapsed().as_nanos() as f64 / reps as f64;

        let speedup = rtl_nanos / analyze_nanos.max(1.0);
        println!("{fixture}: analyzer {speedup:.0}x faster than one cold rtl simulation");
        speedups.push((fixture, speedup));
    }

    let mut json = String::from("{\n  \"bench\": \"analyze_throughput\",\n");
    let _ = writeln!(json, "  \"seeds_per_preset\": {seeds},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"presets\": {\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{}\": {{ \"analyze_per_sec\": {:.1}, \"certified_free\": {}, \
             \"certified_deadlock\": {}, \"unknown\": {}, \"diagnostics\": {} }}",
            r.name,
            r.analyze_rate,
            r.certified_free,
            r.certified_deadlock,
            r.unknown,
            r.diagnostics
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  },\n  \"speedup_vs_cold_rtl\": {\n");
    for (i, (fixture, speedup)) in speedups.iter().enumerate() {
        let _ = write!(json, "    \"{fixture}\": {speedup:.1}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_analyze.json", &json).expect("write BENCH_analyze.json");
    println!("\nwrote BENCH_analyze.json");

    for (fixture, speedup) in &speedups {
        assert!(
            *speedup >= 100.0,
            "analysis of {fixture} is only {speedup:.0}x faster than a cold rtl simulation \
             (expected >= 100x)"
        );
    }
}
