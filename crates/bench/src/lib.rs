//! # omnisim-bench
//!
//! Harness code shared by the table/figure regeneration binaries and the
//! Criterion benchmarks. Each binary regenerates one table or figure of the
//! paper's evaluation section; see `EXPERIMENTS.md` at the workspace root for
//! the mapping and for recorded results.
//!
//! Binaries (run with `cargo run --release -p omnisim-bench --bin <name>`):
//!
//! * `table3_functionality` — C-sim vs reference vs OmniSim functional outputs,
//! * `table4_dataset` — the benchmark design inventory,
//! * `fig8_accuracy` — cycle-count accuracy vs the reference simulator,
//! * `fig8_runtime` — runtime vs the reference simulator + OmniSim breakdown,
//! * `table5_vs_lightningsim` — OmniSim vs the LightningSim baseline,
//! * `table6_incremental` — the incremental FIFO-resizing case study,
//! * `dse_throughput` — compiled `SweepPlan` vs per-point incremental vs
//!   full re-simulation, in points/sec (writes `BENCH_dse.json`),
//! * `api_throughput` — one-shot `simulate()` vs amortized compile-once
//!   `run()` per backend, plus `SimService` batched serving throughput
//!   (writes `BENCH_api.json`),
//! * `fuzz` — cross-backend differential fuzzing over seeded random designs
//!   (reproduce any failing seed with `--seed N --class X`),
//! * `gen_throughput` — generator / fuzzing-loop throughput (writes
//!   `BENCH_gen.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omnisim_ir::design::OutputMap;
use std::time::Duration;

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Formats an output map as `key=value; …` for compact table cells.
pub fn format_outputs(outputs: &OutputMap) -> String {
    if outputs.is_empty() {
        return "(no outputs)".to_owned();
    }
    outputs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join("; ")
}

/// Geometric mean of a set of ratios.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Relative error of `measured` against `reference`, in percent.
///
/// A zero reference only means zero error when the measurement is also
/// zero; a non-zero measurement against a zero reference is unbounded
/// divergence and reported as `f64::INFINITY` rather than silently masked
/// as 0%.
pub fn percent_error(measured: u64, reference: u64) -> f64 {
    if reference == 0 {
        return if measured == 0 { 0.0 } else { f64::INFINITY };
    }
    (measured as f64 - reference as f64).abs() / reference as f64 * 100.0
}

/// Prints a horizontal rule of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_that_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percent_error_basics() {
        assert_eq!(percent_error(100, 100), 0.0);
        assert!((percent_error(101, 100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percent_error_zero_reference_distinguishes_divergence() {
        // A zero reference with a zero measurement is an exact match…
        assert_eq!(percent_error(0, 0), 0.0);
        // …but a non-zero measurement against a zero reference is unbounded
        // divergence, not 0% error (the regression this guards against).
        assert!(percent_error(5, 0).is_infinite());
        assert!(percent_error(1, 0) > 1e300);
    }

    #[test]
    fn output_formatting() {
        let mut m = OutputMap::new();
        assert_eq!(format_outputs(&m), "(no outputs)");
        m.insert("sum".into(), 7);
        m.insert("dropped".into(), 2);
        assert_eq!(format_outputs(&m), "dropped=2; sum=7");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500s");
    }
}
