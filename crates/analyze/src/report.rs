//! Typed analysis results: diagnostics, rules, severities and the report.

use omnisim_ir::{ArrayId, AxiId, FifoId, Loc, ModuleId};
use std::fmt;

/// How serious a diagnostic is.
///
/// * `Error` — the design will certainly misbehave if the flagged code runs
///   (deadlock, out-of-bounds access, protocol violation).
/// * `Warning` — the construct is unordered or lossy and very likely a bug
///   (shared mutable state without synchronization, silently dropped
///   tokens), but a run may still complete.
/// * `Info` — benign but worth knowing (dead code, leftover tokens,
///   elided status checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Benign observation.
    Info,
    /// Likely bug; runs may still complete.
    Warning,
    /// Certain misbehaviour if the flagged code executes.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The analysis rule a diagnostic was produced by. Stable kebab-case names
/// ([`Rule::name`]) are the public identifiers used in reports and docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A cyclic component of the task/FIFO graph, classified by risk.
    DeadlockCycle,
    /// The whole-design deadlock certificate (a task provably blocks).
    Deadlock,
    /// A FIFO whose static depth lower bound exceeds its declared depth.
    FifoDepthBound,
    /// Exact token counts on a FIFO disagree between producer and consumer.
    TokenImbalance,
    /// Two tasks touch the same array, at least one writing, with no
    /// FIFO-ordering edge between the accesses.
    SharedArray,
    /// Two tasks drive the same AXI port (ports are private to one task).
    SharedAxi,
    /// Unreachable block, uncalled module or never-written output.
    DeadCode,
    /// A FIFO that is never read, never written, or never accessed at all.
    FifoUsage,
    /// A FIFO status check whose result is discarded (`dst: None`).
    ElidedCheck,
    /// A non-blocking FIFO write whose success flag is discarded: failed
    /// pushes drop the value silently.
    NbSilentDrop,
    /// A provably out-of-bounds array access.
    ArrayBounds,
    /// An AXI burst protocol violation: beat/request mismatch or a burst
    /// window outside the backing array.
    AxiProtocol,
}

impl Rule {
    /// All rules, in catalog order.
    pub const ALL: [Rule; 12] = [
        Rule::DeadlockCycle,
        Rule::Deadlock,
        Rule::FifoDepthBound,
        Rule::TokenImbalance,
        Rule::SharedArray,
        Rule::SharedAxi,
        Rule::DeadCode,
        Rule::FifoUsage,
        Rule::ElidedCheck,
        Rule::NbSilentDrop,
        Rule::ArrayBounds,
        Rule::AxiProtocol,
    ];

    /// Stable kebab-case rule identifier.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DeadlockCycle => "deadlock-cycle",
            Rule::Deadlock => "deadlock",
            Rule::FifoDepthBound => "fifo-depth-bound",
            Rule::TokenImbalance => "token-imbalance",
            Rule::SharedArray => "shared-array",
            Rule::SharedAxi => "shared-axi",
            Rule::DeadCode => "dead-code",
            Rule::FifoUsage => "fifo-usage",
            Rule::ElidedCheck => "elided-check",
            Rule::NbSilentDrop => "nb-silent-drop",
            Rule::ArrayBounds => "array-bounds",
            Rule::AxiProtocol => "axi-protocol",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One typed finding: the rule that fired, how severe it is, where it
/// points ([`Loc`] — the same location type `ir::validate` errors carry)
/// and which entities are involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule produced this finding.
    pub rule: Rule,
    /// How serious it is.
    pub severity: Severity,
    /// Where the finding points (module / block / op index).
    pub loc: Loc,
    /// FIFO involved, if any.
    pub fifo: Option<FifoId>,
    /// Array involved, if any.
    pub array: Option<ArrayId>,
    /// AXI port involved, if any.
    pub axi: Option<AxiId>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.loc, self.message
        )
    }
}

/// The design-wide deadlock verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockVerdict {
    /// Every task's channel trace was enumerated exactly, the abstract
    /// network run drained every trace, and no access can fault: the design
    /// provably completes under any fair scheduling (and in particular
    /// under the `rtl` reference).
    CertifiedFree,
    /// Every task's channel trace was enumerated exactly and the abstract
    /// network run wedged: the design provably never completes.
    CertifiedDeadlock,
    /// The analysis could not decide: some task's control flow depends on
    /// runtime data, executes non-blocking accesses, exceeds the analysis
    /// fuel, or touches memory the analysis cannot prove in-bounds.
    Unknown,
}

impl fmt::Display for DeadlockVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlockVerdict::CertifiedFree => write!(f, "certified-free"),
            DeadlockVerdict::CertifiedDeadlock => write!(f, "certified-deadlock"),
            DeadlockVerdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// Risk classification of one cyclic component of the task/FIFO graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleClass {
    /// The declared FIFO depths provably break the cycle: the exact
    /// network run completes.
    ProvablySafe,
    /// The exact network run wedges with a task of this cycle blocked.
    ProvablyDeadlocked,
    /// Completion depends on runtime data, non-blocking outcomes or depths
    /// the analysis cannot enumerate.
    DepthDependent,
}

impl fmt::Display for CycleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleClass::ProvablySafe => write!(f, "provably-safe"),
            CycleClass::ProvablyDeadlocked => write!(f, "provably-deadlocked"),
            CycleClass::DepthDependent => write!(f, "depth-dependent"),
        }
    }
}

/// One cyclic strongly connected component of the task/FIFO dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// Tasks participating in the cycle (root modules).
    pub tasks: Vec<ModuleId>,
    /// FIFOs whose edges stay inside the cycle.
    pub fifos: Vec<FifoId>,
    /// Risk classification.
    pub class: CycleClass,
}

/// Static depth lower bound for one FIFO.
///
/// The bound is *necessary for completion*: any depth assignment under
/// which the design completes satisfies `depth >= bound`. It therefore can
/// never exceed a certified `min_depths` minimum — the soundness property
/// the differential fuzzer checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthBound {
    /// The lower bound, in elements. At least 1 (zero-depth FIFOs are
    /// rejected by validation).
    pub bound: usize,
    /// True when the bound was derived from exact token counts (every
    /// endpoint's trace enumerated, no non-blocking accesses on the FIFO);
    /// false when it is the generic floor of 1.
    pub exact: bool,
}

/// Everything the static analyzer learned about a design.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Whole-design deadlock verdict.
    pub verdict: DeadlockVerdict,
    /// Cyclic components of the task/FIFO graph, classified.
    pub cycles: Vec<CycleReport>,
    /// Per-FIFO static depth lower bounds, indexed by `FifoId`.
    pub depth_bounds: Vec<DepthBound>,
    /// All findings, in rule-catalog order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of concurrent tasks analyzed.
    pub tasks: usize,
    /// How many of them had an exactly enumerable channel trace.
    pub countable_tasks: usize,
}

impl AnalysisReport {
    /// Number of diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Diagnostics produced by `rule`.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// True if no diagnostic reaches `Severity::Error`.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_kebab_case_and_unique() {
        let mut names: Vec<_> = Rule::ALL.iter().map(|r| r.name()).collect();
        for n in &names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Rule::ALL.len());
    }

    #[test]
    fn severity_orders_by_seriousness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn diagnostic_display_is_greppable() {
        let d = Diagnostic {
            rule: Rule::FifoUsage,
            severity: Severity::Warning,
            loc: Loc::module(ModuleId(2)),
            fifo: Some(FifoId(1)),
            array: None,
            axi: None,
            message: "fifo f1 is written but never read".into(),
        };
        let s = d.to_string();
        assert!(s.contains("warning"));
        assert!(s.contains("fifo-usage"));
        assert!(s.contains("m2"));
    }
}
