//! Countable-trace abstract interpretation.
//!
//! Functional execution of a task is *sequential*: within one thread,
//! channel operations take effect in program order regardless of how the
//! static schedule overlaps their timing (pipelining moves commit cycles,
//! not the order tokens enter and leave a FIFO from this thread's point of
//! view). So if every branch a task takes can be decided from constants —
//! loop bounds, induction variables, values loaded from arrays nothing ever
//! stores to — the task's entire channel-op sequence can be enumerated
//! exactly without simulating time at all.
//!
//! The interpreter walks a task's CFG from the entry block with an
//! environment mapping each variable to `Known(i64)` or `Unknown`,
//! mirroring `Expr::eval` (an expression over fully-known variables
//! evaluates to exactly what the simulators compute; anything touching an
//! unknown degrades to `Unknown`). Values read from FIFOs, AXI beats and
//! stored-to arrays are `Unknown`; a branch on `Unknown`, a fuel overrun or
//! an unbounded loop makes the task *uncountable* and every downstream pass
//! degrades soundly (verdicts become `Unknown`, bounds fall back to the
//! floor).

use crate::report::{Diagnostic, Rule, Severity};
use omnisim_ir::{
    ArrayId, AxiId, BinOp, BlockId, Design, Expr, FifoId, Loc, ModuleId, Op, Terminator, UnOp,
    VarId,
};
use std::collections::HashMap;

/// Abstract-op budget per task. Each executed op and block transition costs
/// one unit; exceeding the budget makes the task uncountable instead of
/// hanging the analyzer on huge or unbounded loops.
pub(crate) const TRACE_FUEL: u64 = 2_000_000;

/// Cap on *stored* channel/array events per task (a `Repeat` segment
/// stores its body once however many times it repeats), so a tight loop
/// cannot balloon the trace buffer.
pub(crate) const MAX_EVENTS: usize = 1_000_000;

/// Largest iteration count the loop summarizer will certify in one
/// segment. Guards the closed-form exit solver against absurd trip counts
/// whose downstream arithmetic would be meaningless anyway.
const MAX_SUMMARY_ITERS: i128 = 1 << 62;

/// One channel-visible event of a task's exact program-order trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    /// Blocking FIFO read.
    FifoRead(FifoId),
    /// Blocking FIFO write.
    FifoWrite(FifoId),
    /// Executed non-blocking FIFO read.
    FifoNbRead(FifoId),
    /// Executed non-blocking FIFO write.
    FifoNbWrite(FifoId),
    /// Array load.
    ArrayLoad(ArrayId),
    /// Array store.
    ArrayStore(ArrayId),
}

/// A run of a task's program-order event stream. Loop summarization
/// compresses a counted self-loop whose body is affine into one `Repeat`
/// segment, so stored trace size is bounded by program size while the
/// *virtual* trace it denotes scales with trip counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Segment {
    /// A single event.
    Once(Event),
    /// `body` repeated `count` times back to back.
    Repeat {
        /// One iteration's events in program order.
        body: Vec<Event>,
        /// How many times the body executes.
        count: u64,
    },
}

/// The result of abstractly interpreting one task.
#[derive(Debug, Clone)]
pub(crate) struct TaskTrace {
    /// Root module of the task.
    pub root: ModuleId,
    /// True when the full trace was enumerated exactly.
    pub countable: bool,
    /// Where the interpreter gave up (uncountable tasks only).
    pub gave_up_at: Option<Loc>,
    /// Program-order event segments. Exact only when `countable`.
    pub segments: Vec<Segment>,
    /// Executed blocking + non-blocking reads per FIFO.
    pub reads: Vec<u64>,
    /// Executed blocking + non-blocking writes per FIFO.
    pub writes: Vec<u64>,
    /// Executed non-blocking reads per FIFO.
    pub nb_reads: Vec<u64>,
    /// Executed non-blocking writes per FIFO.
    pub nb_writes: Vec<u64>,
    /// AXI ports this task issued any transaction on.
    pub axi_used: Vec<bool>,
    /// Arrays this task loaded from.
    pub loads: Vec<bool>,
    /// Arrays this task stored to.
    pub stores: Vec<bool>,
    /// True when every executed array index and AXI burst window was a
    /// known constant inside bounds and every AXI beat matched an
    /// outstanding request — the no-fault half of a completion certificate.
    pub const_safe: bool,
    /// Faults and protocol violations found while interpreting (exact:
    /// these executions really happen if the design runs).
    pub violations: Vec<Diagnostic>,
}

impl TaskTrace {
    fn new(design: &Design, root: ModuleId) -> Self {
        TaskTrace {
            root,
            countable: true,
            gave_up_at: None,
            segments: Vec::new(),
            reads: vec![0; design.fifos.len()],
            writes: vec![0; design.fifos.len()],
            nb_reads: vec![0; design.fifos.len()],
            nb_writes: vec![0; design.fifos.len()],
            axi_used: vec![false; design.axi_ports.len()],
            loads: vec![false; design.arrays.len()],
            stores: vec![false; design.arrays.len()],
            const_safe: true,
            violations: Vec::new(),
        }
    }

    /// True if the trace executed any non-blocking FIFO access at all.
    pub fn executed_nb(&self) -> bool {
        self.nb_reads.iter().any(|&n| n > 0) || self.nb_writes.iter().any(|&n| n > 0)
    }
}

/// An abstract value: a compile-time constant or anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    Known(i64),
    Unknown,
}

/// An affine abstract value over the iteration counter `t` of the loop
/// being summarized: `base + stride * t` in exact (non-wrapping) integers.
/// Coefficients outside the i64 range degrade to `Unknown` at construction
/// so that wrapping concrete arithmetic can never diverge from the model
/// at a point where the model's value is consulted (concrete wrapping
/// `+`/`-`/`*` is arithmetic mod 2^64, so whenever the exact value fits in
/// i64 the wrapped value equals it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Aff {
    Lin { base: i128, stride: i128 },
    Unknown,
}

impl Aff {
    fn known(v: i64) -> Aff {
        Aff::Lin {
            base: v as i128,
            stride: 0,
        }
    }

    fn lin(base: i128, stride: i128) -> Aff {
        let fits = |v: i128| i64::try_from(v).is_ok();
        if fits(base) && fits(stride) {
            Aff::Lin { base, stride }
        } else {
            Aff::Unknown
        }
    }

    /// Concrete value at iteration `t` when it fits in i64.
    fn at(self, t: u64) -> AbsVal {
        match self {
            Aff::Lin { base, stride } => {
                let v = base + stride * t as i128;
                i64::try_from(v)
                    .map(AbsVal::Known)
                    .unwrap_or(AbsVal::Unknown)
            }
            Aff::Unknown => AbsVal::Unknown,
        }
    }

    /// True when the value fits in i64 at both ends of `t in [0, last]` —
    /// affine values take their extremes at the endpoints.
    fn fits_through(self, last: u64) -> bool {
        match self {
            Aff::Lin { base, stride } => {
                i64::try_from(base).is_ok() && i64::try_from(base + stride * last as i128).is_ok()
            }
            Aff::Unknown => false,
        }
    }

    /// The known constant this value is for every `t`, if any.
    fn constant(self) -> Option<i64> {
        match self {
            Aff::Lin { base, stride: 0 } => i64::try_from(base).ok(),
            _ => None,
        }
    }
}

/// Evaluates `expr` in the affine domain. Loop-invariant subtrees are
/// evaluated concretely (exact wrapping semantics via [`abs_eval`]); on
/// top of that only the ring operations `+`, `-`, unary `-` and `*` by an
/// invariant factor preserve affinity — everything else over a varying
/// value is `Unknown`.
fn affine_eval(expr: &Expr, aff: &[Aff], known: &[AbsVal], scratch: &mut Vec<VarId>) -> Aff {
    if let AbsVal::Known(v) = abs_eval(expr, known, scratch) {
        return Aff::known(v);
    }
    match expr {
        Expr::Const(c) => Aff::known(*c),
        Expr::Var(v) => aff[v.index()],
        Expr::Unary(UnOp::Neg, a) => match affine_eval(a, aff, known, scratch) {
            Aff::Lin { base, stride } => Aff::lin(-base, -stride),
            Aff::Unknown => Aff::Unknown,
        },
        Expr::Binary(op @ (BinOp::Add | BinOp::Sub), a, b) => {
            let (av, bv) = (
                affine_eval(a, aff, known, scratch),
                affine_eval(b, aff, known, scratch),
            );
            match (av, bv) {
                (
                    Aff::Lin {
                        base: b1,
                        stride: s1,
                    },
                    Aff::Lin {
                        base: b2,
                        stride: s2,
                    },
                ) => {
                    if matches!(op, BinOp::Add) {
                        Aff::lin(b1 + b2, s1 + s2)
                    } else {
                        Aff::lin(b1 - b2, s1 - s2)
                    }
                }
                _ => Aff::Unknown,
            }
        }
        Expr::Binary(BinOp::Mul, a, b) => {
            let (av, bv) = (
                affine_eval(a, aff, known, scratch),
                affine_eval(b, aff, known, scratch),
            );
            match (av, bv) {
                (
                    Aff::Lin {
                        base: b1,
                        stride: s1,
                    },
                    Aff::Lin {
                        base: b2,
                        stride: 0,
                    },
                ) => Aff::lin(b1 * b2, s1 * b2),
                (
                    Aff::Lin {
                        base: b1,
                        stride: 0,
                    },
                    Aff::Lin {
                        base: b2,
                        stride: s2,
                    },
                ) => Aff::lin(b1 * b2, b1 * s2),
                _ => Aff::Unknown,
            }
        }
        Expr::Select(c, a, b) => match affine_eval(c, aff, known, scratch).constant() {
            Some(v) if v != 0 => affine_eval(a, aff, known, scratch),
            Some(_) => affine_eval(b, aff, known, scratch),
            None => Aff::Unknown,
        },
        _ => Aff::Unknown,
    }
}

/// Comparison relations the exit solver understands.
#[derive(Debug, Clone, Copy)]
enum Rel {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

/// Smallest `t >= 0` with `truth(d0 + ds*t REL 0) == want`, in exact
/// integer arithmetic; `None` when no such iteration exists.
fn first_t(d0: i128, ds: i128, rel: Rel, want: bool) -> Option<i128> {
    let truth = |v: i128| match rel {
        Rel::Lt => v < 0,
        Rel::Le => v <= 0,
        Rel::Gt => v > 0,
        Rel::Ge => v >= 0,
        Rel::Eq => v == 0,
        Rel::Ne => v != 0,
    };
    if ds == 0 {
        return if truth(d0) == want { Some(0) } else { None };
    }
    match (rel, want) {
        (Rel::Eq, true) | (Rel::Ne, false) => {
            // d0 + ds*t == 0 at exactly one (possibly fractional) t.
            if d0 % ds == 0 && -d0 / ds >= 0 {
                Some(-d0 / ds)
            } else {
                None
            }
        }
        (Rel::Eq, false) | (Rel::Ne, true) => {
            // Nonzero everywhere except at most one t.
            if d0 != 0 {
                Some(0)
            } else {
                Some(1)
            }
        }
        _ => {
            // Every remaining case is "first t with d0 + ds*t <= C" or
            // ">= C" for some constant C.
            let (le, c): (bool, i128) = match (rel, want) {
                (Rel::Lt, true) => (true, -1),
                (Rel::Le, true) => (true, 0),
                (Rel::Gt, true) => (false, 1),
                (Rel::Ge, true) => (false, 0),
                (Rel::Lt, false) => (false, 0),
                (Rel::Le, false) => (false, 1),
                (Rel::Gt, false) => (true, 0),
                (Rel::Ge, false) => (true, -1),
                _ => unreachable!("Eq/Ne handled above"),
            };
            if le {
                if ds > 0 {
                    if d0 <= c {
                        Some(0)
                    } else {
                        None
                    }
                } else {
                    Some(div_ceil(d0 - c, -ds).max(0))
                }
            } else if ds < 0 {
                if d0 >= c {
                    Some(0)
                } else {
                    None
                }
            } else {
                Some(div_ceil(c - d0, ds).max(0))
            }
        }
    }
}

/// One symbolic execution of a self-loop block body in the affine domain.
struct SymPass {
    /// Variable state after the body, as functions of the iteration `t`.
    aff: Vec<Aff>,
    /// The (iteration-independent) event sequence one body run emits.
    events: Vec<Event>,
    /// Deferred array bounds checks: (loc, index, array length, is_load).
    checks: Vec<(Loc, Aff, i64, bool)>,
}

/// Why interpretation of a task stopped early.
enum Stop {
    /// Control depends on an unknown value, or fuel ran out, at this loc.
    Uncountable(Loc),
}

/// Evaluates `expr` if every variable it references is `Known`, reusing the
/// concrete `Expr::eval` so abstract and simulated semantics can never
/// drift apart.
fn abs_eval(expr: &Expr, env: &[AbsVal], scratch: &mut Vec<VarId>) -> AbsVal {
    scratch.clear();
    expr.collect_vars(scratch);
    for v in scratch.iter() {
        match env[v.index()] {
            AbsVal::Known(_) => {}
            AbsVal::Unknown => return AbsVal::Unknown,
        }
    }
    let lookup = |v: VarId| match env[v.index()] {
        AbsVal::Known(k) => k,
        AbsVal::Unknown => unreachable!("checked above"),
    };
    AbsVal::Known(expr.eval(&lookup))
}

/// One in-flight AXI read burst: remaining beats, or `None` once poisoned
/// by an unknown length.
#[derive(Debug, Clone, Copy)]
struct ReadBurst {
    remaining: Option<u64>,
}

/// One in-flight AXI write burst.
#[derive(Debug, Clone, Copy)]
struct WriteBurst {
    len: Option<u64>,
    sent: u64,
}

struct Interp<'d> {
    design: &'d Design,
    /// Per array: true when no op anywhere in the design stores to it, so
    /// loads with constant indices yield known init values.
    read_only: &'d [bool],
    fuel: u64,
    trace: TaskTrace,
    /// Per AXI port: queued read bursts with beats not yet consumed.
    read_bursts: Vec<std::collections::VecDeque<ReadBurst>>,
    /// Per AXI port: queued write bursts not yet acknowledged.
    write_bursts: Vec<std::collections::VecDeque<WriteBurst>>,
    /// Per AXI port: true once protocol tracking hit an unknown length.
    axi_poisoned: Vec<bool>,
    /// Events stored so far across all segments (bodies count once).
    stored_events: usize,
    scratch: Vec<VarId>,
}

impl<'d> Interp<'d> {
    fn diag(&mut self, rule: Rule, severity: Severity, loc: Loc, message: String) {
        // One diagnostic per (rule, loc): a faulting op inside a loop fires
        // once, not once per iteration.
        if self
            .trace
            .violations
            .iter()
            .any(|d| d.rule == rule && d.loc == loc)
        {
            return;
        }
        let (array, axi) = match rule {
            Rule::ArrayBounds => (self.array_at(loc), None),
            Rule::AxiProtocol => (None, self.axi_at(loc)),
            _ => (None, None),
        };
        self.trace.violations.push(Diagnostic {
            rule,
            severity,
            loc,
            fifo: None,
            array,
            axi,
            message,
        });
    }

    fn array_at(&self, loc: Loc) -> Option<ArrayId> {
        let op = self.op_at(loc)?;
        match op {
            Op::ArrayLoad { array, .. } | Op::ArrayStore { array, .. } => Some(*array),
            _ => None,
        }
    }

    fn axi_at(&self, loc: Loc) -> Option<AxiId> {
        let op = self.op_at(loc)?;
        match op {
            Op::AxiReadReq { bus, .. }
            | Op::AxiRead { bus, .. }
            | Op::AxiWriteReq { bus, .. }
            | Op::AxiWrite { bus, .. }
            | Op::AxiWriteResp { bus } => Some(*bus),
            _ => None,
        }
    }

    fn op_at(&self, loc: Loc) -> Option<&'d Op> {
        let m = self.design.module(loc.module?);
        Some(&m.blocks[loc.block?.index()].ops[loc.op?].op)
    }

    fn spend(&mut self, loc: Loc) -> Result<(), Stop> {
        if self.fuel == 0 {
            return Err(Stop::Uncountable(loc));
        }
        self.fuel -= 1;
        Ok(())
    }

    fn record(&mut self, event: Event, loc: Loc) -> Result<(), Stop> {
        if self.stored_events >= MAX_EVENTS {
            return Err(Stop::Uncountable(loc));
        }
        self.stored_events += 1;
        self.trace.segments.push(Segment::Once(event));
        Ok(())
    }

    /// Runs `module` with the given argument values; returns the module's
    /// return value.
    fn run_module(&mut self, mid: ModuleId, args: &[AbsVal]) -> Result<AbsVal, Stop> {
        let module = self.design.module(mid);
        let mut env = vec![AbsVal::Known(0); module.num_vars as usize];
        env[..args.len()].copy_from_slice(args);
        let mut block = BlockId(0);
        // Per self-loop block: entry env of the previous visit (the stride
        // seed for summarization) and failed-attempt count.
        let mut loop_hist: HashMap<u32, (Vec<AbsVal>, u32)> = HashMap::new();
        loop {
            let b = &module.blocks[block.index()];
            if let Terminator::Branch {
                if_true, if_false, ..
            } = &b.terminator
            {
                if (*if_true == block) != (*if_false == block) {
                    match loop_hist.get(&block.0) {
                        Some((prev, attempts)) if *attempts < 4 => {
                            let prev = prev.clone();
                            let attempts = *attempts;
                            if let Some((exit, final_env)) =
                                self.try_summarize(mid, block, &env, &prev)
                            {
                                loop_hist.remove(&block.0);
                                env = final_env;
                                block = exit;
                                continue;
                            }
                            loop_hist.insert(block.0, (env.clone(), attempts + 1));
                        }
                        Some(_) => {}
                        None => {
                            loop_hist.insert(block.0, (env.clone(), 0));
                        }
                    }
                }
            }
            for (op_idx, sop) in b.ops.iter().enumerate() {
                let loc = Loc::op(mid, block, op_idx);
                self.spend(loc)?;
                self.exec_op(mid, loc, &sop.op, &mut env)?;
            }
            let term_loc = Loc::block(mid, block);
            self.spend(term_loc)?;
            match &b.terminator {
                Terminator::Jump(next) => block = *next,
                Terminator::Branch {
                    cond,
                    if_true,
                    if_false,
                } => match abs_eval(cond, &env, &mut self.scratch) {
                    AbsVal::Known(c) => block = if c != 0 { *if_true } else { *if_false },
                    AbsVal::Unknown => return Err(Stop::Uncountable(term_loc)),
                },
                Terminator::Return(value) => {
                    return Ok(match value {
                        Some(expr) => abs_eval(expr, &env, &mut self.scratch),
                        None => AbsVal::Unknown,
                    });
                }
            }
        }
    }

    fn exec_op(
        &mut self,
        mid: ModuleId,
        loc: Loc,
        op: &Op,
        env: &mut [AbsVal],
    ) -> Result<(), Stop> {
        match op {
            Op::Assign { dst, expr } => {
                env[dst.index()] = abs_eval(expr, env, &mut self.scratch);
            }
            Op::ArrayLoad { dst, array, index } => {
                self.trace.loads[array.index()] = true;
                self.record(Event::ArrayLoad(*array), loc)?;
                let len = self.design.array(*array).init.len() as i64;
                match abs_eval(index, env, &mut self.scratch) {
                    AbsVal::Known(i) if i >= 0 && i < len => {
                        env[dst.index()] = if self.read_only[array.index()] {
                            AbsVal::Known(self.design.array(*array).init[i as usize])
                        } else {
                            AbsVal::Unknown
                        };
                    }
                    AbsVal::Known(i) => {
                        self.trace.const_safe = false;
                        self.diag(
                            Rule::ArrayBounds,
                            Severity::Error,
                            loc,
                            format!("load from index {i} of array with {len} elements"),
                        );
                        env[dst.index()] = AbsVal::Unknown;
                    }
                    AbsVal::Unknown => {
                        self.trace.const_safe = false;
                        env[dst.index()] = AbsVal::Unknown;
                    }
                }
            }
            Op::ArrayStore { array, index, .. } => {
                self.trace.stores[array.index()] = true;
                self.record(Event::ArrayStore(*array), loc)?;
                let len = self.design.array(*array).init.len() as i64;
                match abs_eval(index, env, &mut self.scratch) {
                    AbsVal::Known(i) if i >= 0 && i < len => {}
                    AbsVal::Known(i) => {
                        self.trace.const_safe = false;
                        self.diag(
                            Rule::ArrayBounds,
                            Severity::Error,
                            loc,
                            format!("store to index {i} of array with {len} elements"),
                        );
                    }
                    AbsVal::Unknown => self.trace.const_safe = false,
                }
            }
            Op::FifoWrite { fifo, .. } => {
                self.trace.writes[fifo.index()] += 1;
                self.record(Event::FifoWrite(*fifo), loc)?;
            }
            Op::FifoRead { fifo, dst } => {
                self.trace.reads[fifo.index()] += 1;
                self.record(Event::FifoRead(*fifo), loc)?;
                env[dst.index()] = AbsVal::Unknown;
            }
            Op::FifoNbWrite { fifo, success, .. } => {
                self.trace.writes[fifo.index()] += 1;
                self.trace.nb_writes[fifo.index()] += 1;
                self.record(Event::FifoNbWrite(*fifo), loc)?;
                if let Some(s) = success {
                    env[s.index()] = AbsVal::Unknown;
                }
            }
            Op::FifoNbRead { fifo, dst, success } => {
                self.trace.reads[fifo.index()] += 1;
                self.trace.nb_reads[fifo.index()] += 1;
                self.record(Event::FifoNbRead(*fifo), loc)?;
                env[dst.index()] = AbsVal::Unknown;
                if let Some(s) = success {
                    env[s.index()] = AbsVal::Unknown;
                }
            }
            Op::FifoEmpty { dst, .. } | Op::FifoFull { dst, .. } => {
                if let Some(d) = dst {
                    env[d.index()] = AbsVal::Unknown;
                }
            }
            Op::AxiReadReq { bus, addr, len } => {
                self.trace.axi_used[bus.index()] = true;
                let burst = self.check_burst_window(*bus, addr, len, env, loc, "read");
                self.read_bursts[bus.index()].push_back(ReadBurst { remaining: burst });
            }
            Op::AxiRead { bus, dst } => {
                self.trace.axi_used[bus.index()] = true;
                env[dst.index()] = AbsVal::Unknown;
                if !self.axi_poisoned[bus.index()] {
                    let q = &mut self.read_bursts[bus.index()];
                    loop {
                        match q.front_mut() {
                            Some(b) => match &mut b.remaining {
                                Some(0) => {
                                    q.pop_front();
                                }
                                Some(r) => {
                                    *r -= 1;
                                    break;
                                }
                                None => {
                                    // Unknown length: stop tracking this port.
                                    self.axi_poisoned[bus.index()] = true;
                                    break;
                                }
                            },
                            None => {
                                self.trace.const_safe = false;
                                self.diag(
                                    Rule::AxiProtocol,
                                    Severity::Error,
                                    loc,
                                    "read beat consumed with no outstanding read burst".into(),
                                );
                                break;
                            }
                        }
                    }
                }
            }
            Op::AxiWriteReq { bus, addr, len } => {
                self.trace.axi_used[bus.index()] = true;
                let burst = self.check_burst_window(*bus, addr, len, env, loc, "write");
                self.write_bursts[bus.index()].push_back(WriteBurst {
                    len: burst,
                    sent: 0,
                });
            }
            Op::AxiWrite { bus, .. } => {
                self.trace.axi_used[bus.index()] = true;
                if !self.axi_poisoned[bus.index()] {
                    let q = &mut self.write_bursts[bus.index()];
                    match q.front_mut() {
                        Some(b) => match b.len {
                            Some(len) if b.sent >= len => {
                                self.trace.const_safe = false;
                                self.diag(
                                    Rule::AxiProtocol,
                                    Severity::Error,
                                    loc,
                                    format!("write beat past the requested burst length {len}"),
                                );
                            }
                            Some(_) => b.sent += 1,
                            None => self.axi_poisoned[bus.index()] = true,
                        },
                        None => {
                            self.trace.const_safe = false;
                            self.diag(
                                Rule::AxiProtocol,
                                Severity::Error,
                                loc,
                                "write beat sent with no outstanding write burst".into(),
                            );
                        }
                    }
                }
            }
            Op::AxiWriteResp { bus } => {
                self.trace.axi_used[bus.index()] = true;
                if !self.axi_poisoned[bus.index()] {
                    let front = self.write_bursts[bus.index()]
                        .front()
                        .map(|b| (b.len, b.sent));
                    match front {
                        Some((Some(len), sent)) if sent < len => {
                            self.trace.const_safe = false;
                            self.diag(
                                Rule::AxiProtocol,
                                Severity::Error,
                                loc,
                                format!("write response awaited after {sent} of {len} beats"),
                            );
                            self.write_bursts[bus.index()].pop_front();
                        }
                        Some((Some(_), _)) => {
                            self.write_bursts[bus.index()].pop_front();
                        }
                        Some((None, _)) => self.axi_poisoned[bus.index()] = true,
                        None => {
                            self.trace.const_safe = false;
                            self.diag(
                                Rule::AxiProtocol,
                                Severity::Error,
                                loc,
                                "write response awaited with no outstanding write burst".into(),
                            );
                        }
                    }
                }
            }
            Op::Call { callee, args, dst } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(abs_eval(a, env, &mut self.scratch));
                }
                // Recursion is rejected by validation, so native recursion
                // here is bounded by the module count.
                let ret = self.run_module(*callee, &vals)?;
                if let Some(d) = dst {
                    env[d.index()] = ret;
                }
            }
            Op::Output { .. } => {}
        }
        let _ = mid;
        Ok(())
    }

    /// Bounds-checks an AXI burst window against the port's backing array.
    /// Returns the burst length when it is a known constant.
    fn check_burst_window(
        &mut self,
        bus: AxiId,
        addr: &Expr,
        len: &Expr,
        env: &[AbsVal],
        loc: Loc,
        kind: &str,
    ) -> Option<u64> {
        let backing = self.design.axi_port(bus).array;
        let arr_len = self.design.array(backing).init.len() as i64;
        let addr_v = abs_eval(addr, env, &mut self.scratch);
        let len_v = abs_eval(len, env, &mut self.scratch);
        match (addr_v, len_v) {
            (AbsVal::Known(a), AbsVal::Known(l)) => {
                if a < 0 || l < 0 || a.saturating_add(l) > arr_len {
                    self.trace.const_safe = false;
                    self.diag(
                        Rule::AxiProtocol,
                        Severity::Error,
                        loc,
                        format!(
                            "{kind} burst [{a}, {a}+{l}) outside backing array of {arr_len} elements"
                        ),
                    );
                }
                Some(l.max(0) as u64)
            }
            _ => {
                self.trace.const_safe = false;
                None
            }
        }
    }

    /// Attempts to summarize the self-loop `block` — about to run again
    /// with entry env `env`, having entered last time with `prev` — into
    /// one `Repeat` segment covering every remaining iteration. Returns
    /// the exit block and the exact post-loop env on success; `None` falls
    /// back to concrete per-iteration execution.
    ///
    /// Soundness does not rest on the observed `prev -> env` deltas (they
    /// only seed the strides): a symbolic pass over the straight-line body
    /// must *prove* the env advances by exactly those strides each
    /// iteration, demoting any variable that does not to `Unknown` and
    /// retrying until the model is self-consistent. The remaining trip
    /// count then comes from solving the branch condition in closed form,
    /// and every materialized value (array indices, condition operands,
    /// final env) is checked to stay in the i64 range across the full
    /// iteration span so wrapping concrete arithmetic matches the exact
    /// model wherever it is observed.
    fn try_summarize(
        &mut self,
        mid: ModuleId,
        block: BlockId,
        env: &[AbsVal],
        prev: &[AbsVal],
    ) -> Option<(BlockId, Vec<AbsVal>)> {
        let module = self.design.module(mid);
        let b = &module.blocks[block.index()];
        let Terminator::Branch {
            cond,
            if_true,
            if_false,
        } = &b.terminator
        else {
            return None;
        };
        let exit_block = if *if_true == block {
            *if_false
        } else {
            *if_true
        };
        // A symbolic attempt costs fuel like one concrete iteration would,
        // so repeated failed attempts cannot extend the fuel budget.
        let cost = b.ops.len() as u64 + 1;
        if self.fuel < cost {
            return None;
        }
        self.fuel -= cost;

        // Seed strides from the observed last iteration; verification
        // below demotes anything the body does not actually advance so.
        let mut seed: Vec<Aff> = env
            .iter()
            .zip(prev)
            .map(|(cur, old)| match (*cur, *old) {
                (AbsVal::Known(c), AbsVal::Known(p)) => Aff::lin(c as i128, c as i128 - p as i128),
                (AbsVal::Known(c), AbsVal::Unknown) => Aff::known(c),
                (AbsVal::Unknown, _) => Aff::Unknown,
            })
            .collect();

        let mut pass;
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            if rounds > seed.len() + 2 {
                return None;
            }
            pass = self.affine_body_pass(mid, block, &seed)?;
            let mut demoted = false;
            for (v, s) in seed.iter_mut().enumerate() {
                match (*s, pass.aff[v]) {
                    (Aff::Unknown, _) => {}
                    (
                        Aff::Lin { base, stride },
                        Aff::Lin {
                            base: b2,
                            stride: s2,
                        },
                    ) if b2 == base + stride && s2 == stride => {}
                    _ => {
                        *s = Aff::Unknown;
                        demoted = true;
                    }
                }
            }
            if !demoted {
                break;
            }
        }

        // Solve the branch for the first iteration that leaves the loop.
        let want_exit = *if_true != block;
        // Constant fast-path feed: stride-0 entries only (see body pass).
        let known: Vec<AbsVal> = pass
            .aff
            .iter()
            .map(|a| a.constant().map(AbsVal::Known).unwrap_or(AbsVal::Unknown))
            .collect();
        let (d0, ds, rel, cond_affs) = match cond {
            Expr::Binary(op, lhs, rhs)
                if matches!(
                    op,
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
                ) =>
            {
                let l = affine_eval(lhs, &pass.aff, &known, &mut self.scratch);
                let r = affine_eval(rhs, &pass.aff, &known, &mut self.scratch);
                let (
                    Aff::Lin {
                        base: lb,
                        stride: ls,
                    },
                    Aff::Lin {
                        base: rb,
                        stride: rs,
                    },
                ) = (l, r)
                else {
                    return None;
                };
                let rel = match op {
                    BinOp::Lt => Rel::Lt,
                    BinOp::Le => Rel::Le,
                    BinOp::Gt => Rel::Gt,
                    BinOp::Ge => Rel::Ge,
                    BinOp::Eq => Rel::Eq,
                    _ => Rel::Ne,
                };
                (lb - rb, ls - rs, rel, vec![l, r])
            }
            _ => {
                let c = affine_eval(cond, &pass.aff, &known, &mut self.scratch);
                let Aff::Lin { base, stride } = c else {
                    return None;
                };
                (base, stride, Rel::Ne, vec![c])
            }
        };
        let k_exit = first_t(d0, ds, rel, want_exit)?;
        if !(0..MAX_SUMMARY_ITERS).contains(&k_exit) {
            return None;
        }
        let k_exit = k_exit as u64;
        let count = k_exit + 1;
        // The linear condition model must hold (wrap-free) through the
        // final decision, else the closed-form trip count is unsound.
        if cond_affs.iter().any(|a| !a.fits_through(k_exit)) {
            return None;
        }

        // All-or-nothing count bookkeeping: overflow aborts before commit.
        let mut reads = vec![0u64; self.design.fifos.len()];
        let mut writes = vec![0u64; self.design.fifos.len()];
        let mut nb_reads = vec![0u64; self.design.fifos.len()];
        let mut nb_writes = vec![0u64; self.design.fifos.len()];
        for e in &pass.events {
            match e {
                Event::FifoRead(f) => reads[f.index()] += 1,
                Event::FifoWrite(f) => writes[f.index()] += 1,
                Event::FifoNbRead(f) => {
                    reads[f.index()] += 1;
                    nb_reads[f.index()] += 1;
                }
                Event::FifoNbWrite(f) => {
                    writes[f.index()] += 1;
                    nb_writes[f.index()] += 1;
                }
                Event::ArrayLoad(_) | Event::ArrayStore(_) => {}
            }
        }
        let mut totals = [
            (&mut reads, &mut self.trace.reads),
            (&mut writes, &mut self.trace.writes),
            (&mut nb_reads, &mut self.trace.nb_reads),
            (&mut nb_writes, &mut self.trace.nb_writes),
        ];
        for (per_iter, total) in &mut totals {
            for f in 0..per_iter.len() {
                per_iter[f] = per_iter[f]
                    .checked_mul(count)
                    .and_then(|n| n.checked_add(total[f]))?;
            }
        }
        if !pass.events.is_empty() && self.stored_events + pass.events.len() > MAX_EVENTS {
            return None;
        }

        // Commit.
        for (per_iter, total) in totals {
            total.copy_from_slice(per_iter);
        }
        for e in &pass.events {
            match e {
                Event::ArrayLoad(a) => self.trace.loads[a.index()] = true,
                Event::ArrayStore(a) => self.trace.stores[a.index()] = true,
                _ => {}
            }
        }
        for &(loc, idx, len, is_load) in &pass.checks {
            match idx {
                Aff::Lin { base, stride } if idx.fits_through(count - 1) => {
                    let last = base + stride * (count - 1) as i128;
                    let (lo, hi) = (base.min(last), base.max(last));
                    if lo < 0 || hi >= len as i128 {
                        self.trace.const_safe = false;
                        let verb = if is_load { "load from" } else { "store to" };
                        self.diag(
                            Rule::ArrayBounds,
                            Severity::Error,
                            loc,
                            format!(
                                "{verb} indices [{lo}, {hi}] of array with {len} elements \
                                 across loop iterations"
                            ),
                        );
                    }
                }
                _ => self.trace.const_safe = false,
            }
        }
        if !pass.events.is_empty() {
            self.stored_events += pass.events.len();
            self.trace.segments.push(Segment::Repeat {
                body: pass.events,
                count,
            });
        }
        let final_env: Vec<AbsVal> = pass.aff.iter().map(|a| a.at(k_exit)).collect();
        Some((exit_block, final_env))
    }

    /// Runs the straight-line body of `block` once in the affine domain.
    /// `None` means an op the summarizer cannot model (AXI, calls) was hit
    /// and the loop must run concretely.
    fn affine_body_pass(&mut self, mid: ModuleId, block: BlockId, seed: &[Aff]) -> Option<SymPass> {
        let module = self.design.module(mid);
        let b = &module.blocks[block.index()];
        let mut aff = seed.to_vec();
        // `known` feeds abs_eval's constant fast path, so it may only hold
        // values that are the same on *every* iteration — stride-0 entries.
        let mut known: Vec<AbsVal> = aff
            .iter()
            .map(|a| a.constant().map(AbsVal::Known).unwrap_or(AbsVal::Unknown))
            .collect();
        let mut events = Vec::new();
        let mut checks = Vec::new();
        let set = |aff: &mut Vec<Aff>, known: &mut Vec<AbsVal>, dst: VarId, v: Aff| {
            aff[dst.index()] = v;
            known[dst.index()] = v.constant().map(AbsVal::Known).unwrap_or(AbsVal::Unknown);
        };
        for (op_idx, sop) in b.ops.iter().enumerate() {
            let loc = Loc::op(mid, block, op_idx);
            match &sop.op {
                Op::Assign { dst, expr } => {
                    let v = affine_eval(expr, &aff, &known, &mut self.scratch);
                    set(&mut aff, &mut known, *dst, v);
                }
                Op::ArrayLoad { dst, array, index } => {
                    events.push(Event::ArrayLoad(*array));
                    let len = self.design.array(*array).init.len() as i64;
                    let idx = affine_eval(index, &aff, &known, &mut self.scratch);
                    checks.push((loc, idx, len, true));
                    let v = match idx.constant() {
                        Some(i) if self.read_only[array.index()] && i >= 0 && i < len => {
                            Aff::known(self.design.array(*array).init[i as usize])
                        }
                        _ => Aff::Unknown,
                    };
                    set(&mut aff, &mut known, *dst, v);
                }
                Op::ArrayStore { array, index, .. } => {
                    events.push(Event::ArrayStore(*array));
                    let len = self.design.array(*array).init.len() as i64;
                    let idx = affine_eval(index, &aff, &known, &mut self.scratch);
                    checks.push((loc, idx, len, false));
                }
                Op::FifoWrite { fifo, .. } => events.push(Event::FifoWrite(*fifo)),
                Op::FifoRead { fifo, dst } => {
                    events.push(Event::FifoRead(*fifo));
                    set(&mut aff, &mut known, *dst, Aff::Unknown);
                }
                Op::FifoNbWrite { fifo, success, .. } => {
                    events.push(Event::FifoNbWrite(*fifo));
                    if let Some(s) = success {
                        set(&mut aff, &mut known, *s, Aff::Unknown);
                    }
                }
                Op::FifoNbRead { fifo, dst, success } => {
                    events.push(Event::FifoNbRead(*fifo));
                    set(&mut aff, &mut known, *dst, Aff::Unknown);
                    if let Some(s) = success {
                        set(&mut aff, &mut known, *s, Aff::Unknown);
                    }
                }
                Op::FifoEmpty { dst, .. } | Op::FifoFull { dst, .. } => {
                    if let Some(d) = dst {
                        set(&mut aff, &mut known, *d, Aff::Unknown);
                    }
                }
                Op::Output { .. } => {}
                // AXI burst tracking is stateful across iterations and
                // calls re-enter whole modules: both run concretely.
                Op::AxiReadReq { .. }
                | Op::AxiRead { .. }
                | Op::AxiWriteReq { .. }
                | Op::AxiWrite { .. }
                | Op::AxiWriteResp { .. }
                | Op::Call { .. } => return None,
            }
        }
        Some(SymPass {
            aff,
            events,
            checks,
        })
    }
}

/// Per-array "no op anywhere stores to it" map: loads from these arrays
/// with constant indices produce known values (testbench input arrays).
pub(crate) fn read_only_arrays(design: &Design) -> Vec<bool> {
    let mut read_only = vec![true; design.arrays.len()];
    for module in &design.modules {
        for block in &module.blocks {
            for sop in &block.ops {
                if let Op::ArrayStore { array, .. } = &sop.op {
                    read_only[array.index()] = false;
                }
            }
        }
    }
    read_only
}

/// Abstractly interprets one task rooted at `root`.
pub(crate) fn trace_task(design: &Design, root: ModuleId, read_only: &[bool]) -> TaskTrace {
    let mut interp = Interp {
        design,
        read_only,
        fuel: TRACE_FUEL,
        trace: TaskTrace::new(design, root),
        read_bursts: vec![std::collections::VecDeque::new(); design.axi_ports.len()],
        write_bursts: vec![std::collections::VecDeque::new(); design.axi_ports.len()],
        axi_poisoned: vec![false; design.axi_ports.len()],
        stored_events: 0,
        scratch: Vec::new(),
    };
    match interp.run_module(root, &[]) {
        Ok(_) => {
            // Unfinished AXI business at task end cannot be certified: the
            // reference simulator may wait on it.
            for (p, q) in interp.write_bursts.iter().enumerate() {
                if q.iter().any(|b| match b.len {
                    Some(len) => b.sent < len,
                    None => false,
                }) && !interp.axi_poisoned[p]
                {
                    interp.trace.const_safe = false;
                }
            }
            for p in 0..design.axi_ports.len() {
                if interp.axi_poisoned[p] {
                    interp.trace.const_safe = false;
                }
            }
        }
        Err(Stop::Uncountable(loc)) => {
            interp.trace.countable = false;
            interp.trace.gave_up_at = Some(loc);
            interp.trace.const_safe = false;
        }
    }
    interp.trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::builder::DesignBuilder;

    fn single_task(design: &Design) -> TaskTrace {
        let ro = read_only_arrays(design);
        trace_task(design, design.top, &ro)
    }

    #[test]
    fn counted_loop_is_countable_with_exact_counts() {
        let mut d = DesignBuilder::new("t");
        let f = d.fifo("q", 2);
        d.function_top("p", |m| {
            m.counted_loop("i", 7, 1, |b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let design = d.build_unchecked();
        let t = single_task(&design);
        assert!(t.countable);
        assert_eq!(t.writes[0], 7);
        assert!(t.const_safe);
    }

    #[test]
    fn branch_on_fifo_data_is_uncountable() {
        let mut d = DesignBuilder::new("t");
        let f = d.fifo("q", 2);
        d.function_top("c", |m| {
            let taken = m.var("taken");
            m.entry(|b| {
                let v = b.fifo_read(f);
                b.assign(taken, Expr::var(v));
            });
            m.loop_block(1, |b| {
                b.exit_loop_if(Expr::var(taken));
            });
        });
        let design = d.build_unchecked();
        let t = single_task(&design);
        assert!(!t.countable);
        assert!(t.gave_up_at.is_some());
    }

    #[test]
    fn read_only_array_loads_stay_countable() {
        let mut d = DesignBuilder::new("t");
        let data = d.array("n", vec![3]);
        let f = d.fifo("q", 4);
        d.function_top("p", |m| {
            let n = m.var("n");
            m.entry(|b| {
                let v = b.array_load(data, Expr::imm(0));
                b.assign(n, Expr::var(v));
            });
            m.counted_loop("i", 3, 1, |b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let design = d.build_unchecked();
        let t = single_task(&design);
        assert!(t.countable);
        assert!(t.const_safe);
        assert_eq!(t.writes[0], 3);
    }

    #[test]
    fn constant_oob_load_is_flagged_once() {
        let mut d = DesignBuilder::new("t");
        let data = d.array("a", vec![1, 2]);
        d.function_top("p", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let _ = b.array_load(data, Expr::imm(9));
            });
        });
        let design = d.build_unchecked();
        let t = single_task(&design);
        assert!(t.countable);
        assert!(!t.const_safe);
        let oob: Vec<_> = t
            .violations
            .iter()
            .filter(|d| d.rule == Rule::ArrayBounds)
            .collect();
        assert_eq!(oob.len(), 1);
        assert_eq!(oob[0].severity, Severity::Error);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut d = DesignBuilder::new("t");
        let f = d.fifo("q", 1);
        d.function_top("p", |m| {
            m.loop_block(1, |b| {
                b.fifo_nb_write_ignored(f, Expr::imm(1));
            });
        });
        let design = d.build_unchecked();
        let t = single_task(&design);
        assert!(!t.countable);
    }

    #[test]
    fn axi_unbalanced_beats_flagged() {
        let mut d = DesignBuilder::new("t");
        let mem = d.array("m", vec![0; 16]);
        let bus = d.axi_port("p0", mem, 4);
        d.function_top("p", |m| {
            m.entry(|b| {
                b.axi_read_req(bus, Expr::imm(0), Expr::imm(2));
                let _ = b.axi_read(bus);
                let _ = b.axi_read(bus);
                let _ = b.axi_read(bus); // one beat too many
            });
        });
        let design = d.build_unchecked();
        let t = single_task(&design);
        assert!(t.countable);
        assert!(!t.const_safe);
        assert!(t.violations.iter().any(|d| d.rule == Rule::AxiProtocol));
    }
}
