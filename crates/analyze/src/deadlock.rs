//! Deadlock certification and channel-cycle classification.
//!
//! A design whose tasks all have exactly enumerable channel traces and no
//! executed non-blocking accesses is a *bounded Kahn process network* with
//! fixed per-process op sequences: each task performs a known sequence of
//! blocking reads and writes on point-to-point FIFOs of fixed capacity.
//! Completion of such a network is *confluent* — it does not depend on how
//! the scheduler interleaves tasks — because commits are monotone: an
//! enabled op stays enabled until its own task commits it (a read only ever
//! gains tokens from the peer; a write only ever gains space). So a single
//! abstract run with any fair schedule decides deadlock-vs-completion for
//! every schedule, including the cycle-accurate reference simulator's.
//!
//! The run itself is untimed: task = pointer into its blocking-op list,
//! FIFO = occupancy counter. A worklist drains each task until it blocks,
//! re-enqueueing the peer of every FIFO it touched. Terminates in
//! O(events + unblocks).

use crate::report::{CycleClass, CycleReport, Diagnostic, Rule, Severity};
use crate::trace::{Event, Segment, TaskTrace};
use omnisim_graph::{component_is_cyclic, strongly_connected_components, NodeId};
use omnisim_ir::{Design, FifoId, Loc, ModuleId};
use std::collections::HashMap;

/// Abstract-run budget: committed channel ops before the network run gives
/// up and the verdict degrades to `Unknown`. Only reachable when the
/// warp below finds no steady-state period to jump over.
const SIM_FUEL: u64 = 4_000_000;

/// A task sits "deep" in a repeat segment when at least this many
/// iterations remain; only then is the per-step cost of state hashing for
/// the warp worth paying.
const WARP_DEPTH: u64 = 64;

/// One blocking channel op of a task's filtered trace.
#[derive(Debug, Clone, Copy)]
struct ChanOp {
    fifo: FifoId,
    is_write: bool,
}

/// A task's blocking-op program, segment-compressed like the trace it
/// came from.
#[derive(Debug)]
enum ChanSeg {
    Op(ChanOp),
    Repeat { body: Vec<ChanOp>, count: u64 },
}

/// A task's position in its program: segment, iteration within a repeat
/// segment, offset within the body.
#[derive(Debug, Clone, Copy, Default)]
struct Pc {
    seg: usize,
    iter: u64,
    pos: usize,
}

fn chan_op(e: &Event) -> Option<ChanOp> {
    match e {
        Event::FifoRead(f) => Some(ChanOp {
            fifo: *f,
            is_write: false,
        }),
        Event::FifoWrite(f) => Some(ChanOp {
            fifo: *f,
            is_write: true,
        }),
        _ => None,
    }
}

fn cur(program: &[ChanSeg], pc: Pc) -> Option<ChanOp> {
    program.get(pc.seg).map(|s| match s {
        ChanSeg::Op(op) => *op,
        ChanSeg::Repeat { body, .. } => body[pc.pos],
    })
}

fn advance(program: &[ChanSeg], pc: &mut Pc) {
    match &program[pc.seg] {
        ChanSeg::Op(_) => pc.seg += 1,
        ChanSeg::Repeat { body, count } => {
            pc.pos += 1;
            if pc.pos == body.len() {
                pc.pos = 0;
                pc.iter += 1;
                if pc.iter == *count {
                    pc.iter = 0;
                    pc.seg += 1;
                }
            }
        }
    }
}

/// Outcome of an abstract network run.
#[derive(Debug, Clone)]
pub(crate) struct NetOutcome {
    /// True when every task drained its trace.
    pub completed: bool,
    /// Unfinished tasks and the op each is stuck on: (task root, fifo,
    /// is_write).
    pub blocked: Vec<(ModuleId, FifoId, bool)>,
}

/// Runs the abstract bounded-KPN network at the given depths. Returns
/// `None` when any task is uncountable or executed a non-blocking access —
/// the network is only exact for blocking traces.
pub(crate) fn simulate(traces: &[TaskTrace], depths: &[usize]) -> Option<NetOutcome> {
    if traces.iter().any(|t| !t.countable || t.executed_nb()) {
        return None;
    }
    let programs: Vec<Vec<ChanSeg>> = traces
        .iter()
        .map(|t| {
            let mut segs = Vec::new();
            for s in &t.segments {
                match s {
                    Segment::Once(e) => {
                        if let Some(op) = chan_op(e) {
                            segs.push(ChanSeg::Op(op));
                        }
                    }
                    Segment::Repeat { body, count } => {
                        let ops: Vec<ChanOp> = body.iter().filter_map(chan_op).collect();
                        if ops.is_empty() || *count == 0 {
                            continue;
                        }
                        if *count == 1 {
                            segs.extend(ops.into_iter().map(ChanSeg::Op));
                        } else {
                            segs.push(ChanSeg::Repeat {
                                body: ops,
                                count: *count,
                            });
                        }
                    }
                }
            }
            segs
        })
        .collect();

    // Peer lookup: which task reads / writes each FIFO (point-to-point is
    // validated, and counts come from exact traces).
    let nf = depths.len();
    let mut writer_of: Vec<Option<usize>> = vec![None; nf];
    let mut reader_of: Vec<Option<usize>> = vec![None; nf];
    for (ti, t) in traces.iter().enumerate() {
        for f in 0..nf {
            if t.writes[f] > 0 {
                writer_of[f] = Some(ti);
            }
            if t.reads[f] > 0 {
                reader_of[f] = Some(ti);
            }
        }
    }

    let mut occupancy = vec![0usize; nf];
    let mut pc = vec![Pc::default(); traces.len()];
    let mut queued = vec![true; traces.len()];
    let mut worklist: Vec<usize> = (0..traces.len()).collect();
    let mut fuel = SIM_FUEL;

    // Steady-state warp. The run is deterministic, and while every task
    // stays inside its current segment its transitions depend on its
    // (segment, offset) position but not on how many repeat iterations
    // remain. So if the projected state — positions, occupancies, queued
    // flags and worklist — recurs, the network is in a periodic regime:
    // the cycle just executed will repeat verbatim until some task
    // exhausts its repeat count. We jump over all but the last safe
    // period at once, which turns O(trip counts) ping-pong between
    // producers and consumers into O(period).
    let mut seen: HashMap<Vec<u64>, Vec<u64>> = HashMap::new();

    while let Some(&peek) = worklist.last() {
        let deep = pc.iter().enumerate().any(|(i, p)| {
            matches!(
                programs[i].get(p.seg),
                Some(ChanSeg::Repeat { count, .. }) if count - p.iter > WARP_DEPTH
            )
        });
        if deep {
            let mut key: Vec<u64> = Vec::with_capacity(nf + 3 * traces.len() + worklist.len() + 1);
            key.extend(occupancy.iter().map(|&o| o as u64));
            for (i, p) in pc.iter().enumerate() {
                key.push(p.seg as u64);
                key.push(((p.pos as u64) << 1) | u64::from(queued[i]));
            }
            key.push(u64::MAX);
            key.extend(worklist.iter().map(|&t| t as u64));
            let iters: Vec<u64> = pc.iter().map(|p| p.iter).collect();
            if let Some(prev) = seen.insert(key, iters.clone()) {
                let mut warp: Option<u64> = None;
                for i in 0..pc.len() {
                    // A task only advances its iteration counter inside a
                    // repeat segment, so a zero delta (checked_div's None)
                    // covers both idle tasks and Once segments.
                    let delta = iters[i] - prev[i];
                    let ChanSeg::Repeat { count, .. } = &programs[i][pc[i].seg] else {
                        continue;
                    };
                    let Some(room) = (count - 1 - iters[i]).checked_div(delta) else {
                        continue;
                    };
                    warp = Some(warp.map_or(room, |w| w.min(room)));
                }
                if let Some(w) = warp.filter(|&w| w >= 1) {
                    for i in 0..pc.len() {
                        pc[i].iter += w * (iters[i] - prev[i]);
                    }
                    seen.clear();
                    continue;
                }
            }
            if seen.len() > 4096 {
                seen.clear();
            }
        }

        let ti = peek;
        worklist.pop();
        queued[ti] = false;
        let program = &programs[ti];
        while let Some(op) = cur(program, pc[ti]) {
            if fuel == 0 {
                return None;
            }
            fuel -= 1;
            let f = op.fifo.index();
            if op.is_write {
                if occupancy[f] >= depths[f] {
                    break;
                }
                occupancy[f] += 1;
                advance(program, &mut pc[ti]);
                if let Some(peer) = reader_of[f] {
                    if peer != ti && !queued[peer] {
                        queued[peer] = true;
                        worklist.push(peer);
                    }
                }
            } else {
                if occupancy[f] == 0 {
                    break;
                }
                occupancy[f] -= 1;
                advance(program, &mut pc[ti]);
                if let Some(peer) = writer_of[f] {
                    if peer != ti && !queued[peer] {
                        queued[peer] = true;
                        worklist.push(peer);
                    }
                }
            }
        }
    }

    let mut blocked = Vec::new();
    for (ti, program) in programs.iter().enumerate() {
        if let Some(op) = cur(program, pc[ti]) {
            blocked.push((traces[ti].root, op.fifo, op.is_write));
        }
    }
    Some(NetOutcome {
        completed: blocked.is_empty(),
        blocked,
    })
}

/// The task-level dataflow graph: one node per task, one edge
/// producer→consumer per FIFO with endpoints in two (or one, for
/// self-loops) task call-closures. Endpoints are *static* — presence of
/// ops, attributed through calls — so uncountable tasks still participate.
pub(crate) struct TaskGraph {
    /// Edges as (producer task index, consumer task index, fifo).
    pub edges: Vec<(usize, usize, FifoId)>,
    pub num_tasks: usize,
}

pub(crate) fn task_graph(design: &Design, tasks: &[ModuleId]) -> TaskGraph {
    let closures = omnisim_ir::validate::call_closures(design);
    let endpoints = omnisim_ir::validate::fifo_endpoints(design);
    // Map each module to the tasks whose closure contains it.
    let mut owner: Vec<Vec<usize>> = vec![Vec::new(); design.modules.len()];
    for (ti, &root) in tasks.iter().enumerate() {
        for m in &closures[root.index()] {
            owner[m.index()].push(ti);
        }
    }
    let mut edges = Vec::new();
    for (f_idx, (writers, readers)) in endpoints.iter().enumerate() {
        for w in writers {
            for r in readers {
                for &wt in &owner[w.index()] {
                    for &rt in &owner[r.index()] {
                        edges.push((wt, rt, FifoId::from_index(f_idx)));
                    }
                }
            }
        }
    }
    TaskGraph {
        edges,
        num_tasks: tasks.len(),
    }
}

/// Classifies every cyclic SCC of the task graph and appends one
/// `deadlock-cycle` diagnostic per cycle.
pub(crate) fn classify_cycles(
    design: &Design,
    tasks: &[ModuleId],
    graph: &TaskGraph,
    outcome: Option<&NetOutcome>,
    diagnostics: &mut Vec<Diagnostic>,
) -> Vec<CycleReport> {
    let node_edges: Vec<(NodeId, NodeId)> = graph
        .edges
        .iter()
        .map(|&(w, r, _)| (NodeId(w as u32), NodeId(r as u32)))
        .collect();
    let sccs = strongly_connected_components(graph.num_tasks, &node_edges);
    let mut reports = Vec::new();
    for component in &sccs {
        if !component_is_cyclic(component, &node_edges) {
            continue;
        }
        let members: Vec<usize> = component.iter().map(|n| n.index()).collect();
        let in_scc = |t: usize| members.contains(&t);
        let mut fifos: Vec<FifoId> = graph
            .edges
            .iter()
            .filter(|&&(w, r, _)| in_scc(w) && in_scc(r))
            .map(|&(_, _, f)| f)
            .collect();
        fifos.sort_unstable_by_key(|f| f.index());
        fifos.dedup();
        let task_roots: Vec<ModuleId> = members.iter().map(|&t| tasks[t]).collect();

        let class = match outcome {
            Some(outcome) if outcome.completed => CycleClass::ProvablySafe,
            Some(outcome) => {
                if outcome
                    .blocked
                    .iter()
                    .any(|(root, _, _)| task_roots.contains(root))
                {
                    CycleClass::ProvablyDeadlocked
                } else {
                    CycleClass::ProvablySafe
                }
            }
            None => CycleClass::DepthDependent,
        };
        let (severity, detail) = match class {
            CycleClass::ProvablySafe => (
                Severity::Info,
                "the declared depths provably break the cycle",
            ),
            CycleClass::ProvablyDeadlocked => (
                Severity::Error,
                "the exact channel traces wedge at the declared depths",
            ),
            CycleClass::DepthDependent => (
                Severity::Warning,
                "completion depends on runtime data or non-blocking outcomes",
            ),
        };
        let names: Vec<&str> = task_roots
            .iter()
            .map(|&m| design.module(m).name.as_str())
            .collect();
        diagnostics.push(Diagnostic {
            rule: Rule::DeadlockCycle,
            severity,
            loc: Loc::module(task_roots[0]),
            fifo: fifos.first().copied(),
            array: None,
            axi: None,
            message: format!(
                "channel cycle through tasks [{}] is {class}: {detail}",
                names.join(", ")
            ),
        });
        reports.push(CycleReport {
            tasks: task_roots,
            fifos,
            class,
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{read_only_arrays, trace_task};
    use omnisim_ir::builder::DesignBuilder;
    use omnisim_ir::Expr;

    fn traces_of(design: &Design) -> (Vec<ModuleId>, Vec<TaskTrace>) {
        let tasks: Vec<ModuleId> = if design.module(design.top).is_dataflow() {
            design.module(design.top).children().to_vec()
        } else {
            vec![design.top]
        };
        let ro = read_only_arrays(design);
        let traces = tasks.iter().map(|&t| trace_task(design, t, &ro)).collect();
        (tasks, traces)
    }

    fn producer_consumer(tokens_written: i64, tokens_read: i64, depth: usize) -> Design {
        let mut d = DesignBuilder::new("pc");
        let f = d.fifo("q", depth);
        let p = d.function("p", |m| {
            m.counted_loop("i", tokens_written, 1, |b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", tokens_read, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        d.build().expect("valid")
    }

    #[test]
    fn balanced_network_completes() {
        let design = producer_consumer(10, 10, 2);
        let (_, traces) = traces_of(&design);
        let outcome = simulate(&traces, &design.fifo_depths()).expect("countable");
        assert!(outcome.completed);
    }

    #[test]
    fn surplus_past_depth_wedges() {
        // 10 writes, 5 reads, depth 4: writer sticks at the 10th write.
        let design = producer_consumer(10, 5, 4);
        let (_, traces) = traces_of(&design);
        let outcome = simulate(&traces, &design.fifo_depths()).expect("countable");
        assert!(!outcome.completed);
        assert_eq!(outcome.blocked.len(), 1);
        assert!(outcome.blocked[0].2, "blocked on a write");
    }

    #[test]
    fn surplus_within_depth_completes() {
        let design = producer_consumer(10, 5, 8);
        let (_, traces) = traces_of(&design);
        let outcome = simulate(&traces, &design.fifo_depths()).expect("countable");
        assert!(outcome.completed);
    }

    #[test]
    fn starved_reader_wedges() {
        let design = producer_consumer(5, 10, 4);
        let (_, traces) = traces_of(&design);
        let outcome = simulate(&traces, &design.fifo_depths()).expect("countable");
        assert!(!outcome.completed);
        assert!(!outcome.blocked[0].2, "blocked on a read");
    }

    /// Request/response cycle: `a` writes req then reads resp; `b` reads
    /// req then writes resp. Well-ordered, completes at depth 1.
    fn request_response(a_reads_first: bool) -> Design {
        let mut d = DesignBuilder::new("rr");
        let req = d.fifo("req", 1);
        let resp = d.fifo("resp", 1);
        let a = d.function("a", |m| {
            m.counted_loop("i", 4, 1, |b| {
                if a_reads_first {
                    let _ = b.fifo_read(resp);
                    b.fifo_write(req, Expr::imm(1));
                } else {
                    b.fifo_write(req, Expr::imm(1));
                    let _ = b.fifo_read(resp);
                }
            });
        });
        let bm = d.function("b", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let _ = b.fifo_read(req);
                b.fifo_write(resp, Expr::imm(2));
            });
        });
        d.dataflow_top("top", [a, bm]);
        d.build().expect("valid")
    }

    #[test]
    fn request_response_cycle_completes_when_ordered() {
        let design = request_response(false);
        let (tasks, traces) = traces_of(&design);
        let outcome = simulate(&traces, &design.fifo_depths()).expect("countable");
        assert!(outcome.completed);
        let graph = task_graph(&design, &tasks);
        let mut diags = Vec::new();
        let cycles = classify_cycles(&design, &tasks, &graph, Some(&outcome), &mut diags);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].class, CycleClass::ProvablySafe);
        assert_eq!(cycles[0].fifos.len(), 2);
    }

    #[test]
    fn request_response_cycle_deadlocks_when_both_read_first() {
        let design = request_response(true);
        let (tasks, traces) = traces_of(&design);
        let outcome = simulate(&traces, &design.fifo_depths()).expect("countable");
        assert!(!outcome.completed);
        let graph = task_graph(&design, &tasks);
        let mut diags = Vec::new();
        let cycles = classify_cycles(&design, &tasks, &graph, Some(&outcome), &mut diags);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].class, CycleClass::ProvablyDeadlocked);
        assert!(diags.iter().any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn nb_traces_refuse_to_simulate() {
        let mut d = DesignBuilder::new("nb");
        let f = d.fifo("q", 1);
        let p = d.function("p", |m| {
            m.entry(|b| {
                b.fifo_nb_write_ignored(f, Expr::imm(1));
            });
        });
        let c = d.function("c", |m| {
            m.entry(|b| {
                let _ = b.fifo_nb_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().expect("valid");
        let (_, traces) = traces_of(&design);
        assert!(simulate(&traces, &design.fifo_depths()).is_none());
    }
}
