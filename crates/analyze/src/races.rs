//! Shared-resource race detection.
//!
//! Dataflow tasks run concurrently; the engines give no ordering guarantee
//! between them except through FIFO tokens. Two tasks touching the same
//! array — at least one storing — therefore read/write in an unspecified
//! order, and two tasks driving the same AXI port violate the engines'
//! private-port assumption outright (see ROADMAP "shared-resource
//! realism").
//!
//! A FIFO token *is* an ordering edge, though: the first value task A
//! writes into a FIFO is the first value task B reads out of it, so every
//! access A makes before its first write happens-before every access B
//! makes after its first read. When both traces are exact and that
//! happens-before relation covers all conflicting accesses, the pair is
//! ordered and no diagnostic fires.

use crate::report::{Diagnostic, Rule, Severity};
use crate::trace::{Event, Segment, TaskTrace};
use omnisim_ir::{ArrayId, Design, Loc, ModuleId, Op};

/// Appends `shared-array` and `shared-axi` diagnostics.
pub(crate) fn detect_races(
    design: &Design,
    tasks: &[ModuleId],
    traces: &[TaskTrace],
    diagnostics: &mut Vec<Diagnostic>,
) {
    let closures = omnisim_ir::validate::call_closures(design);

    // Static per-task access sets (through calls): loads, stores, AXI use.
    let na = design.arrays.len();
    let np = design.axi_ports.len();
    let mut loads = vec![vec![false; na]; tasks.len()];
    let mut stores = vec![vec![false; na]; tasks.len()];
    let mut axi = vec![vec![false; np]; tasks.len()];
    for (ti, &root) in tasks.iter().enumerate() {
        if traces[ti].countable {
            // Exact traces know which accesses actually execute.
            loads[ti].copy_from_slice(&traces[ti].loads);
            stores[ti].copy_from_slice(&traces[ti].stores);
            axi[ti].copy_from_slice(&traces[ti].axi_used);
            continue;
        }
        for m in &closures[root.index()] {
            for block in &design.module(*m).blocks {
                for sop in &block.ops {
                    match &sop.op {
                        Op::ArrayLoad { array, .. } => loads[ti][array.index()] = true,
                        Op::ArrayStore { array, .. } => stores[ti][array.index()] = true,
                        Op::AxiReadReq { bus, .. }
                        | Op::AxiRead { bus, .. }
                        | Op::AxiWriteReq { bus, .. }
                        | Op::AxiWrite { bus, .. }
                        | Op::AxiWriteResp { bus } => axi[ti][bus.index()] = true,
                        _ => {}
                    }
                }
            }
        }
    }

    for a_idx in 0..na {
        let array = ArrayId::from_index(a_idx);
        let touching: Vec<usize> = (0..tasks.len())
            .filter(|&ti| loads[ti][a_idx] || stores[ti][a_idx])
            .collect();
        for (i, &t1) in touching.iter().enumerate() {
            for &t2 in &touching[i + 1..] {
                let conflicting = stores[t1][a_idx] || stores[t2][a_idx];
                if !conflicting {
                    continue;
                }
                if fifo_ordered(traces, t1, t2, array) || fifo_ordered(traces, t2, t1, array) {
                    continue;
                }
                diagnostics.push(Diagnostic {
                    rule: Rule::SharedArray,
                    severity: Severity::Warning,
                    loc: Loc::module(tasks[t1]),
                    fifo: None,
                    array: Some(array),
                    axi: None,
                    message: format!(
                        "tasks {} and {} access array {} concurrently (at least one stores) with no fifo ordering between the accesses",
                        design.module(tasks[t1]).name,
                        design.module(tasks[t2]).name,
                        design.array(array).name,
                    ),
                });
            }
        }
    }

    // `p_idx` indexes the inner dimension of `axi`, not a single slice.
    #[allow(clippy::needless_range_loop)]
    for p_idx in 0..np {
        let drivers: Vec<usize> = (0..tasks.len()).filter(|&ti| axi[ti][p_idx]).collect();
        if drivers.len() >= 2 {
            let names: Vec<&str> = drivers
                .iter()
                .map(|&ti| design.module(tasks[ti]).name.as_str())
                .collect();
            diagnostics.push(Diagnostic {
                rule: Rule::SharedAxi,
                severity: Severity::Error,
                loc: Loc::module(tasks[drivers[0]]),
                fifo: None,
                array: None,
                axi: Some(omnisim_ir::AxiId::from_index(p_idx)),
                message: format!(
                    "axi port {} is driven by several tasks [{}]; ports are private to one task",
                    design.axi_port(omnisim_ir::AxiId::from_index(p_idx)).name,
                    names.join(", ")
                ),
            });
        }
    }
}

/// True when every access of `first` to `array` provably happens before
/// every access of `second`: both traces are exact and some FIFO carries a
/// token from `first` (written after all its accesses... precisely: all of
/// `first`'s accesses precede its first write to the FIFO) to `second`
/// (all of whose accesses follow its first read from it).
fn fifo_ordered(traces: &[TaskTrace], first: usize, second: usize, array: ArrayId) -> bool {
    let a = &traces[first];
    let b = &traces[second];
    if !a.countable || !b.countable {
        return false;
    }
    let nf = a.reads.len();
    for f in 0..nf {
        // Only blocking tokens order reliably; non-blocking ops may drop.
        if a.writes[f] == 0 || b.reads[f] == 0 || a.nb_writes[f] > 0 || b.nb_reads[f] > 0 {
            continue;
        }
        let first_write = first_pos(a, |e| matches!(e, Event::FifoWrite(x) if x.index() == f));
        let first_read = first_pos(b, |e| matches!(e, Event::FifoRead(x) if x.index() == f));
        let (Some(w), Some(r)) = (first_write, first_read) else {
            continue;
        };
        if all_accesses_before(a, array, w) && all_accesses_after(b, array, r) {
            return true;
        }
    }
    false
}

fn touches(e: &Event, array: ArrayId) -> bool {
    matches!(e, Event::ArrayLoad(a) | Event::ArrayStore(a) if *a == array)
}

/// Position of the dynamically first matching event as (segment index,
/// offset within the segment body). Segments and bodies are in program
/// order, so the first textual match in a repeat is its iteration-0
/// instance — the dynamically first one.
fn first_pos(t: &TaskTrace, pred: impl Fn(&Event) -> bool) -> Option<(usize, usize)> {
    for (s, seg) in t.segments.iter().enumerate() {
        match seg {
            Segment::Once(e) => {
                if pred(e) {
                    return Some((s, 0));
                }
            }
            Segment::Repeat { body, count } => {
                if *count == 0 {
                    continue;
                }
                if let Some(p) = body.iter().position(&pred) {
                    return Some((s, p));
                }
            }
        }
    }
    None
}

/// True when every access to `array` happens strictly before the first
/// dynamic instance of the event at `w`. An access inside the same repeat
/// segment as `w` only qualifies when the repeat runs once: at any later
/// iteration the access instance follows `w`'s iteration-0 instance.
fn all_accesses_before(t: &TaskTrace, array: ArrayId, w: (usize, usize)) -> bool {
    for (s, seg) in t.segments.iter().enumerate() {
        match seg {
            Segment::Once(e) => {
                if touches(e, array) && s >= w.0 {
                    return false;
                }
            }
            Segment::Repeat { body, count } => {
                if *count == 0 {
                    continue;
                }
                for (p, e) in body.iter().enumerate() {
                    if !touches(e, array) {
                        continue;
                    }
                    if s > w.0 || (s == w.0 && !(*count == 1 && p < w.1)) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// True when every access to `array` happens strictly after the first
/// dynamic instance of the event at `r`. Inside the same repeat segment a
/// later offset suffices for any count: the iteration-0 access already
/// follows the iteration-0 instance of `r`, and later iterations only move
/// further past it.
fn all_accesses_after(t: &TaskTrace, array: ArrayId, r: (usize, usize)) -> bool {
    for (s, seg) in t.segments.iter().enumerate() {
        match seg {
            Segment::Once(e) => {
                if touches(e, array) && s <= r.0 {
                    return false;
                }
            }
            Segment::Repeat { body, count } => {
                if *count == 0 {
                    continue;
                }
                for (p, e) in body.iter().enumerate() {
                    if !touches(e, array) {
                        continue;
                    }
                    if s < r.0 || (s == r.0 && p <= r.1) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{read_only_arrays, trace_task};
    use omnisim_ir::builder::DesignBuilder;
    use omnisim_ir::Expr;

    fn race_diags(design: &Design) -> Vec<Diagnostic> {
        let tasks: Vec<ModuleId> = if design.module(design.top).is_dataflow() {
            design.module(design.top).children().to_vec()
        } else {
            vec![design.top]
        };
        let ro = read_only_arrays(design);
        let traces: Vec<_> = tasks.iter().map(|&t| trace_task(design, t, &ro)).collect();
        let mut diags = Vec::new();
        detect_races(design, &tasks, &traces, &mut diags);
        diags
    }

    #[test]
    fn unsynchronized_shared_store_fires() {
        let mut d = DesignBuilder::new("race");
        let shared = d.zero_array("buf", 8);
        let f = d.fifo("q", 2);
        let w = d.function("w", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                b.array_store(shared, i, Expr::imm(1));
                b.fifo_write(f, Expr::imm(0));
            });
        });
        let r = d.function("r", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let _ = b.fifo_read(f);
                let i = b.var_expr("i");
                let _ = b.array_load(shared, i);
            });
        });
        d.dataflow_top("top", [w, r]);
        let design = d.build().expect("valid");
        let diags = race_diags(&design);
        // Writer stores interleave with reader loads: no single-token
        // ordering covers all accesses.
        assert!(diags.iter().any(|d| d.rule == Rule::SharedArray));
    }

    #[test]
    fn fifo_ordered_handoff_is_suppressed() {
        // Writer fills the array, then signals; reader waits, then reads.
        let mut d = DesignBuilder::new("sync");
        let shared = d.zero_array("buf", 8);
        let done = d.fifo("done", 1);
        let w = d.function("w", |m| {
            m.counted_loop("i", 8, 1, |b| {
                let i = b.var_expr("i");
                b.array_store(shared, i, Expr::imm(1));
            });
            m.exit(|b| {
                b.fifo_write(done, Expr::imm(1));
            });
        });
        let r = d.function("r", |m| {
            m.entry(|b| {
                let _ = b.fifo_read(done);
            });
            m.counted_loop("i", 8, 1, |b| {
                let i = b.var_expr("i");
                let _ = b.array_load(shared, i);
            });
        });
        d.dataflow_top("top", [w, r]);
        let design = d.build().expect("valid");
        let diags = race_diags(&design);
        assert!(
            diags.iter().all(|d| d.rule != Rule::SharedArray),
            "handoff through a fifo token is ordered: {diags:?}"
        );
    }

    #[test]
    fn read_only_sharing_is_fine() {
        let mut d = DesignBuilder::new("ro");
        let table = d.array("lut", vec![1, 2, 3, 4]);
        let f1 = d.fifo("a", 4);
        let f2 = d.fifo("b", 4);
        let t1 = d.function("t1", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(table, i);
                b.fifo_write(f1, Expr::var(v));
            });
        });
        let t2 = d.function("t2", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(table, i);
                b.fifo_write(f2, Expr::var(v));
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let _ = b.fifo_read(f1);
                let _ = b.fifo_read(f2);
            });
        });
        d.dataflow_top("top", [t1, t2, c]);
        let design = d.build().expect("valid");
        let diags = race_diags(&design);
        assert!(diags.iter().all(|d| d.rule != Rule::SharedArray));
    }

    #[test]
    fn shared_axi_port_is_an_error() {
        let mut d = DesignBuilder::new("axi2");
        let mem = d.zero_array("m", 16);
        let bus = d.axi_port("p0", mem, 4);
        let a = d.function("a", |m| {
            m.entry(|b| {
                b.axi_read_req(bus, Expr::imm(0), Expr::imm(1));
                let _ = b.axi_read(bus);
            });
        });
        let bm = d.function("b", |m| {
            m.entry(|b| {
                b.axi_read_req(bus, Expr::imm(4), Expr::imm(1));
                let _ = b.axi_read(bus);
            });
        });
        d.dataflow_top("top", [a, bm]);
        let design = d.build().expect("valid");
        let diags = race_diags(&design);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::SharedAxi && d.severity == Severity::Error));
    }
}
