//! Sound static analysis for validated OmniSim designs.
//!
//! The analyzer answers three questions about a [`Design`] without running
//! any timed simulation:
//!
//! 1. **Will it deadlock?** Each concurrent task is abstractly interpreted
//!    into its exact channel-operation trace when control flow is
//!    compile-time countable. Because a dataflow design whose tasks all
//!    have countable traces (and execute no non-blocking accesses) is a
//!    bounded Kahn process network, completion is schedule-independent: a
//!    single untimed worklist run of the abstract network decides it for
//!    every legal interleaving. The result is a
//!    [`DeadlockVerdict`]: `CertifiedFree`, `CertifiedDeadlock`, or
//!    `Unknown` when the design is not countable. Cyclic components of
//!    the task/FIFO graph are additionally classified per-cycle
//!    ([`CycleReport`]).
//!
//! 2. **How deep must each FIFO be?** Exact producer/consumer token
//!    counts yield a per-FIFO depth lower bound ([`DepthBound`]) that is
//!    *necessary for completion* — any depth assignment under which the
//!    design completes satisfies it. The differential fuzzer checks this
//!    bound never exceeds the certified `min_depths` minimum.
//!
//! 3. **Is shared state ordered?** Tasks touching the same array with at
//!    least one store — or the same AXI port at all — are flagged unless
//!    a FIFO token provably orders the accesses.
//!
//! On top of these, structural lints report dead code, lopsided FIFO
//! usage, elided status checks, silently dropped non-blocking writes and
//! statically out-of-bounds accesses. Everything is a typed
//! [`Diagnostic`] carrying the same [`omnisim_ir::Loc`] location type
//! that `ir::validate` errors use.
//!
//! The whole pass is linear in design size plus the abstract traces
//! (fuel-capped), allocates nothing proportional to simulated time, and
//! is orders of magnitude faster than even one cold `rtl` simulation —
//! fast enough to run on every generated design in the fuzzer and on
//! every request in the serving tier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bounds;
mod deadlock;
mod lints;
mod races;
pub mod report;
mod trace;
pub mod wire;

pub use report::{
    AnalysisReport, CycleClass, CycleReport, DeadlockVerdict, DepthBound, Diagnostic, Rule,
    Severity,
};

use omnisim_ir::{Design, ModuleId};

/// Runs every analysis pass over a validated design.
///
/// The design must have passed [`omnisim_ir::validate::validate`]; the
/// analyzer assumes well-formed references and panics otherwise (the same
/// contract every simulation backend has).
pub fn analyze(design: &Design) -> AnalysisReport {
    let tasks: Vec<ModuleId> = if design.module(design.top).is_dataflow() {
        design.module(design.top).children().to_vec()
    } else {
        vec![design.top]
    };

    let read_only = trace::read_only_arrays(design);
    let traces: Vec<trace::TaskTrace> = tasks
        .iter()
        .map(|&t| trace::trace_task(design, t, &read_only))
        .collect();
    let countable_tasks = traces.iter().filter(|t| t.countable).count();

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    // Exact fault findings from the traces (deduped per rule+loc there).
    for t in &traces {
        for d in &t.violations {
            if !diagnostics
                .iter()
                .any(|x| x.rule == d.rule && x.loc == d.loc)
            {
                diagnostics.push(d.clone());
            }
        }
    }

    lints::run_lints(design, &tasks, &mut diagnostics);
    races::detect_races(design, &tasks, &traces, &mut diagnostics);
    let depth_bounds = bounds::depth_bounds(design, &tasks, &traces, &mut diagnostics);

    let graph = deadlock::task_graph(design, &tasks);
    let depths: Vec<usize> = design.fifos.iter().map(|f| f.depth).collect();
    let outcome = deadlock::simulate(&traces, &depths);
    let cycles =
        deadlock::classify_cycles(design, &tasks, &graph, outcome.as_ref(), &mut diagnostics);

    // Certification needs more than a decided network run: the reference
    // simulator can fault on out-of-bounds accesses, so `CertifiedFree`
    // additionally requires every trace to be provably fault-free.
    let all_const_safe = traces.iter().all(|t| t.const_safe);
    let verdict = match &outcome {
        Some(net) if all_const_safe => {
            if net.completed {
                DeadlockVerdict::CertifiedFree
            } else {
                DeadlockVerdict::CertifiedDeadlock
            }
        }
        _ => DeadlockVerdict::Unknown,
    };
    if verdict == DeadlockVerdict::CertifiedDeadlock {
        let net = outcome.as_ref().expect("deadlock verdict implies a run");
        let stuck: Vec<String> = net
            .blocked
            .iter()
            .map(|&(root, fifo, is_write)| {
                format!(
                    "{} {} {}",
                    design.module(root).name,
                    if is_write { "writing" } else { "reading" },
                    design.fifo(fifo).name
                )
            })
            .collect();
        diagnostics.push(Diagnostic {
            rule: Rule::Deadlock,
            severity: Severity::Error,
            loc: omnisim_ir::Loc::NONE,
            fifo: net.blocked.first().map(|&(_, f, _)| f),
            array: None,
            axi: None,
            message: format!(
                "the design provably never completes; blocked: {}",
                stuck.join(", ")
            ),
        });
    }

    // Stable output order: rule catalog order, then location.
    diagnostics.sort_by_key(|d| {
        (
            Rule::ALL.iter().position(|&r| r == d.rule),
            d.loc.module.map(|m| m.0),
            d.loc.block.map(|b| b.0),
            d.loc.op,
        )
    });

    AnalysisReport {
        verdict,
        cycles,
        depth_bounds,
        diagnostics,
        tasks: tasks.len(),
        countable_tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::builder::DesignBuilder;
    use omnisim_ir::Expr;

    #[test]
    fn balanced_pipeline_is_certified_free() {
        let mut d = DesignBuilder::new("ok");
        let f = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.counted_loop("i", 8, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(f, i);
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", 8, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().expect("valid");
        let report = analyze(&design);
        assert_eq!(report.verdict, DeadlockVerdict::CertifiedFree);
        assert_eq!(report.tasks, 2);
        assert_eq!(report.countable_tasks, 2);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn starved_reader_is_certified_deadlock() {
        let mut d = DesignBuilder::new("dead");
        let f = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(f, i);
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", 5, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().expect("valid");
        let report = analyze(&design);
        assert_eq!(report.verdict, DeadlockVerdict::CertifiedDeadlock);
        assert!(report.by_rule(Rule::Deadlock).count() == 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn data_dependent_design_is_unknown() {
        let mut d = DesignBuilder::new("unk");
        let f = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(f, i);
            });
        });
        let c = d.function("c", |m| {
            m.loop_block(1, |b| {
                let v = b.fifo_read(f);
                b.exit_loop_if(Expr::var(v).ge(Expr::imm(3)));
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().expect("valid");
        let report = analyze(&design);
        assert_eq!(report.verdict, DeadlockVerdict::Unknown);
        assert_eq!(report.countable_tasks, 1);
    }

    #[test]
    fn report_survives_the_wire() {
        let mut d = DesignBuilder::new("wired");
        let f = d.fifo("q", 1);
        let p = d.function("p", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(f, i);
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().expect("valid");
        let report = analyze(&design);
        let bytes = wire::encode_report(&report);
        assert_eq!(wire::decode_report(&bytes).expect("decodes"), report);
    }
}
