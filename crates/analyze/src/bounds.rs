//! Static FIFO depth lower bounds.
//!
//! Every bound here is *necessary for completion*: if the design completes
//! under any schedule at depths `d`, then `d[f] >= bound[f]`. That makes
//! the bounds directly comparable to the DSE's certified `min_depths`
//! minima — a sound bound can never exceed a certified minimum, which the
//! differential fuzzer checks across all generator presets.
//!
//! Two sound arguments are used:
//!
//! * **Token surplus.** With exact endpoint traces, a FIFO written `W`
//!   times and read `R < W` times holds `W − R` tokens when the design
//!   completes; a smaller FIFO can never accept them all. (This is
//!   timing-independent: total counts do not depend on the schedule.)
//! * **Self-loop prefix occupancy.** When the *same task* owns both ends
//!   of a FIFO, its sequential trace fixes the interleaving of that FIFO's
//!   ops — but scheduled timing can commit a program-later read before a
//!   program-earlier write has committed (offset overlap inside a block,
//!   iteration overlap inside a pipelined loop), which would let the FIFO
//!   run shallower than the program-order prefix suggests. The prefix
//!   bound is therefore only applied when the structure forbids such
//!   reordering: no block touching the FIFO is pipelined, and no block
//!   mixes reads and writes of it. Blocks execute strictly one after
//!   another, so at every block boundary the occupancy equals the
//!   program-order prefix, and the peak prefix is a true lower bound.

use crate::report::{DepthBound, Diagnostic, Rule, Severity};
use crate::trace::{Event, Segment, TaskTrace};
use omnisim_ir::{Design, FifoId, Loc, ModuleId, Op};

/// Computes per-FIFO lower bounds and appends `token-imbalance` /
/// `fifo-depth-bound` diagnostics.
pub(crate) fn depth_bounds(
    design: &Design,
    tasks: &[ModuleId],
    traces: &[TaskTrace],
    diagnostics: &mut Vec<Diagnostic>,
) -> Vec<DepthBound> {
    let closures = omnisim_ir::validate::call_closures(design);
    let endpoints = omnisim_ir::validate::fifo_endpoints(design);

    // Which tasks statically touch each FIFO (through calls).
    let nf = design.fifos.len();
    let mut touching: Vec<Vec<usize>> = vec![Vec::new(); nf];
    for (ti, &root) in tasks.iter().enumerate() {
        for m in &closures[root.index()] {
            for (f_idx, (writers, readers)) in endpoints.iter().enumerate() {
                if (writers.contains(m) || readers.contains(m)) && !touching[f_idx].contains(&ti) {
                    touching[f_idx].push(ti);
                }
            }
        }
    }

    let mut bounds = Vec::with_capacity(nf);
    for (f_idx, touchers) in touching.iter().enumerate() {
        let fid = FifoId::from_index(f_idx);
        let exact = touchers.iter().all(|&ti| {
            traces[ti].countable
                && traces[ti].nb_reads[f_idx] == 0
                && traces[ti].nb_writes[f_idx] == 0
        });
        if !exact {
            bounds.push(DepthBound {
                bound: 1,
                exact: false,
            });
            continue;
        }
        let writes: u64 = touchers.iter().map(|&ti| traces[ti].writes[f_idx]).sum();
        let reads: u64 = touchers.iter().map(|&ti| traces[ti].reads[f_idx]).sum();
        let mut bound = 1u64.max(writes.saturating_sub(reads));

        if reads > writes {
            diagnostics.push(Diagnostic {
                rule: Rule::TokenImbalance,
                severity: Severity::Error,
                loc: Loc::NONE,
                fifo: Some(fid),
                array: None,
                axi: None,
                message: format!(
                    "fifo {fid} is read {reads} times but written only {writes} times: the reader starves"
                ),
            });
        } else if writes > reads && reads > 0 {
            diagnostics.push(Diagnostic {
                rule: Rule::TokenImbalance,
                severity: Severity::Info,
                loc: Loc::NONE,
                fifo: Some(fid),
                array: None,
                axi: None,
                message: format!(
                    "fifo {fid} retains {} tokens at completion (written {writes}, read {reads})",
                    writes - reads
                ),
            });
        }

        // Self-loop refinement: one task owns both ends.
        if let [ti] = touchers[..] {
            if traces[ti].writes[f_idx] > 0
                && traces[ti].reads[f_idx] > 0
                && self_loop_commit_order_is_program_order(design, &closures, tasks[ti], fid)
            {
                bound = bound.max(prefix_peak(&traces[ti].segments, fid));
            }
        }

        let bound = usize::try_from(bound).unwrap_or(usize::MAX);
        if bound > design.fifo(fid).depth {
            diagnostics.push(Diagnostic {
                rule: Rule::FifoDepthBound,
                severity: Severity::Error,
                loc: Loc::NONE,
                fifo: Some(fid),
                array: None,
                axi: None,
                message: format!(
                    "fifo {fid} needs depth >= {bound} to complete but declares {}",
                    design.fifo(fid).depth
                ),
            });
        }
        bounds.push(DepthBound { bound, exact });
    }
    bounds
}

/// Max over the program-order prefix of (writes so far − reads so far).
///
/// Repeat segments are handled in closed form: the prefix value after
/// iteration `t` is `occ + t·δ` (δ the body's net effect), and the peak
/// inside iteration `t` is that plus the body's own intra-iteration prefix
/// peak. Both are linear in `t`, so the maximum sits at an endpoint.
fn prefix_peak(segments: &[Segment], fifo: FifoId) -> u64 {
    let step = |occ: &mut i128, e: &Event| match e {
        Event::FifoWrite(f) if *f == fifo => *occ += 1,
        Event::FifoRead(f) if *f == fifo => *occ -= 1,
        _ => {}
    };
    let mut occ = 0i128;
    let mut peak = 0i128;
    for seg in segments {
        match seg {
            Segment::Once(e) => {
                step(&mut occ, e);
                peak = peak.max(occ);
            }
            Segment::Repeat { body, count } => {
                if *count == 0 || body.is_empty() {
                    continue;
                }
                let mut intra = 0i128;
                let mut intra_peak = i128::MIN;
                for e in body {
                    step(&mut intra, e);
                    intra_peak = intra_peak.max(intra);
                }
                let delta = intra;
                let t_max = if delta > 0 { *count as i128 - 1 } else { 0 };
                peak = peak.max(occ + t_max * delta + intra_peak);
                occ += *count as i128 * delta;
            }
        }
    }
    u64::try_from(peak.max(0)).unwrap_or(u64::MAX)
}

/// True when scheduled timing cannot commit this FIFO's ops out of program
/// order within the owning task: every block (in the task's call closure)
/// touching the FIFO is non-pipelined and contains only reads or only
/// writes of it.
fn self_loop_commit_order_is_program_order(
    design: &Design,
    closures: &[Vec<ModuleId>],
    root: ModuleId,
    fifo: FifoId,
) -> bool {
    for m in &closures[root.index()] {
        for block in &design.module(*m).blocks {
            let mut reads = false;
            let mut writes = false;
            for sop in &block.ops {
                match &sop.op {
                    Op::FifoRead { fifo: f, .. } | Op::FifoNbRead { fifo: f, .. } if *f == fifo => {
                        reads = true;
                    }
                    Op::FifoWrite { fifo: f, .. } | Op::FifoNbWrite { fifo: f, .. }
                        if *f == fifo =>
                    {
                        writes = true;
                    }
                    _ => {}
                }
            }
            if (reads || writes) && block.schedule.ii.is_some() {
                return false;
            }
            if reads && writes {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{read_only_arrays, trace_task};
    use omnisim_ir::builder::DesignBuilder;
    use omnisim_ir::Expr;

    fn analyze_bounds(design: &Design) -> (Vec<DepthBound>, Vec<Diagnostic>) {
        let tasks: Vec<ModuleId> = if design.module(design.top).is_dataflow() {
            design.module(design.top).children().to_vec()
        } else {
            vec![design.top]
        };
        let ro = read_only_arrays(design);
        let traces: Vec<_> = tasks.iter().map(|&t| trace_task(design, t, &ro)).collect();
        let mut diags = Vec::new();
        let bounds = depth_bounds(design, &tasks, &traces, &mut diags);
        (bounds, diags)
    }

    #[test]
    fn surplus_gives_exact_bound() {
        let mut d = DesignBuilder::new("s");
        let f = d.fifo("q", 8);
        let p = d.function("p", |m| {
            m.counted_loop("i", 10, 1, |b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().expect("valid");
        let (bounds, diags) = analyze_bounds(&design);
        assert_eq!(bounds[0].bound, 6);
        assert!(bounds[0].exact);
        assert!(diags.iter().any(|d| d.rule == Rule::TokenImbalance));
    }

    #[test]
    fn balanced_fifo_bounds_to_floor() {
        let mut d = DesignBuilder::new("b");
        let f = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.counted_loop("i", 6, 1, |b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", 6, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().expect("valid");
        let (bounds, _) = analyze_bounds(&design);
        assert_eq!(bounds[0].bound, 1);
        assert!(bounds[0].exact);
    }

    #[test]
    fn self_loop_burst_needs_full_burst_depth() {
        // One task writes 5 tokens into its own FIFO in one (non-pipelined)
        // loop, then reads all 5 back in a later loop: depth must be 5.
        let mut d = DesignBuilder::new("burst");
        let f = d.fifo("spill", 5);
        d.function_top("t", |m| {
            m.counted_loop("i", 5, 1, |b| {
                b.fifo_write(f, Expr::imm(7));
            });
            m.counted_loop("j", 5, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        let design = d.build().expect("valid");
        let (bounds, diags) = analyze_bounds(&design);
        assert_eq!(bounds[0].bound, 5);
        assert!(diags.iter().all(|d| d.rule != Rule::FifoDepthBound));
    }

    #[test]
    fn self_loop_bound_exceeding_depth_is_flagged() {
        let mut d = DesignBuilder::new("burst");
        let f = d.fifo("spill", 3);
        d.function_top("t", |m| {
            m.counted_loop("i", 5, 1, |b| {
                b.fifo_write(f, Expr::imm(7));
            });
            m.counted_loop("j", 5, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        let design = d.build().expect("valid");
        let (bounds, diags) = analyze_bounds(&design);
        assert_eq!(bounds[0].bound, 5);
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::FifoDepthBound && d.severity == Severity::Error));
    }

    #[test]
    fn pipelined_self_loop_declines_prefix_bound() {
        // Same shape but the loops are pipelined (ii < latency): the prefix
        // argument is unsound there, so only the surplus bound applies.
        let mut d = DesignBuilder::new("burst");
        let f = d.fifo("spill", 1);
        d.function_top("t", |m| {
            m.counted_loop("i", 5, 1, |b| {
                b.latency(3).pipeline(1);
                b.fifo_write(f, Expr::imm(7));
            });
            m.counted_loop("j", 5, 1, |b| {
                b.latency(3).pipeline(1);
                let _ = b.fifo_read(f);
            });
        });
        let design = d.build().expect("valid");
        let (bounds, _) = analyze_bounds(&design);
        assert_eq!(bounds[0].bound, 1, "no surplus, prefix bound declined");
    }

    #[test]
    fn uncountable_endpoint_falls_back_to_floor() {
        // The producer's write count depends on a value read from `ctl`,
        // so its trace is uncountable and the bound degrades to the floor.
        let mut d = DesignBuilder::new("u");
        let f = d.fifo("q", 2);
        let ctl = d.fifo("ctl", 2);
        let p = d.function("p", |m| {
            let n = m.var("n");
            let i = m.var("i");
            m.entry(|b| {
                let v = b.fifo_read(ctl);
                b.assign(n, Expr::var(v));
                b.assign(i, Expr::imm(0));
            });
            m.loop_block(1, |b| {
                b.fifo_write(f, Expr::imm(1));
                b.assign(i, Expr::var(i).add(Expr::imm(1)));
                b.exit_loop_if(Expr::var(i).ge(Expr::var(n)));
            });
        });
        let c = d.function("c", |m| {
            m.entry(|b| {
                b.fifo_write(ctl, Expr::imm(3));
            });
            m.counted_loop("i", 3, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().expect("valid");
        let (bounds, _) = analyze_bounds(&design);
        assert_eq!(bounds[0].bound, 1);
        assert!(!bounds[0].exact);
    }
}
