//! Structural lints: dead code, FIFO usage, elided checks, silent drops
//! and statically out-of-bounds accesses.
//!
//! These rules were previously folded into ad-hoc checks around
//! `ir::validate`; here they are proper diagnostics with locations and
//! entities. Everything in this pass is purely syntactic — no abstract
//! interpretation — so it runs on uncountable designs too.

use crate::report::{Diagnostic, Rule, Severity};
use omnisim_ir::{Design, Expr, FifoId, Loc, ModuleId, Op};

/// Appends `dead-code`, `fifo-usage`, `elided-check`, `nb-silent-drop` and
/// static `array-bounds` diagnostics.
pub(crate) fn run_lints(design: &Design, tasks: &[ModuleId], diagnostics: &mut Vec<Diagnostic>) {
    unreachable_blocks(design, diagnostics);
    dead_modules(design, tasks, diagnostics);
    fifo_usage(design, diagnostics);
    op_lints(design, diagnostics);
    unwritten_outputs(design, diagnostics);
}

/// Blocks not reachable from the entry block by terminator successors.
fn unreachable_blocks(design: &Design, diagnostics: &mut Vec<Diagnostic>) {
    for (m_idx, module) in design.modules.iter().enumerate() {
        if module.blocks.is_empty() {
            continue;
        }
        let mid = ModuleId::from_index(m_idx);
        let mut seen = vec![false; module.blocks.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for succ in module.blocks[b].terminator.successors() {
                let s = succ.index();
                if s < seen.len() && !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        for (b_idx, reachable) in seen.iter().enumerate() {
            if !reachable {
                diagnostics.push(Diagnostic {
                    rule: Rule::DeadCode,
                    severity: Severity::Warning,
                    loc: Loc::block(mid, omnisim_ir::BlockId::from_index(b_idx)),
                    fifo: None,
                    array: None,
                    axi: None,
                    message: format!(
                        "block bb{b_idx} of {} is unreachable from the entry block",
                        module.name
                    ),
                });
            }
        }
    }
}

/// Modules never reached from the top: not the top itself, not a dataflow
/// child, not in any task's call closure.
fn dead_modules(design: &Design, tasks: &[ModuleId], diagnostics: &mut Vec<Diagnostic>) {
    let closures = omnisim_ir::validate::call_closures(design);
    let mut live = vec![false; design.modules.len()];
    live[design.top.index()] = true;
    for &t in tasks {
        for m in &closures[t.index()] {
            live[m.index()] = true;
        }
    }
    for (m_idx, is_live) in live.iter().enumerate() {
        if !is_live {
            diagnostics.push(Diagnostic {
                rule: Rule::DeadCode,
                severity: Severity::Warning,
                loc: Loc::module(ModuleId::from_index(m_idx)),
                fifo: None,
                array: None,
                axi: None,
                message: format!(
                    "module {} is never instantiated or called",
                    design.modules[m_idx].name
                ),
            });
        }
    }
}

/// FIFOs with a missing side: never accessed, written-never-read (tokens
/// pile up), read-never-written (reader starves).
fn fifo_usage(design: &Design, diagnostics: &mut Vec<Diagnostic>) {
    let nf = design.fifos.len();
    let mut written = vec![false; nf];
    let mut read = vec![false; nf];
    for module in &design.modules {
        for block in &module.blocks {
            for sop in &block.ops {
                match &sop.op {
                    Op::FifoWrite { fifo, .. } | Op::FifoNbWrite { fifo, .. } => {
                        written[fifo.index()] = true
                    }
                    Op::FifoRead { fifo, .. } | Op::FifoNbRead { fifo, .. } => {
                        read[fifo.index()] = true
                    }
                    _ => {}
                }
            }
        }
    }
    for f_idx in 0..nf {
        let fifo = FifoId::from_index(f_idx);
        let name = &design.fifo(fifo).name;
        let (severity, message) = match (written[f_idx], read[f_idx]) {
            (true, true) => continue,
            (false, false) => (
                Severity::Info,
                format!("fifo {name} is declared but never accessed"),
            ),
            (true, false) => (
                Severity::Warning,
                format!("fifo {name} is written but never read; tokens accumulate"),
            ),
            (false, true) => (
                Severity::Warning,
                format!("fifo {name} is read but never written; readers starve"),
            ),
        };
        diagnostics.push(Diagnostic {
            rule: Rule::FifoUsage,
            severity,
            loc: Loc::NONE,
            fifo: Some(fifo),
            array: None,
            axi: None,
            message,
        });
    }
}

/// Per-op lints: elided status checks, silently dropped non-blocking
/// writes, and constant out-of-bounds array indices.
fn op_lints(design: &Design, diagnostics: &mut Vec<Diagnostic>) {
    for (m_idx, module) in design.modules.iter().enumerate() {
        let mid = ModuleId::from_index(m_idx);
        for (b_idx, block) in module.blocks.iter().enumerate() {
            let bid = omnisim_ir::BlockId::from_index(b_idx);
            for (op_idx, sop) in block.ops.iter().enumerate() {
                let at = Loc::op(mid, bid, op_idx);
                match &sop.op {
                    Op::FifoEmpty { fifo, dst: None } | Op::FifoFull { fifo, dst: None } => {
                        diagnostics.push(Diagnostic {
                            rule: Rule::ElidedCheck,
                            severity: Severity::Info,
                            loc: at,
                            fifo: Some(*fifo),
                            array: None,
                            axi: None,
                            message: format!(
                                "status check on fifo {} discards its result",
                                design.fifo(*fifo).name
                            ),
                        });
                    }
                    Op::FifoNbWrite {
                        fifo,
                        success: None,
                        ..
                    } => {
                        diagnostics.push(Diagnostic {
                            rule: Rule::NbSilentDrop,
                            severity: Severity::Warning,
                            loc: at,
                            fifo: Some(*fifo),
                            array: None,
                            axi: None,
                            message: format!(
                                "non-blocking write to fifo {} ignores its success flag; \
                                 the value is lost when the fifo is full",
                                design.fifo(*fifo).name
                            ),
                        });
                    }
                    Op::ArrayLoad { array, index, .. } | Op::ArrayStore { array, index, .. } => {
                        if let Expr::Const(i) = index {
                            let len = design.array(*array).init.len() as i64;
                            if *i < 0 || *i >= len {
                                diagnostics.push(Diagnostic {
                                    rule: Rule::ArrayBounds,
                                    severity: Severity::Error,
                                    loc: at,
                                    fifo: None,
                                    array: Some(*array),
                                    axi: None,
                                    message: format!(
                                        "constant index {i} is outside array {} (len {len})",
                                        design.array(*array).name
                                    ),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Outputs that no `Op::Output` ever writes.
fn unwritten_outputs(design: &Design, diagnostics: &mut Vec<Diagnostic>) {
    let mut written = vec![false; design.outputs.len()];
    for module in &design.modules {
        for block in &module.blocks {
            for sop in &block.ops {
                if let Op::Output { output, .. } = &sop.op {
                    written[output.index()] = true;
                }
            }
        }
    }
    for (o_idx, is_written) in written.iter().enumerate() {
        if !is_written {
            diagnostics.push(Diagnostic {
                rule: Rule::DeadCode,
                severity: Severity::Info,
                loc: Loc::NONE,
                fifo: None,
                array: None,
                axi: None,
                message: format!(
                    "output {} is declared but never written",
                    design.outputs[o_idx]
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::builder::DesignBuilder;

    fn lint(design: &Design) -> Vec<Diagnostic> {
        let tasks: Vec<ModuleId> = if design.module(design.top).is_dataflow() {
            design.module(design.top).children().to_vec()
        } else {
            vec![design.top]
        };
        let mut diags = Vec::new();
        run_lints(design, &tasks, &mut diags);
        diags
    }

    #[test]
    fn unaccessed_fifo_and_unwritten_output_are_reported() {
        let mut d = DesignBuilder::new("lints");
        let _unused = d.fifo("ghost", 2);
        let _out = d.output("sum");
        d.function_top("top", |m| {
            m.entry(|b| {
                let x = b.var("x");
                b.assign(x, Expr::imm(1));
            });
        });
        let design = d.build().expect("valid");
        let diags = lint(&design);
        assert!(diags
            .iter()
            .any(|x| x.rule == Rule::FifoUsage && x.severity == Severity::Info));
        assert!(diags
            .iter()
            .any(|x| x.rule == Rule::DeadCode && x.message.contains("output")));
    }

    #[test]
    fn written_never_read_fifo_warns() {
        let mut d = DesignBuilder::new("wnr");
        let f = d.fifo("q", 2);
        d.function_top("top", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let design = d.build().expect("valid");
        let diags = lint(&design);
        assert!(diags.iter().any(|x| x.rule == Rule::FifoUsage
            && x.severity == Severity::Warning
            && x.message.contains("never read")));
    }

    #[test]
    fn nb_write_without_success_flag_warns_with_op_loc() {
        let mut d = DesignBuilder::new("nb");
        let f = d.fifo("q", 1);
        d.function_top("top", |m| {
            m.entry(|b| {
                let _ = b.fifo_read(f); // keep the read side alive
                b.fifo_nb_write_ignored(f, Expr::imm(7));
            });
        });
        let design = d.build().expect("valid");
        let diags = lint(&design);
        let drop = diags
            .iter()
            .find(|x| x.rule == Rule::NbSilentDrop)
            .expect("nb-silent-drop fires");
        assert_eq!(drop.severity, Severity::Warning);
        assert!(drop.loc.op.is_some());
    }

    #[test]
    fn checked_nb_write_does_not_warn() {
        let mut d = DesignBuilder::new("nbok");
        let f = d.fifo("q", 1);
        d.function_top("top", |m| {
            m.entry(|b| {
                let _ = b.fifo_read(f);
                let _ok = b.fifo_nb_write(f, Expr::imm(7));
            });
        });
        let design = d.build().expect("valid");
        let diags = lint(&design);
        assert!(diags.iter().all(|x| x.rule != Rule::NbSilentDrop));
    }

    #[test]
    fn constant_oob_index_is_an_error() {
        let mut d = DesignBuilder::new("oob");
        let a = d.zero_array("buf", 4);
        d.function_top("top", |m| {
            m.entry(|b| {
                b.array_store(a, Expr::imm(9), Expr::imm(0));
            });
        });
        let design = d.build().expect("valid");
        let diags = lint(&design);
        assert!(diags
            .iter()
            .any(|x| x.rule == Rule::ArrayBounds && x.severity == Severity::Error));
    }

    #[test]
    fn in_bounds_constant_index_is_silent() {
        let mut d = DesignBuilder::new("inb");
        let a = d.zero_array("buf", 4);
        d.function_top("top", |m| {
            m.entry(|b| {
                b.array_store(a, Expr::imm(3), Expr::imm(0));
            });
        });
        let design = d.build().expect("valid");
        let diags = lint(&design);
        assert!(diags.iter().all(|x| x.rule != Rule::ArrayBounds));
    }

    #[test]
    fn dead_module_is_reported() {
        let mut d = DesignBuilder::new("deadmod");
        let _orphan = d.function("orphan", |m| {
            m.entry(|b| {
                let x = b.var("x");
                b.assign(x, Expr::imm(1));
            });
        });
        d.function_top("top", |m| {
            m.entry(|b| {
                let y = b.var("y");
                b.assign(y, Expr::imm(2));
            });
        });
        let design = d.build().expect("valid");
        let diags = lint(&design);
        assert!(diags
            .iter()
            .any(|x| x.rule == Rule::DeadCode && x.message.contains("orphan")));
    }
}
