//! Binary encoding of [`AnalysisReport`] for the serving wire protocol and
//! artifact store.
//!
//! The encoding piggybacks on `omnisim-codec` primitives so the serve
//! crate can embed a report inside its own framed messages without a
//! parallel serializer. Enums travel as `u8` tags; adding a variant means
//! appending a tag, never renumbering.

use crate::report::{
    AnalysisReport, CycleClass, CycleReport, DeadlockVerdict, DepthBound, Diagnostic, Rule,
    Severity,
};
use omnisim_codec::{ByteReader, ByteWriter, CodecError};
use omnisim_ir::{ArrayId, AxiId, BlockId, FifoId, Loc, ModuleId};

fn verdict_tag(v: DeadlockVerdict) -> u8 {
    match v {
        DeadlockVerdict::CertifiedFree => 0,
        DeadlockVerdict::CertifiedDeadlock => 1,
        DeadlockVerdict::Unknown => 2,
    }
}

fn verdict_from(tag: u8) -> Result<DeadlockVerdict, CodecError> {
    match tag {
        0 => Ok(DeadlockVerdict::CertifiedFree),
        1 => Ok(DeadlockVerdict::CertifiedDeadlock),
        2 => Ok(DeadlockVerdict::Unknown),
        other => Err(CodecError::Invalid(format!("bad verdict tag {other}"))),
    }
}

fn class_tag(c: CycleClass) -> u8 {
    match c {
        CycleClass::ProvablySafe => 0,
        CycleClass::ProvablyDeadlocked => 1,
        CycleClass::DepthDependent => 2,
    }
}

fn class_from(tag: u8) -> Result<CycleClass, CodecError> {
    match tag {
        0 => Ok(CycleClass::ProvablySafe),
        1 => Ok(CycleClass::ProvablyDeadlocked),
        2 => Ok(CycleClass::DepthDependent),
        other => Err(CodecError::Invalid(format!("bad cycle class tag {other}"))),
    }
}

fn severity_tag(s: Severity) -> u8 {
    match s {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
    }
}

fn severity_from(tag: u8) -> Result<Severity, CodecError> {
    match tag {
        0 => Ok(Severity::Info),
        1 => Ok(Severity::Warning),
        2 => Ok(Severity::Error),
        other => Err(CodecError::Invalid(format!("bad severity tag {other}"))),
    }
}

fn rule_tag(r: Rule) -> u8 {
    Rule::ALL
        .iter()
        .position(|&x| x == r)
        .expect("every rule is in Rule::ALL") as u8
}

fn rule_from(tag: u8) -> Result<Rule, CodecError> {
    Rule::ALL
        .get(tag as usize)
        .copied()
        .ok_or_else(|| CodecError::Invalid(format!("bad rule tag {tag}")))
}

fn write_loc(w: &mut ByteWriter, loc: Loc) {
    w.opt(loc.module, |w, m| w.u32(m.0));
    w.opt(loc.block, |w, b| w.u32(b.0));
    w.opt(loc.op, |w, i| w.usize(i));
}

fn read_loc(r: &mut ByteReader<'_>) -> Result<Loc, CodecError> {
    let module = r.opt(|r| Ok(ModuleId(r.u32()?)))?;
    let block = r.opt(|r| Ok(BlockId(r.u32()?)))?;
    let op = r.opt(|r| r.usize())?;
    Ok(Loc { module, block, op })
}

fn write_diagnostic(w: &mut ByteWriter, d: &Diagnostic) {
    w.u8(rule_tag(d.rule));
    w.u8(severity_tag(d.severity));
    write_loc(w, d.loc);
    w.opt(d.fifo, |w, f| w.u32(f.0));
    w.opt(d.array, |w, a| w.u32(a.0));
    w.opt(d.axi, |w, a| w.u32(a.0));
    w.str(&d.message);
}

fn read_diagnostic(r: &mut ByteReader<'_>) -> Result<Diagnostic, CodecError> {
    Ok(Diagnostic {
        rule: rule_from(r.u8()?)?,
        severity: severity_from(r.u8()?)?,
        loc: read_loc(r)?,
        fifo: r.opt(|r| Ok(FifoId(r.u32()?)))?,
        array: r.opt(|r| Ok(ArrayId(r.u32()?)))?,
        axi: r.opt(|r| Ok(AxiId(r.u32()?)))?,
        message: r.str()?,
    })
}

/// Serializes a report into `w`.
pub fn write_report(w: &mut ByteWriter, report: &AnalysisReport) {
    w.u8(verdict_tag(report.verdict));
    w.seq(report.cycles.iter(), |w, c| {
        w.seq(c.tasks.iter(), |w, t| w.u32(t.0));
        w.seq(c.fifos.iter(), |w, f| w.u32(f.0));
        w.u8(class_tag(c.class));
    });
    w.seq(report.depth_bounds.iter(), |w, b| {
        w.usize(b.bound);
        w.bool(b.exact);
    });
    w.seq(report.diagnostics.iter(), write_diagnostic);
    w.usize(report.tasks);
    w.usize(report.countable_tasks);
}

/// Deserializes a report written by [`write_report`].
pub fn read_report(r: &mut ByteReader<'_>) -> Result<AnalysisReport, CodecError> {
    let verdict = verdict_from(r.u8()?)?;
    let cycles = r.seq(|r| {
        let tasks = r.seq(|r| Ok(ModuleId(r.u32()?)))?;
        let fifos = r.seq(|r| Ok(FifoId(r.u32()?)))?;
        let class = class_from(r.u8()?)?;
        Ok(CycleReport {
            tasks,
            fifos,
            class,
        })
    })?;
    let depth_bounds = r.seq(|r| {
        let bound = r.usize()?;
        let exact = r.bool()?;
        Ok(DepthBound { bound, exact })
    })?;
    let diagnostics = r.seq(read_diagnostic)?;
    let tasks = r.usize()?;
    let countable_tasks = r.usize()?;
    Ok(AnalysisReport {
        verdict,
        cycles,
        depth_bounds,
        diagnostics,
        tasks,
        countable_tasks,
    })
}

/// Serializes a report to a standalone byte buffer.
pub fn encode_report(report: &AnalysisReport) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(256);
    write_report(&mut w, report);
    w.into_bytes()
}

/// Deserializes a standalone buffer produced by [`encode_report`].
pub fn decode_report(bytes: &[u8]) -> Result<AnalysisReport, CodecError> {
    let mut r = ByteReader::new(bytes);
    let report = read_report(&mut r)?;
    r.finish()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            verdict: DeadlockVerdict::CertifiedDeadlock,
            cycles: vec![CycleReport {
                tasks: vec![ModuleId(0), ModuleId(1)],
                fifos: vec![FifoId(0), FifoId(1)],
                class: CycleClass::ProvablyDeadlocked,
            }],
            depth_bounds: vec![
                DepthBound {
                    bound: 3,
                    exact: true,
                },
                DepthBound {
                    bound: 1,
                    exact: false,
                },
            ],
            diagnostics: vec![Diagnostic {
                rule: Rule::Deadlock,
                severity: Severity::Error,
                loc: Loc::op(ModuleId(1), BlockId(2), 3),
                fifo: Some(FifoId(1)),
                array: None,
                axi: None,
                message: "task b blocks reading fifo f1".into(),
            }],
            tasks: 2,
            countable_tasks: 2,
        }
    }

    #[test]
    fn report_round_trips() {
        let report = sample();
        let bytes = encode_report(&report);
        let back = decode_report(&bytes).expect("decodes");
        assert_eq!(back, report);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = AnalysisReport {
            verdict: DeadlockVerdict::Unknown,
            cycles: Vec::new(),
            depth_bounds: Vec::new(),
            diagnostics: Vec::new(),
            tasks: 0,
            countable_tasks: 0,
        };
        let bytes = encode_report(&report);
        assert_eq!(decode_report(&bytes).expect("decodes"), report);
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let bytes = encode_report(&sample());
        assert!(decode_report(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn bad_verdict_tag_is_rejected() {
        let mut bytes = encode_report(&sample());
        bytes[0] = 9;
        assert!(decode_report(&bytes).is_err());
    }
}
