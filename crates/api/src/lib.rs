//! # omnisim-api
//!
//! The unified simulation API shared by every backend in the workspace.
//!
//! The paper's whole evaluation is a *cross-backend comparison* — naive C
//! simulation vs the LightningSim baseline vs OmniSim vs the cycle-stepped
//! reference — so the backends need one vocabulary for "simulate this design
//! and tell me what happened". This crate provides it:
//!
//! * [`Simulator`] — an object-safe trait (`name()`, `capabilities()`,
//!   `compile(&Design)`, `simulate(&Design)`) implemented by
//!   `omnisim-csim`, `omnisim-lightning`, `omnisim-rtlsim` and the
//!   `omnisim` engine itself,
//! * [`CompiledSim`] / [`RunConfig`] — the compile-once / run-many session
//!   lifecycle: [`Simulator::compile`] pays the front-end cost (design
//!   elaboration, trace or event-graph construction) **once**, and the
//!   returned artifact answers any number of [`CompiledSim::run`] calls —
//!   concurrently, it is `Send + Sync` — each parameterized by a
//!   [`RunConfig`] (FIFO-depth overrides, cycle limit, fuel budget),
//! * [`SimReport`] — the unified result: outputs, a common [`SimOutcome`],
//!   optional cycle count, per-phase [`SimTimings`], warnings and an
//!   [`Extras`] escape hatch for backend-specific payloads (e.g. the
//!   OmniSim engine's `IncrementalState`),
//! * [`SimFailure`] — the unified error, distinguishing designs a backend
//!   *cannot* handle ([`SimFailure::Unsupported`], e.g. Type B/C designs
//!   under LightningSim) from runs that *failed* ([`SimFailure::Execution`]).
//!
//! Each backend's native outcome type converts into [`SimOutcome`] via
//! `From` impls located in the backend's own crate; the `omnisim-suite`
//! facade adds a string-keyed backend registry, a batch `Sweep` API and a
//! concurrent `SimService` design registry (content-hash → shared
//! [`CompiledSim`] artifact) on top of these traits.
//!
//! ## The session lifecycle
//!
//! OmniSim's premise (§7 of the paper) — and LightningSimV2's before it —
//! is that the *expensive* part of simulation is paid once and amortized
//! over many cheap queries. The trait surface mirrors that:
//!
//! ```text
//! Simulator::compile(design)  ──►  Box<dyn CompiledSim>     (front-end, once)
//! CompiledSim::run(&config)   ──►  SimReport                (per query, cheap)
//! Simulator::simulate(design)  ==  compile + run(default)   (one-shot)
//! ```
//!
//! [`SimTimings`] splits along the same seam: `compile` reports its cost
//! through [`CompiledSim::compile_timings`] (front-end elaboration, and —
//! for backends whose graph is built *by executing*, like the OmniSim
//! engine — the one-time execution), while each `run` reports only the
//! per-run `execution`/`finalize` work. The provided [`Simulator::simulate`]
//! sums the two, so [`SimTimings::total`] of a one-shot run remains the
//! true end-to-end wall time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use omnisim_ir::design::OutputMap;
use omnisim_ir::{Design, DesignClass};
use std::any::Any;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// An HLS-design simulator, as seen by the cross-backend tooling.
///
/// The trait is object-safe on purpose: registries, comparison harnesses and
/// sweep drivers hold `Box<dyn Simulator>` and treat every backend
/// identically. The required [`Simulator::compile`] pays the backend's
/// front-end cost once and returns a reusable [`CompiledSim`] session
/// artifact; the provided [`Simulator::simulate`] is the one-shot
/// convenience (`compile` + one default [`CompiledSim::run`]).
pub trait Simulator: Send + Sync {
    /// Stable, registry-friendly backend name (e.g. `"omnisim"`, `"csim"`).
    fn name(&self) -> &'static str;

    /// What this backend can and cannot do.
    fn capabilities(&self) -> Capabilities;

    /// Compiles a design into a reusable session artifact.
    ///
    /// This performs all per-design work the backend can do up front —
    /// elaboration, taxonomy classification, trace generation, event-graph
    /// construction — so that subsequent [`CompiledSim::run`] calls only pay
    /// per-run costs. The artifact is `Send + Sync`: one compiled design can
    /// serve concurrent runs from many threads (e.g. behind an
    /// `Arc<dyn CompiledSim>` in a serving registry).
    ///
    /// # Errors
    ///
    /// Returns [`SimFailure::Unsupported`] when the design falls outside the
    /// backend's supported taxonomy classes, and [`SimFailure::Execution`] /
    /// [`SimFailure::Internal`] when front-end work starts but cannot
    /// produce an artifact.
    fn compile(&self, design: &Design) -> Result<Box<dyn CompiledSim>, SimFailure>;

    /// Reconstructs a compiled artifact from bytes previously produced by
    /// [`CompiledSim::encode`] — the warm-start half of the persistent
    /// artifact store.
    ///
    /// `design` must be the same design the artifact was compiled from
    /// (stores key artifacts by design content hash, so this holds by
    /// construction); artifact encodings deliberately do not embed the
    /// design itself. A decoded artifact answers [`CompiledSim::run`]
    /// bit-identically to the original, but reports zeroed
    /// [`CompiledSim::compile_timings`] — the front-end work it represents
    /// was paid in some earlier process.
    ///
    /// # Errors
    ///
    /// Returns [`SimFailure::Unsupported`] when the backend has no artifact
    /// codec (`serializable_artifact` is false in [`Capabilities`]) and
    /// [`SimFailure::Internal`] when the bytes are truncated, corrupted or
    /// of an incompatible version — callers fall back to a fresh
    /// [`Simulator::compile`].
    fn decode_artifact(
        &self,
        design: &Design,
        bytes: &[u8],
    ) -> Result<Box<dyn CompiledSim>, SimFailure> {
        let _ = (design, bytes);
        Err(SimFailure::unsupported(
            self.name(),
            "backend has no artifact codec",
        ))
    }

    /// Runs the design end to end (one-shot): [`Simulator::compile`]
    /// followed by a single [`CompiledSim::run`] with the default
    /// [`RunConfig`], with the compile-phase timings folded back into the
    /// report so [`SimTimings::total`] covers the whole run.
    ///
    /// # Errors
    ///
    /// Returns [`SimFailure::Unsupported`] when the design falls outside the
    /// backend's supported taxonomy classes, and [`SimFailure::Execution`] /
    /// [`SimFailure::Internal`] when a run starts but cannot produce a
    /// report. Deadlocks, crashes-by-design and cycle-limit aborts are *not*
    /// failures — they are reported through [`SimReport::outcome`], because
    /// observing them is exactly what the evaluation tables compare.
    fn simulate(&self, design: &Design) -> Result<SimReport, SimFailure> {
        let compiled = self.compile(design)?;
        let mut report = compiled.run(&RunConfig::default())?;
        let compile_timings = compiled.compile_timings();
        report.timings.front_end += compile_timings.front_end;
        report.timings.execution += compile_timings.execution;
        report.timings.finalize += compile_timings.finalize;
        Ok(report)
    }
}

impl fmt::Debug for dyn Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("name", &self.name())
            .field("capabilities", &self.capabilities())
            .finish()
    }
}

/// A design compiled by one backend for repeated runs — the session half of
/// the compile-once / run-many lifecycle.
///
/// Artifacts are `Send + Sync` and take `&self`, so a single compiled
/// design can serve concurrent [`CompiledSim::run`] calls from many threads
/// (the `omnisim-suite` facade's `SimService` shares them behind
/// `Arc<dyn CompiledSim>`). Runs are deterministic: the same [`RunConfig`]
/// always produces the same outcome, outputs and cycle count.
pub trait CompiledSim: Send + Sync {
    /// Name of the backend that compiled this artifact.
    fn backend(&self) -> &'static str;

    /// Name of the compiled design.
    fn design_name(&self) -> &str;

    /// Wall-clock cost of the compile phase, on the same three-slot
    /// breakdown as per-run timings: `front_end` covers elaboration /
    /// classification / trace or graph construction, and `execution` covers
    /// any one-time execution the backend performs while building its graph
    /// (the OmniSim engine executes the design to construct it). Added to a
    /// run's own timings by the provided [`Simulator::simulate`].
    fn compile_timings(&self) -> SimTimings;

    /// Runs the compiled design once under the given per-run parameters.
    ///
    /// Backends apply the [`RunConfig`] knobs they understand and ignore the
    /// rest (see the field docs on [`RunConfig`]). The report's
    /// [`SimTimings`] cover only this run's work; the compile-phase cost is
    /// available separately through [`CompiledSim::compile_timings`].
    ///
    /// # Errors
    ///
    /// Returns [`SimFailure::Execution`] / [`SimFailure::Internal`] when the
    /// run cannot produce a report (wrong-arity depth overrides, a failing
    /// re-execution, …). As with [`Simulator::simulate`], deadlocks and
    /// cycle-limit aborts are outcomes, not errors.
    fn run(&self, config: &RunConfig) -> Result<SimReport, SimFailure>;

    /// Serializes this artifact into a versioned, checksummed byte vector
    /// that the owning backend's [`Simulator::decode_artifact`] can
    /// reconstruct in another process.
    ///
    /// Returns `None` when the backend has no artifact codec (the default).
    /// Encodings are canonical: compiling the same design twice and encoding
    /// both artifacts yields byte-identical vectors, so stores can trust
    /// content-hash keys. Wall-clock compile timings are deliberately not
    /// encoded.
    fn encode(&self) -> Option<Vec<u8>> {
        None
    }

    /// The artifact as [`Any`], so backend-aware tooling can downcast to the
    /// concrete type (e.g. `omnisim-dse` compiles its `SweepPlan` from the
    /// engine's artifact instead of going through [`Extras`]).
    fn as_any(&self) -> &dyn Any;

    /// Lifetime totals of backend-internal events on this artifact, as
    /// `(name, count)` pairs — which run path answered each
    /// [`CompiledSim::run`] (certified replay, incremental re-finalize,
    /// full re-simulation fallback, …). Names are stable,
    /// Prometheus-friendly identifiers; counts are cumulative since the
    /// artifact was created. The serving tier scrapes these into its
    /// metrics registry, which keeps backend crates free of any
    /// observability dependency. The default is no counters.
    fn counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

impl fmt::Debug for dyn CompiledSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledSim")
            .field("backend", &self.backend())
            .field("design", &self.design_name())
            .finish()
    }
}

/// Per-run parameters of a [`CompiledSim::run`] call.
///
/// Every knob is optional; `None` means "use what the design / backend was
/// compiled with". Backends apply the knobs they understand:
///
/// | knob          | omnisim                    | lightning | rtl | csim |
/// |---------------|----------------------------|-----------|-----|------|
/// | `fifo_depths` | ✓ (incremental or re-sim)  | ✓         | ✓   | –¹   |
/// | `max_cycles`  | –                          | –         | ✓   | –    |
/// | `fuel`        | ✓ (re-sim fallbacks only)  | –         | –   | ✓    |
///
/// ¹ C simulation models unbounded streams, so FIFO depths cannot affect
/// its results by construction; overrides are accepted and ignored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunConfig {
    /// Per-FIFO depth overrides (one entry per FIFO of the design, in
    /// declaration order). `None` runs at the design's declared depths.
    pub fifo_depths: Option<Vec<usize>>,
    /// Cycle budget override for cycle-stepping backends.
    pub max_cycles: Option<u64>,
    /// Operation-budget override for backends that (re-)execute the design.
    pub fuel: Option<u64>,
}

impl RunConfig {
    /// A configuration that runs the design exactly as compiled.
    pub fn new() -> Self {
        RunConfig::default()
    }

    /// Overrides the FIFO depths for this run.
    pub fn with_fifo_depths(mut self, depths: impl Into<Vec<usize>>) -> Self {
        self.fifo_depths = Some(depths.into());
        self
    }

    /// Overrides the cycle budget for this run.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = Some(max_cycles);
        self
    }

    /// Overrides the operation budget for this run.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = Some(fuel);
        self
    }
}

/// Feature matrix of one backend (the rows of the paper's Table 3/5
/// comparisons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Produces hardware-accurate cycle counts.
    pub cycle_accurate: bool,
    /// Correctly simulates Type B designs (blocking-only accesses whose
    /// *timing* feeds back into behaviour: cyclic dependencies, deadlocks).
    pub handles_type_b: bool,
    /// Correctly simulates Type C designs (non-blocking FIFO accesses whose
    /// *outcome* feeds back into behaviour).
    pub handles_type_c: bool,
    /// Fills in the per-phase [`SimTimings`] breakdown.
    pub produces_timings: bool,
    /// Ships an incremental-DSE payload in [`SimReport::extras`] that can
    /// re-answer FIFO-depth changes without a full re-run.
    pub incremental_dse: bool,
    /// The compiled artifact can additionally be *compiled* into a frozen
    /// batch sweep plan (`omnisim-dse`'s `SweepPlan::from_compiled`) for
    /// allocation-free, delta-evaluated grid solving.
    pub compiled_dse: bool,
    /// [`Simulator::compile`] produces an artifact whose [`CompiledSim::run`]
    /// genuinely amortizes front-end work (i.e. a run is cheaper than a
    /// fresh [`Simulator::simulate`], not just a re-execution behind a new
    /// name). True for every workspace backend; the *degree* of
    /// amortization differs — the engine and lightning skip execution
    /// entirely on certified runs, csim replays its cached evaluation, and
    /// rtl only saves elaboration (its runtime is execution-bound by
    /// design).
    pub compiled_run: bool,
    /// The compiled artifact round-trips through [`CompiledSim::encode`] /
    /// [`Simulator::decode_artifact`]: it can be persisted to disk by the
    /// artifact store and warm-started in another process, answering runs
    /// bit-identically to the original.
    pub serializable_artifact: bool,
}

impl Capabilities {
    /// True if the backend claims correct results for the given taxonomy
    /// class.
    pub fn supports(&self, class: DesignClass) -> bool {
        match class {
            DesignClass::TypeA => true,
            DesignClass::TypeB => self.handles_type_b,
            DesignClass::TypeC => self.handles_type_c,
        }
    }
}

/// How a simulation run ended, across all backends.
///
/// Native outcome types (`OmniOutcome`, `RtlOutcome`, `CsimOutcome`) convert
/// into this via `From` impls in their home crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimOutcome {
    /// Every task ran to completion.
    Completed,
    /// A design-level deadlock was detected.
    Deadlock {
        /// One human-readable entry per blocked task/FIFO pair.
        blocked: Vec<String>,
    },
    /// The simulated program itself crashed (e.g. the `SIGSEGV` rows of
    /// Table 3 under sequential C simulation).
    Crashed {
        /// What went wrong, styled after the originating tool's output.
        reason: String,
    },
    /// The backend's configured cycle limit was reached before completion.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl SimOutcome {
    /// True if the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, SimOutcome::Completed)
    }

    /// True if a design deadlock was detected.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, SimOutcome::Deadlock { .. })
    }

    /// True if the simulated program crashed.
    pub fn is_crashed(&self) -> bool {
        matches!(self, SimOutcome::Crashed { .. })
    }

    /// A short human-readable description for table cells.
    pub fn describe(&self) -> String {
        match self {
            SimOutcome::Completed => "completed".to_owned(),
            SimOutcome::Deadlock { blocked } if blocked.is_empty() => {
                "deadlock detected".to_owned()
            }
            SimOutcome::Deadlock { blocked } => {
                format!("deadlock detected: {}", blocked.join("; "))
            }
            SimOutcome::Crashed { reason } => reason.clone(),
            SimOutcome::CycleLimit { limit } => format!("cycle limit {limit} reached"),
        }
    }
}

/// Wall-clock time breakdown of a run, mirroring Fig. 8(c) of the paper.
///
/// The slots follow the session lifecycle: `front_end` is compile-phase
/// work (elaboration, taxonomy, trace/graph construction — reported by
/// [`CompiledSim::compile_timings`]), while `execution` and `finalize` are
/// per-run work (reported by each [`CompiledSim::run`]). Backends map their
/// native phases onto the slots: the OmniSim engine reports elaboration
/// under `front_end` and its one-time multi-threaded execution under the
/// compile phase's `execution`, with per-run re-finalization under
/// `finalize`; the LightningSim baseline reports Phase 1 (trace) under
/// `front_end` and Phase 2 (analysis) under `finalize`; single-phase
/// backends report everything under `execution`. For a one-shot
/// [`Simulator::simulate`], compile and run timings are summed, so
/// [`SimTimings::total`] is always the end-to-end wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimTimings {
    /// Front-end elaboration: design copy, optimisation passes, taxonomy,
    /// trace/graph construction.
    pub front_end: Duration,
    /// The main simulation work.
    pub execution: Duration,
    /// Finalization / analysis after execution.
    pub finalize: Duration,
}

impl SimTimings {
    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.front_end + self.execution + self.finalize
    }
}

/// Which engine path answered one run — a backend-agnostic label such as
/// `baseline_replay`, `refinalize` or `resim_fallback`, inserted into
/// [`SimReport::extras`] by the backend that served the run.
///
/// [`CompiledSim::counters`] exposes the same vocabulary as *cumulative*
/// artifact totals; this payload is the *per-run* attribution, which a
/// serving tier can attach to exactly the request that took the path
/// (race-free under concurrency, where counter deltas are not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPath(pub &'static str);

impl RunPath {
    /// The path label.
    pub fn as_str(&self) -> &'static str {
        self.0
    }
}

/// Type-keyed container for backend-specific payloads riding on a
/// [`SimReport`] — e.g. the OmniSim engine's `SimStats` and
/// `IncrementalState`, or the reference simulator's native report.
///
/// At most one value per type is stored; inserting a second value of the
/// same type replaces the first.
#[derive(Default)]
pub struct Extras {
    items: Vec<Box<dyn Any + Send>>,
}

impl Extras {
    /// Creates an empty container.
    pub fn new() -> Self {
        Extras::default()
    }

    /// Stores `value`, replacing any existing payload of the same type.
    pub fn insert<T: Any + Send>(&mut self, value: T) {
        self.remove_slot::<T>();
        self.items.push(Box::new(value));
    }

    /// Borrows the payload of type `T`, if present.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.items.iter().find_map(|item| item.downcast_ref::<T>())
    }

    /// Removes and returns the payload of type `T`, if present.
    pub fn take<T: Any>(&mut self) -> Option<T> {
        self.remove_slot::<T>()
    }

    fn remove_slot<T: Any>(&mut self) -> Option<T> {
        let position = self.items.iter().position(|item| item.as_ref().is::<T>())?;
        self.items
            .swap_remove(position)
            .downcast::<T>()
            .ok()
            .map(|boxed| *boxed)
    }

    /// Number of stored payloads.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no payload is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl fmt::Debug for Extras {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Extras({} payloads)", self.items.len())
    }
}

/// The unified result of a simulation run.
#[derive(Debug)]
pub struct SimReport {
    /// Name of the backend that produced this report.
    pub backend: &'static str,
    /// How the run ended.
    pub outcome: SimOutcome,
    /// Final value of every testbench-visible output that was written.
    pub outputs: OutputMap,
    /// End-to-end latency in clock cycles. `None` for backends with no
    /// notion of hardware time (naive C simulation).
    pub total_cycles: Option<u64>,
    /// Wall-clock time breakdown.
    pub timings: SimTimings,
    /// Warning messages and how often each occurred.
    pub warnings: BTreeMap<String, usize>,
    /// Backend-specific payloads (incremental-DSE state, native stats, …).
    pub extras: Extras,
}

impl SimReport {
    /// Creates an empty report for a backend and outcome; callers fill in
    /// the remaining fields.
    pub fn new(backend: &'static str, outcome: SimOutcome) -> Self {
        SimReport {
            backend,
            outcome,
            outputs: OutputMap::new(),
            total_cycles: None,
            timings: SimTimings::default(),
            warnings: BTreeMap::new(),
            extras: Extras::new(),
        }
    }

    /// Convenience accessor: value of a named output, if written.
    pub fn output(&self, name: &str) -> Option<i64> {
        self.outputs.get(name).copied()
    }

    /// Total number of warnings emitted.
    pub fn warning_count(&self) -> usize {
        self.warnings.values().sum()
    }
}

/// Why a backend could not produce a [`SimReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimFailure {
    /// The design falls outside the backend's supported taxonomy classes
    /// (the "not supported" cells of the paper's comparison tables).
    Unsupported {
        /// The rejecting backend.
        backend: &'static str,
        /// Why the design is out of scope.
        reason: String,
    },
    /// The run started but failed (interpreter error, thread panic, …).
    Execution {
        /// The failing backend.
        backend: &'static str,
        /// Human-readable description of the failure.
        message: String,
    },
    /// An invariant violation inside the backend itself.
    Internal {
        /// The failing backend.
        backend: &'static str,
        /// Human-readable description of the bug.
        message: String,
    },
}

impl SimFailure {
    /// Creates an [`SimFailure::Unsupported`] failure.
    pub fn unsupported(backend: &'static str, reason: impl Into<String>) -> Self {
        SimFailure::Unsupported {
            backend,
            reason: reason.into(),
        }
    }

    /// Creates an [`SimFailure::Execution`] failure.
    pub fn execution(backend: &'static str, message: impl Into<String>) -> Self {
        SimFailure::Execution {
            backend,
            message: message.into(),
        }
    }

    /// Creates an [`SimFailure::Internal`] failure.
    pub fn internal(backend: &'static str, message: impl Into<String>) -> Self {
        SimFailure::Internal {
            backend,
            message: message.into(),
        }
    }

    /// The backend that produced this failure.
    pub fn backend(&self) -> &'static str {
        match self {
            SimFailure::Unsupported { backend, .. }
            | SimFailure::Execution { backend, .. }
            | SimFailure::Internal { backend, .. } => backend,
        }
    }

    /// True if the design was rejected as out of scope (rather than a run
    /// going wrong).
    pub fn is_unsupported(&self) -> bool {
        matches!(self, SimFailure::Unsupported { .. })
    }
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFailure::Unsupported { backend, reason } => {
                write!(f, "design not supported by backend '{backend}': {reason}")
            }
            SimFailure::Execution { backend, message } => {
                write!(f, "backend '{backend}' failed: {message}")
            }
            SimFailure::Internal { backend, message } => {
                write!(f, "internal error in backend '{backend}': {message}")
            }
        }
    }
}

impl Error for SimFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates_and_descriptions() {
        assert!(SimOutcome::Completed.is_completed());
        let d = SimOutcome::Deadlock {
            blocked: vec!["task 'a' blocked reading fifo 'q'".into()],
        };
        assert!(d.is_deadlock());
        assert!(!d.is_completed());
        assert!(d.describe().contains("task 'a'"));
        let c = SimOutcome::Crashed {
            reason: "@E Simulation failed: SIGSEGV.".into(),
        };
        assert!(c.is_crashed());
        assert_eq!(c.describe(), "@E Simulation failed: SIGSEGV.");
        assert!(SimOutcome::CycleLimit { limit: 7 }.describe().contains('7'));
    }

    #[test]
    fn capabilities_support_matrix() {
        let lightning_like = Capabilities {
            cycle_accurate: true,
            handles_type_b: false,
            handles_type_c: false,
            produces_timings: true,
            incremental_dse: true,
            compiled_dse: false,
            compiled_run: true,
            serializable_artifact: true,
        };
        assert!(lightning_like.supports(DesignClass::TypeA));
        assert!(!lightning_like.supports(DesignClass::TypeB));
        assert!(!lightning_like.supports(DesignClass::TypeC));
    }

    #[test]
    fn timings_total() {
        let t = SimTimings {
            front_end: Duration::from_millis(2),
            execution: Duration::from_millis(5),
            finalize: Duration::from_millis(1),
        };
        assert_eq!(t.total(), Duration::from_millis(8));
    }

    #[test]
    fn run_config_builders() {
        let cfg = RunConfig::new();
        assert_eq!(cfg, RunConfig::default());
        assert!(cfg.fifo_depths.is_none() && cfg.max_cycles.is_none() && cfg.fuel.is_none());
        let cfg = RunConfig::new()
            .with_fifo_depths([4usize, 8])
            .with_max_cycles(1000)
            .with_fuel(99);
        assert_eq!(cfg.fifo_depths.as_deref(), Some(&[4usize, 8][..]));
        assert_eq!(cfg.max_cycles, Some(1000));
        assert_eq!(cfg.fuel, Some(99));
    }

    #[test]
    fn extras_stores_one_payload_per_type() {
        #[derive(Debug, PartialEq)]
        struct Stats(u64);
        #[derive(Debug, PartialEq)]
        struct Other(&'static str);

        let mut extras = Extras::new();
        assert!(extras.is_empty());
        extras.insert(Stats(1));
        extras.insert(Other("x"));
        extras.insert(Stats(2)); // replaces Stats(1)
        assert_eq!(extras.len(), 2);
        assert_eq!(extras.get::<Stats>(), Some(&Stats(2)));
        assert_eq!(extras.get::<Other>(), Some(&Other("x")));
        assert_eq!(extras.take::<Stats>(), Some(Stats(2)));
        assert_eq!(extras.get::<Stats>(), None);
        assert_eq!(extras.len(), 1);
    }

    #[test]
    fn report_accessors() {
        let mut report = SimReport::new("test", SimOutcome::Completed);
        report.outputs.insert("sum".into(), 55);
        report.warnings.insert("read while empty".into(), 3);
        assert_eq!(report.output("sum"), Some(55));
        assert_eq!(report.output("missing"), None);
        assert_eq!(report.warning_count(), 3);
        assert_eq!(report.total_cycles, None);
    }

    #[test]
    fn failures_format_and_classify() {
        let u = SimFailure::unsupported("lightning", "non-blocking FIFO accesses");
        assert!(u.is_unsupported());
        assert_eq!(u.backend(), "lightning");
        assert!(u.to_string().contains("lightning"));
        let e = SimFailure::execution("omnisim", "task 'p' failed");
        assert!(!e.is_unsupported());
        fn assert_err<E: Error + Send + Sync + 'static>(_: &E) {}
        assert_err(&e);
    }

    /// A minimal backend whose compiled artifact counts its runs, proving
    /// the trait surface is object-safe and the provided `simulate` folds
    /// compile timings into the run report.
    struct Dummy;

    struct DummyCompiled;

    impl CompiledSim for DummyCompiled {
        fn backend(&self) -> &'static str {
            "dummy"
        }
        fn design_name(&self) -> &str {
            "d"
        }
        fn compile_timings(&self) -> SimTimings {
            SimTimings {
                front_end: Duration::from_millis(3),
                execution: Duration::from_millis(4),
                finalize: Duration::ZERO,
            }
        }
        fn run(&self, config: &RunConfig) -> Result<SimReport, SimFailure> {
            let mut report = SimReport::new("dummy", SimOutcome::Completed);
            report.total_cycles = Some(config.max_cycles.unwrap_or(10));
            report.timings.finalize = Duration::from_millis(1);
            Ok(report)
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    impl Simulator for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                cycle_accurate: false,
                handles_type_b: false,
                handles_type_c: false,
                produces_timings: false,
                incremental_dse: false,
                compiled_dse: false,
                compiled_run: true,
                serializable_artifact: false,
            }
        }
        fn compile(&self, _design: &Design) -> Result<Box<dyn CompiledSim>, SimFailure> {
            Ok(Box::new(DummyCompiled))
        }
    }

    fn tiny_design() -> Design {
        let mut d = omnisim_ir::DesignBuilder::new("tiny");
        let out = d.output("x");
        d.function_top("main", |m| {
            m.entry(|b| {
                b.output(out, omnisim_ir::Expr::imm(1));
            });
        });
        d.build().unwrap()
    }

    #[test]
    fn traits_are_object_safe_and_sessions_run() {
        let boxed: Box<dyn Simulator> = Box::new(Dummy);
        assert_eq!(boxed.name(), "dummy");
        assert!(format!("{boxed:?}").contains("dummy"));

        let design = tiny_design();
        let compiled = boxed.compile(&design).unwrap();
        assert!(format!("{compiled:?}").contains("dummy"));
        assert!(compiled.as_any().is::<DummyCompiled>());
        // Per-run knobs reach the artifact.
        let report = compiled.run(&RunConfig::new().with_max_cycles(42)).unwrap();
        assert_eq!(report.total_cycles, Some(42));
        // A bare run reports only per-run timings…
        let bare = compiled.run(&RunConfig::default()).unwrap();
        assert_eq!(bare.timings.total(), Duration::from_millis(1));
        // …while the provided one-shot `simulate` folds the compile phase
        // back in, keeping `total()` end-to-end.
        let one_shot = boxed.simulate(&design).unwrap();
        assert_eq!(one_shot.timings.front_end, Duration::from_millis(3));
        assert_eq!(one_shot.timings.execution, Duration::from_millis(4));
        assert_eq!(one_shot.timings.finalize, Duration::from_millis(1));
        assert_eq!(one_shot.timings.total(), Duration::from_millis(8));
    }

    #[test]
    fn artifact_codec_defaults_to_unsupported() {
        let design = tiny_design();
        let compiled = Dummy.compile(&design).unwrap();
        assert_eq!(compiled.encode(), None, "no codec by default");
        let failure = Dummy.decode_artifact(&design, &[1, 2, 3]).unwrap_err();
        assert!(failure.is_unsupported());
        assert!(failure.to_string().contains("no artifact codec"));
    }

    #[test]
    fn compiled_artifacts_are_shareable_across_threads() {
        let design = tiny_design();
        let compiled: std::sync::Arc<dyn CompiledSim> =
            std::sync::Arc::from(Dummy.compile(&design).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = std::sync::Arc::clone(&compiled);
                scope.spawn(move || {
                    let report = shared.run(&RunConfig::default()).unwrap();
                    assert_eq!(report.total_cycles, Some(10));
                });
            }
        });
    }
}
