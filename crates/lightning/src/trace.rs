//! Phase 1: trace generation and simulation-graph construction.

use crate::error::LightningError;
use omnisim_graph::{CsrGraph, CsrGraphBuilder, Edge, NodeId};
use omnisim_interp::{Interpreter, ModuleClock, SimBackend, SimError};
use omnisim_ir::design::OutputMap;
use omnisim_ir::schedule::BlockSchedule;
use omnisim_ir::validate::fifo_endpoints;
use omnisim_ir::{ArrayId, AxiId, BlockId, Design, FifoId, ModuleId, OutputId};
use std::collections::VecDeque;

/// The artefact of Phase 1: the functional outputs, the frozen simulation
/// graph and the per-FIFO access orders needed by Phase 2.
#[derive(Debug)]
pub struct LightningTrace {
    pub(crate) graph: CsrGraph,
    pub(crate) fifo_writes: Vec<Vec<NodeId>>,
    pub(crate) fifo_reads: Vec<Vec<NodeId>>,
    pub(crate) end_nodes: Vec<NodeId>,
    /// Functional outputs observed during trace generation.
    pub outputs: OutputMap,
}

impl LightningTrace {
    /// Number of nodes in the simulation graph.
    pub fn node_count(&self) -> usize {
        self.graph.len()
    }

    /// Number of edges in the simulation graph (without Phase 2 overlays).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Phase 2: computes the design latency for the given FIFO depths by
    /// overlaying the depth-dependent write-after-read constraints and
    /// running a longest-path pass.
    ///
    /// # Errors
    ///
    /// Returns [`LightningError::DepthMismatch`] if `depths` does not have
    /// one entry per FIFO, or [`LightningError::Graph`] if the combined
    /// constraint set is cyclic (which indicates a simulator bug).
    pub fn analyze(&self, depths: &[usize]) -> Result<u64, LightningError> {
        if depths.len() != self.fifo_writes.len() {
            return Err(LightningError::DepthMismatch {
                expected: self.fifo_writes.len(),
                got: depths.len(),
            });
        }
        let mut overlay = Vec::new();
        for (fifo, &depth) in depths.iter().enumerate() {
            let writes = &self.fifo_writes[fifo];
            let reads = &self.fifo_reads[fifo];
            for w in (depth + 1)..=writes.len() {
                // The w-th write must wait for the (w - depth)-th read.
                if let Some(&read_node) = reads.get(w - depth - 1) {
                    overlay.push(Edge::new(read_node, writes[w - 1], 1));
                }
            }
        }
        let times = self.graph.times_with_overlay(&overlay)?;
        let end = self
            .end_nodes
            .iter()
            .map(|n| times[n.index()])
            .max()
            .unwrap_or(0);
        Ok(end + 1)
    }
}

/// Runs Phase 1 on a design, executing its tasks sequentially (in topological
/// order of the dataflow graph) with unbounded FIFOs.
pub(crate) fn generate_trace(design: &Design) -> Result<LightningTrace, LightningError> {
    let order = topological_task_order(design);
    let mut backend = TraceBackend::new(design);
    let mut interp = Interpreter::new(design);
    for task in order {
        backend.begin_task();
        interp.run_module(task, &[], &mut backend)?;
        backend.finish_task();
    }
    Ok(LightningTrace {
        graph: backend.graph.build(),
        fifo_writes: backend.fifo_writes,
        fifo_reads: backend.fifo_reads,
        end_nodes: backend.end_nodes,
        outputs: backend.outputs,
    })
}

/// Orders the dataflow tasks so that every FIFO producer runs before its
/// consumer. FIFO accesses inside called sub-functions happen on the
/// calling task's thread, so each task owns the endpoints of its whole call
/// closure. For Type A designs (acyclic) this always succeeds; ties and
/// isolated tasks keep declaration order.
fn topological_task_order(design: &Design) -> Vec<ModuleId> {
    let tasks = design.dataflow_tasks();
    let endpoints = fifo_endpoints(design);
    let closures = omnisim_ir::validate::call_closures(design);
    // Map every module to the dataflow task whose call closure contains it.
    let index_of = |m: ModuleId| tasks.iter().position(|&t| closures[t.index()].contains(&m));
    let n = tasks.len();
    let mut adj = vec![Vec::new(); n];
    let mut in_degree = vec![0usize; n];
    for (writers, readers) in &endpoints {
        for w in writers {
            for r in readers {
                if let (Some(wi), Some(ri)) = (index_of(*w), index_of(*r)) {
                    if wi != ri {
                        adj[wi].push(ri);
                        in_degree[ri] += 1;
                    }
                }
            }
        }
    }
    let mut ready: VecDeque<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = ready.pop_front() {
        order.push(tasks[i]);
        for &j in &adj[i] {
            in_degree[j] -= 1;
            if in_degree[j] == 0 {
                ready.push_back(j);
            }
        }
    }
    if order.len() != n {
        // Cyclic (not Type A) — caller has already rejected this, but fall
        // back to declaration order for robustness.
        return tasks;
    }
    order
}

/// The Phase 1 backend: executes functionally with unbounded FIFOs while
/// recording the simulation graph.
#[derive(Debug)]
struct TraceBackend<'d> {
    design: &'d Design,
    clock: ModuleClock,
    graph: CsrGraphBuilder,
    fifo_values: Vec<VecDeque<i64>>,
    fifo_writes: Vec<Vec<NodeId>>,
    fifo_reads: Vec<Vec<NodeId>>,
    end_nodes: Vec<NodeId>,
    last_event: Option<(NodeId, u64)>,
    arrays: Vec<Vec<i64>>,
    axi_read_state: Vec<AxiReadState>,
    axi_write_state: Vec<AxiWriteState>,
    outputs: OutputMap,
}

/// One outstanding AXI read burst: snapshotted values plus per-burst beat
/// pacing (first beat ready `request_latency` cycles after the request,
/// subsequent beats one cycle apart) and the graph node of its request, so
/// each beat can be anchored at `request + latency + beat` — a constraint
/// that must survive the Phase 2 write-after-read overlay, unlike the
/// trace's program-order distances, which only reflect the unbounded run.
#[derive(Debug, Clone)]
struct ReadBurst {
    values: VecDeque<i64>,
    ready: u64,
    req_node: NodeId,
    beats_done: u64,
}

#[derive(Debug, Default, Clone)]
struct AxiReadState {
    bursts: VecDeque<ReadBurst>,
}

/// One outstanding AXI write burst (beats address `addr + beats_done`).
#[derive(Debug, Clone)]
struct WriteBurst {
    addr: i64,
    len: i64,
    beats_done: i64,
}

#[derive(Debug, Default, Clone)]
struct AxiWriteState {
    bursts: VecDeque<WriteBurst>,
    last_beat_cycle: u64,
    last_beat_node: Option<NodeId>,
}

impl<'d> TraceBackend<'d> {
    fn new(design: &'d Design) -> Self {
        TraceBackend {
            design,
            clock: ModuleClock::starting_at(1),
            graph: CsrGraphBuilder::new(),
            fifo_values: vec![VecDeque::new(); design.fifos.len()],
            fifo_writes: vec![Vec::new(); design.fifos.len()],
            fifo_reads: vec![Vec::new(); design.fifos.len()],
            end_nodes: Vec::new(),
            last_event: None,
            arrays: design.arrays.iter().map(|a| a.init.clone()).collect(),
            axi_read_state: vec![AxiReadState::default(); design.axi_ports.len()],
            axi_write_state: vec![AxiWriteState::default(); design.axi_ports.len()],
            outputs: OutputMap::new(),
        }
    }

    fn begin_task(&mut self) {
        // Every dataflow task starts at cycle 1, concurrently in hardware.
        self.clock = ModuleClock::starting_at(1);
        self.last_event = None;
    }

    fn finish_task(&mut self) {
        let end_cycle = self.clock.block_exit();
        let node = self.event_node(end_cycle, end_cycle);
        self.end_nodes.push(node);
    }

    /// Creates an event node with base time `commit` (its cycle in the
    /// unbounded trace — a valid lower bound, since Phase 2 overlays only
    /// ever delay) and chains it to the previous event of the same task
    /// with the static-schedule distance `request - prev_commit`. For FIFO
    /// accesses the trace never stalls, so `request == commit`; AXI beats
    /// and write responses can stall on the bus, and their extra wait must
    /// live in an explicit anchor edge (re-evaluated per depth vector), not
    /// in the program-order distance (frozen at its trace value).
    fn event_node(&mut self, request: u64, commit: u64) -> NodeId {
        let node = self.graph.add_node(commit);
        if let Some((prev, prev_commit)) = self.last_event {
            self.graph
                .add_edge(prev, node, request as i64 - prev_commit as i64);
        }
        self.last_event = Some((node, commit));
        node
    }
}

impl SimBackend for TraceBackend<'_> {
    fn block_start(
        &mut self,
        _module: ModuleId,
        _block: BlockId,
        schedule: BlockSchedule,
        back_edge: bool,
    ) -> Result<(), SimError> {
        self.clock.enter_block(&schedule, back_edge);
        Ok(())
    }

    fn fifo_read(&mut self, fifo: FifoId, offset: u64) -> Result<i64, SimError> {
        let value = self.fifo_values[fifo.index()]
            .pop_front()
            .ok_or(SimError::ReadWhileEmpty { fifo })?;
        let cycle = self.clock.op_cycle(offset);
        let node = self.event_node(cycle, cycle);
        let reads = self.fifo_reads[fifo.index()].len();
        // Read-after-write: the r-th read happens strictly after the r-th write.
        let write_node = self.fifo_writes[fifo.index()][reads];
        self.graph.add_edge(write_node, node, 1);
        self.fifo_reads[fifo.index()].push(node);
        Ok(value)
    }

    fn fifo_write(&mut self, fifo: FifoId, value: i64, offset: u64) -> Result<(), SimError> {
        self.fifo_values[fifo.index()].push_back(value);
        let cycle = self.clock.op_cycle(offset);
        let node = self.event_node(cycle, cycle);
        self.fifo_writes[fifo.index()].push(node);
        Ok(())
    }

    fn fifo_nb_read(&mut self, fifo: FifoId, _offset: u64) -> Result<Option<i64>, SimError> {
        // Non-blocking accesses require cycle-dependent functional behaviour,
        // which a decoupled Phase 1 cannot provide.
        Err(SimError::Aborted {
            reason: format!(
                "non-blocking read on fifo '{}' is not supported by LightningSim",
                self.design.fifo(fifo).name
            ),
        })
    }

    fn fifo_nb_write(&mut self, fifo: FifoId, _value: i64, _offset: u64) -> Result<bool, SimError> {
        Err(SimError::Aborted {
            reason: format!(
                "non-blocking write on fifo '{}' is not supported by LightningSim",
                self.design.fifo(fifo).name
            ),
        })
    }

    fn fifo_empty(&mut self, fifo: FifoId, _offset: u64) -> Result<bool, SimError> {
        Err(SimError::Aborted {
            reason: format!(
                "fifo status check on '{}' is not supported by LightningSim",
                self.design.fifo(fifo).name
            ),
        })
    }

    fn fifo_full(&mut self, fifo: FifoId, offset: u64) -> Result<bool, SimError> {
        self.fifo_empty(fifo, offset)
    }

    fn array_load(&mut self, array: ArrayId, index: i64) -> Result<i64, SimError> {
        let data = &self.arrays[array.index()];
        usize::try_from(index)
            .ok()
            .and_then(|i| data.get(i).copied())
            .ok_or(SimError::ArrayOutOfBounds {
                array,
                index,
                len: data.len(),
            })
    }

    fn array_store(&mut self, array: ArrayId, index: i64, value: i64) -> Result<(), SimError> {
        let data = &mut self.arrays[array.index()];
        let len = data.len();
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| data.get_mut(i))
            .ok_or(SimError::ArrayOutOfBounds { array, index, len })?;
        *slot = value;
        Ok(())
    }

    fn axi_read_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        len: i64,
        offset: u64,
    ) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let cycle = self.clock.op_cycle(offset);
        let mut values = VecDeque::with_capacity(usize::try_from(len).unwrap_or(0));
        let data = &self.arrays[port.array.index()];
        for beat in 0..len {
            let idx = addr + beat;
            let value = usize::try_from(idx)
                .ok()
                .and_then(|i| data.get(i).copied())
                .ok_or(SimError::ArrayOutOfBounds {
                    array: port.array,
                    index: idx,
                    len: data.len(),
                })?;
            values.push_back(value);
        }
        let req_node = self.event_node(cycle, cycle);
        self.axi_read_state[bus.index()]
            .bursts
            .push_back(ReadBurst {
                values,
                ready: cycle + port.request_latency,
                req_node,
                beats_done: 0,
            });
        Ok(())
    }

    fn axi_read(&mut self, bus: AxiId, offset: u64) -> Result<i64, SimError> {
        let request = self.clock.op_cycle(offset);
        let port_latency = self.design.axi_port(bus).request_latency;
        let (value, ready, req_node, beat, done) = {
            let state = &mut self.axi_read_state[bus.index()];
            let front = state
                .bursts
                .front_mut()
                .ok_or_else(|| SimError::AxiProtocolViolation {
                    detail: "axi read beat without outstanding request".to_owned(),
                })?;
            let value = front
                .values
                .pop_front()
                .expect("burst has a value per beat");
            let beat = front.beats_done;
            front.beats_done += 1;
            (
                value,
                front.ready + beat,
                front.req_node,
                beat,
                front.values.is_empty(),
            )
        };
        if done {
            self.axi_read_state[bus.index()].bursts.pop_front();
        }
        let commit = self.clock.stall_until(offset, ready);
        let node = self.event_node(request, commit);
        self.graph
            .add_edge(req_node, node, (port_latency + beat) as i64);
        Ok(value)
    }

    fn axi_write_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        len: i64,
        _offset: u64,
    ) -> Result<(), SimError> {
        self.axi_write_state[bus.index()]
            .bursts
            .push_back(WriteBurst {
                addr,
                len,
                beats_done: 0,
            });
        Ok(())
    }

    fn axi_write(&mut self, bus: AxiId, value: i64, offset: u64) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let cycle = self.clock.op_cycle(offset);
        let state = &mut self.axi_write_state[bus.index()];
        let front = state
            .bursts
            .front_mut()
            .ok_or_else(|| SimError::AxiProtocolViolation {
                detail: "axi write beat without outstanding request".to_owned(),
            })?;
        let idx = front.addr + front.beats_done;
        front.beats_done += 1;
        let done = front.beats_done >= front.len;
        state.last_beat_cycle = cycle;
        if done {
            state.bursts.pop_front();
        }
        let data = &mut self.arrays[port.array.index()];
        let len = data.len();
        let slot = usize::try_from(idx)
            .ok()
            .and_then(|i| data.get_mut(i))
            .ok_or(SimError::ArrayOutOfBounds {
                array: port.array,
                index: idx,
                len,
            })?;
        *slot = value;
        let node = self.event_node(cycle, cycle);
        self.axi_write_state[bus.index()].last_beat_node = Some(node);
        Ok(())
    }

    fn axi_write_resp(&mut self, bus: AxiId, offset: u64) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let request = self.clock.op_cycle(offset);
        let ready = self.axi_write_state[bus.index()].last_beat_cycle + port.request_latency;
        let commit = self.clock.stall_until(offset, ready);
        let node = self.event_node(request, commit);
        if let Some(beat_node) = self.axi_write_state[bus.index()].last_beat_node {
            self.graph
                .add_edge(beat_node, node, port.request_latency as i64);
        }
        Ok(())
    }

    fn output(&mut self, output: OutputId, value: i64) -> Result<(), SimError> {
        self.outputs
            .insert(self.design.output_name(output).to_owned(), value);
        Ok(())
    }

    fn call_enter(&mut self, _callee: ModuleId, offset: u64) -> Result<(), SimError> {
        self.clock.call_enter(offset);
        Ok(())
    }

    fn call_exit(&mut self, _callee: ModuleId) -> Result<(), SimError> {
        self.clock.call_exit();
        Ok(())
    }
}
