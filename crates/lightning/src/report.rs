//! LightningSim baseline results.

use omnisim_ir::design::OutputMap;
use std::time::Duration;

/// Result of a complete LightningSim run (Phase 1 + Phase 2).
#[derive(Debug, Clone)]
pub struct LightningReport {
    /// Functional outputs observed during Phase 1.
    pub outputs: OutputMap,
    /// End-to-end latency in clock cycles computed by Phase 2.
    pub total_cycles: u64,
    /// Wall-clock time spent in Phase 1 (trace + graph generation).
    pub phase1_time: Duration,
    /// Wall-clock time spent in Phase 2 (stall analysis).
    pub phase2_time: Duration,
    /// Number of nodes in the simulation graph.
    pub node_count: usize,
    /// Number of edges in the simulation graph (excluding Phase 2 overlays).
    pub edge_count: usize,
}

impl LightningReport {
    /// Convenience accessor: value of a named output, if written.
    pub fn output(&self, name: &str) -> Option<i64> {
        self.outputs.get(name).copied()
    }

    /// Total wall-clock time of both phases.
    pub fn total_time(&self) -> Duration {
        self.phase1_time + self.phase2_time
    }
}
