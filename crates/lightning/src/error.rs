//! Error type for the LightningSim baseline.

use omnisim_graph::CycleError;
use omnisim_interp::SimError;
use omnisim_ir::DesignClass;
use std::error::Error;
use std::fmt;

/// Errors returned by the LightningSim baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LightningError {
    /// The design is not Type A: it uses non-blocking FIFO accesses, cyclic
    /// dataflow dependencies or unbounded loops, which a decoupled two-phase
    /// simulator cannot handle (§3 of the OmniSim paper).
    Unsupported {
        /// The design's inferred class.
        class: DesignClass,
        /// Human-readable reason.
        reason: String,
    },
    /// The functional execution of Phase 1 failed.
    Execution(SimError),
    /// The simulation graph was cyclic (indicates a simulator bug).
    Graph(CycleError),
    /// Phase 2 was requested with a FIFO-depth vector of the wrong length.
    DepthMismatch {
        /// Number of FIFOs in the design.
        expected: usize,
        /// Number of depths supplied.
        got: usize,
    },
    /// Phase 2 was requested before Phase 1 produced a trace.
    TraceMissing,
}

impl fmt::Display for LightningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LightningError::Unsupported { class, reason } => {
                write!(
                    f,
                    "design is Type {class}, not supported by LightningSim: {reason}"
                )
            }
            LightningError::Execution(e) => write!(f, "phase 1 execution failed: {e}"),
            LightningError::Graph(e) => write!(f, "simulation graph error: {e}"),
            LightningError::DepthMismatch { expected, got } => write!(
                f,
                "fifo depth vector has {got} entries but the design has {expected} fifos"
            ),
            LightningError::TraceMissing => {
                write!(f, "phase 2 requested before phase 1 trace generation")
            }
        }
    }
}

impl Error for LightningError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LightningError::Execution(e) => Some(e),
            LightningError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for LightningError {
    fn from(value: SimError) -> Self {
        LightningError::Execution(value)
    }
}

impl From<CycleError> for LightningError {
    fn from(value: CycleError) -> Self {
        LightningError::Graph(value)
    }
}
