//! Unified-API adapter: the LightningSim baseline as a [`Simulator`]
//! backend, plus the conversions from the native report and error types.

use crate::error::LightningError;
use crate::report::LightningReport;
use crate::simulator::LightningSimulator;
use omnisim_api::{Capabilities, SimFailure, SimOutcome, SimReport, Simulator};
use omnisim_ir::Design;

/// The decoupled two-phase LightningSim baseline as a unified [`Simulator`]
/// backend.
///
/// Cycle-accurate, but only for Type A designs: Type B/C designs are
/// rejected with [`SimFailure::Unsupported`], mirroring the "not supported"
/// cells of the paper's comparison tables. The Phase 1 trace rides along in
/// [`SimReport::extras`] as a [`LightningTrace`](crate::LightningTrace),
/// whose `analyze` method re-answers FIFO-depth changes without re-running
/// Phase 1 — LightningSim's incremental DSE mode.
#[derive(Debug, Default, Clone, Copy)]
pub struct LightningBackend;

impl Simulator for LightningBackend {
    fn name(&self) -> &'static str {
        "lightning"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            cycle_accurate: true,
            handles_type_b: false,
            handles_type_c: false,
            produces_timings: true,
            incremental_dse: true,
            // The trace payload answers depth queries but is not an
            // `IncrementalState`, so it cannot compile into a `SweepPlan`.
            compiled_dse: false,
        }
    }

    fn simulate(&self, design: &Design) -> Result<SimReport, SimFailure> {
        let mut simulator = LightningSimulator::new(design)?;
        let report = simulator.simulate()?;
        let mut unified = SimReport::from(report);
        if let Some(trace) = simulator.into_trace() {
            unified.extras.insert(trace);
        }
        Ok(unified)
    }
}

impl From<LightningReport> for SimReport {
    fn from(report: LightningReport) -> SimReport {
        // A LightningReport only exists for completed runs; unsupported
        // designs and execution failures never produce one.
        let mut unified = SimReport::new("lightning", SimOutcome::Completed);
        unified.outputs = report.outputs.clone();
        unified.total_cycles = Some(report.total_cycles);
        unified.timings.execution = report.phase1_time;
        unified.timings.finalize = report.phase2_time;
        unified.extras.insert(report);
        unified
    }
}

impl From<LightningError> for SimFailure {
    fn from(error: LightningError) -> SimFailure {
        match &error {
            LightningError::Unsupported { .. } => {
                SimFailure::unsupported("lightning", error.to_string())
            }
            LightningError::Graph(_) => SimFailure::internal("lightning", error.to_string()),
            _ => SimFailure::execution("lightning", error.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_graph::CycleError;
    use omnisim_ir::design::OutputMap;
    use omnisim_ir::DesignClass;
    use std::time::Duration;

    #[test]
    fn report_converts_with_phase_timings() {
        let mut outputs = OutputMap::new();
        outputs.insert("sum".into(), 136);
        let report = LightningReport {
            outputs,
            total_cycles: 21,
            phase1_time: Duration::from_millis(5),
            phase2_time: Duration::from_millis(1),
            node_count: 32,
            edge_count: 31,
        };
        let unified: SimReport = report.into();
        assert_eq!(unified.backend, "lightning");
        assert!(unified.outcome.is_completed());
        assert_eq!(unified.total_cycles, Some(21));
        assert_eq!(unified.timings.execution, Duration::from_millis(5));
        assert_eq!(unified.timings.finalize, Duration::from_millis(1));
        assert_eq!(unified.timings.total(), Duration::from_millis(6));
        let native = unified.extras.get::<LightningReport>().unwrap();
        assert_eq!(native.node_count, 32);
    }

    #[test]
    fn unsupported_designs_map_to_unsupported_failures() {
        let failure: SimFailure = LightningError::Unsupported {
            class: DesignClass::TypeC,
            reason: "non-blocking FIFO accesses".into(),
        }
        .into();
        assert!(failure.is_unsupported());
        assert_eq!(failure.backend(), "lightning");
        assert!(failure.to_string().contains("non-blocking"));
    }

    #[test]
    fn graph_bugs_map_to_internal_failures() {
        let failure: SimFailure = LightningError::Graph(CycleError).into();
        assert!(matches!(failure, SimFailure::Internal { .. }));
    }

    #[test]
    fn other_errors_map_to_execution_failures() {
        let failure: SimFailure = LightningError::TraceMissing.into();
        assert!(matches!(failure, SimFailure::Execution { .. }));
    }
}
