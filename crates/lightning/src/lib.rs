//! # omnisim-lightning
//!
//! A re-implementation of the **LightningSim / LightningSimV2** approach
//! (Sarkar & Hao, FCCM 2023/2024): the state-of-the-art baseline the OmniSim
//! paper compares against in Table 5.
//!
//! LightningSim fully decouples functionality simulation from performance
//! simulation:
//!
//! 1. **Phase 1 — trace generation (untimed).** The design is executed
//!    sequentially with unbounded FIFOs. Every FIFO access becomes a node of
//!    a simulation graph with its statically scheduled cycle as the node's
//!    base time; read-after-write edges link the *r*-th read of a FIFO to its
//!    *r*-th write. Everything is stored in a compressed-sparse-row graph
//!    ([`omnisim_graph::CsrGraph`]), which is cheap to traverse but cannot be
//!    extended afterwards.
//! 2. **Phase 2 — stall analysis (timed).** Given concrete FIFO depths, the
//!    depth-dependent write-after-read constraints are overlaid on the graph
//!    and a longest-path pass produces the cycle-accurate latency. Changing
//!    FIFO depths only repeats Phase 2, which is what makes LightningSim's
//!    incremental design-space exploration fast.
//!
//! The decoupling is exactly why the approach only works for **Type A**
//! designs (blocking-only, acyclic): for Type B/C designs the *functional*
//! behaviour depends on hardware cycles, which are not known until Phase 2.
//! [`LightningSimulator::new`] therefore rejects such designs with
//! [`LightningError::Unsupported`], mirroring the "not supported" entries of
//! the paper's comparison tables.
//!
//! ## Via the unified API
//!
//! [`LightningBackend`] exposes the baseline through the workspace-wide
//! [`omnisim_api::Simulator`] trait; Type B/C designs surface as
//! [`omnisim_api::SimFailure::Unsupported`]:
//!
//! ```
//! use omnisim_api::Simulator;
//! use omnisim_lightning::LightningBackend;
//! use omnisim_ir::{DesignBuilder, Expr};
//!
//! let mut d = DesignBuilder::new("pc");
//! let out = d.output("sum");
//! let q = d.fifo("q", 2);
//! let p = d.function("p", |m| {
//!     m.counted_loop("i", 8, 1, |b| {
//!         let i = b.var_expr("i");
//!         b.fifo_write(q, i.add(Expr::imm(1)));
//!     });
//! });
//! let c = d.function("c", |m| {
//!     let acc = m.var("acc");
//!     m.entry(|b| { b.assign(acc, Expr::imm(0)); });
//!     m.counted_loop("i", 8, 1, |b| {
//!         let v = b.fifo_read(q);
//!         b.assign(acc, Expr::var(acc).add(Expr::var(v)));
//!     });
//!     m.exit(|b| { b.output(out, Expr::var(acc)); });
//! });
//! d.dataflow_top("top", [p, c]);
//! let design = d.build().unwrap();
//!
//! let backend = LightningBackend;
//! assert!(!backend.capabilities().handles_type_c);
//! let report = backend.simulate(&design).unwrap();
//! assert_eq!(report.output("sum"), Some(36));
//! assert!(report.total_cycles.unwrap() > 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
mod error;
mod report;
mod simulator;
mod trace;
mod unified;

pub use error::LightningError;
pub use report::LightningReport;
pub use simulator::LightningSimulator;
pub use trace::LightningTrace;
pub use unified::{CompiledLightning, LightningBackend};
