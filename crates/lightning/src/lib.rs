//! # omnisim-lightning
//!
//! A re-implementation of the **LightningSim / LightningSimV2** approach
//! (Sarkar & Hao, FCCM 2023/2024): the state-of-the-art baseline the OmniSim
//! paper compares against in Table 5.
//!
//! LightningSim fully decouples functionality simulation from performance
//! simulation:
//!
//! 1. **Phase 1 — trace generation (untimed).** The design is executed
//!    sequentially with unbounded FIFOs. Every FIFO access becomes a node of
//!    a simulation graph with its statically scheduled cycle as the node's
//!    base time; read-after-write edges link the *r*-th read of a FIFO to its
//!    *r*-th write. Everything is stored in a compressed-sparse-row graph
//!    ([`omnisim_graph::CsrGraph`]), which is cheap to traverse but cannot be
//!    extended afterwards.
//! 2. **Phase 2 — stall analysis (timed).** Given concrete FIFO depths, the
//!    depth-dependent write-after-read constraints are overlaid on the graph
//!    and a longest-path pass produces the cycle-accurate latency. Changing
//!    FIFO depths only repeats Phase 2, which is what makes LightningSim's
//!    incremental design-space exploration fast.
//!
//! The decoupling is exactly why the approach only works for **Type A**
//! designs (blocking-only, acyclic): for Type B/C designs the *functional*
//! behaviour depends on hardware cycles, which are not known until Phase 2.
//! [`LightningSimulator::new`] therefore rejects such designs with
//! [`LightningError::Unsupported`], mirroring the "not supported" entries of
//! the paper's comparison tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod report;
mod simulator;
mod trace;

pub use error::LightningError;
pub use report::LightningReport;
pub use simulator::LightningSimulator;
pub use trace::LightningTrace;
