//! Versioned binary codec for the baseline's compiled artifact.
//!
//! A [`CompiledLightning`] is the Phase 1 trace — the frozen CSR simulation
//! graph, the per-FIFO access-node orders and the functional outputs — plus
//! the pre-analyzed declared-depth cycle count. Phase 1 is the expensive
//! half of LightningSim (it executes the whole design), so warm-starting
//! from this encoding skips exactly the cost the two-phase split was built
//! to amortize. Phase 1 runs tasks sequentially, so the trace is
//! deterministic and encodings are canonical without any extra
//! normalization pass.
//!
//! The design is not embedded (the store keys artifacts by design content
//! hash); decode cross-checks the supplied design's name and declared
//! depths against the artifact as a cheap wrong-design guard.

use crate::trace::LightningTrace;
use crate::unified::CompiledLightning;
use omnisim_api::SimTimings;
use omnisim_codec::{frame, unframe, ByteReader, ByteWriter, CodecError};
use omnisim_graph::{CsrGraphBuilder, NodeId};
use omnisim_ir::design::OutputMap;
use omnisim_ir::Design;

/// Magic bytes of an encoded baseline artifact: "OmniSim Artifact /
/// Lightning".
pub const LIGHTNING_MAGIC: [u8; 4] = *b"OSAL";
/// Current baseline-artifact encoding version.
pub const LIGHTNING_VERSION: u16 = 1;

/// Encodes a compiled baseline artifact into a framed, checksummed byte
/// vector.
pub fn encode_compiled(compiled: &CompiledLightning) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(4096);
    w.str(&compiled.design_name);
    w.seq(compiled.declared_depths.iter(), |w, &depth| w.usize(depth));
    w.opt(compiled.baseline_cycles, |w, cycles| w.u64(cycles));
    let trace = &compiled.trace;
    w.seq(trace.graph.base_times().iter(), |w, &base| w.u64(base));
    w.usize(trace.graph.edge_count());
    for edge in trace.graph.edges() {
        w.u32(edge.from.0);
        w.u32(edge.to.0);
        w.i64(edge.weight);
    }
    w.seq(trace.fifo_writes.iter(), |w, nodes| {
        w.seq(nodes.iter(), |w, node| w.u32(node.0));
    });
    w.seq(trace.fifo_reads.iter(), |w, nodes| {
        w.seq(nodes.iter(), |w, node| w.u32(node.0));
    });
    w.seq(trace.end_nodes.iter(), |w, node| w.u32(node.0));
    w.seq(trace.outputs.iter(), |w, (name, &value)| {
        w.str(name);
        w.i64(value);
    });
    frame(LIGHTNING_MAGIC, LIGHTNING_VERSION, &w.into_bytes())
}

/// Decodes an artifact encoded by [`encode_compiled`] against the design it
/// was compiled from.
///
/// # Errors
///
/// Any [`CodecError`]; dangling node references and artifacts that do not
/// belong to `design` surface as [`CodecError::Invalid`].
pub fn decode_compiled(design: &Design, bytes: &[u8]) -> Result<CompiledLightning, CodecError> {
    let payload = unframe(LIGHTNING_MAGIC, LIGHTNING_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let design_name = r.str()?;
    let declared_depths = r.seq(|r| r.usize())?;
    if design_name != design.name || declared_depths != design.fifo_depths() {
        return Err(CodecError::Invalid(format!(
            "artifact belongs to design '{design_name}', not '{}'",
            design.name
        )));
    }
    let baseline_cycles = r.opt(|r| r.u64())?;
    let base = r.seq(|r| r.u64())?;
    let nodes = base.len();
    let node = |raw: u32| -> Result<NodeId, CodecError> {
        if (raw as usize) < nodes {
            Ok(NodeId(raw))
        } else {
            Err(CodecError::Invalid(format!(
                "node n{raw} out of range (graph has {nodes} nodes)"
            )))
        }
    };
    let mut builder = CsrGraphBuilder::new();
    for &b in &base {
        builder.add_node(b);
    }
    let edge_count = r.len()?;
    for _ in 0..edge_count {
        let from = node(r.u32()?)?;
        let to = node(r.u32()?)?;
        let weight = r.i64()?;
        builder.add_edge(from, to, weight);
    }
    let graph = builder.build();
    let fifo_writes = r.seq(|r| r.seq(|r| node(r.u32()?)))?;
    let fifo_reads = r.seq(|r| r.seq(|r| node(r.u32()?)))?;
    let end_nodes = r.seq(|r| node(r.u32()?))?;
    let mut outputs = OutputMap::new();
    let entries = r.len()?;
    for _ in 0..entries {
        let name = r.str()?;
        let value = r.i64()?;
        outputs.insert(name, value);
    }
    r.finish()?;
    if fifo_writes.len() != design.fifos.len() || fifo_reads.len() != design.fifos.len() {
        return Err(CodecError::Invalid(format!(
            "artifact has {} fifo orders but the design has {} fifos",
            fifo_writes.len(),
            design.fifos.len()
        )));
    }
    Ok(CompiledLightning {
        design_name,
        declared_depths,
        baseline_cycles,
        trace: LightningTrace {
            graph,
            fifo_writes,
            fifo_reads,
            end_nodes,
            outputs,
        },
        compile_timings: SimTimings::default(),
        replays: std::sync::atomic::AtomicU64::new(0),
        reanalyses: std::sync::atomic::AtomicU64::new(0),
    })
}
