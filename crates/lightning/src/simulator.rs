//! The two-phase LightningSim driver.

use crate::error::LightningError;
use crate::report::LightningReport;
use crate::trace::{generate_trace, LightningTrace};
use omnisim_ir::taxonomy::{classify, DesignClass};
use omnisim_ir::Design;
use std::time::Instant;

/// The decoupled two-phase simulator (LightningSim baseline).
///
/// # Example
///
/// ```
/// use omnisim_lightning::LightningSimulator;
/// use omnisim_ir::{DesignBuilder, Expr};
///
/// let mut d = DesignBuilder::new("pc");
/// let data = d.array("data", (1..=16).collect::<Vec<i64>>());
/// let out = d.output("sum");
/// let q = d.fifo("q", 2);
/// let p = d.function("producer", |m| {
///     m.counted_loop("i", 16, 1, |b| {
///         let i = b.var_expr("i");
///         let v = b.array_load(data, i);
///         b.fifo_write(q, Expr::var(v));
///     });
/// });
/// let c = d.function("consumer", |m| {
///     let acc = m.var("acc");
///     m.entry(|b| { b.assign(acc, Expr::imm(0)); });
///     m.counted_loop("i", 16, 1, |b| {
///         let v = b.fifo_read(q);
///         b.assign(acc, Expr::var(acc).add(Expr::var(v)));
///     });
///     m.exit(|b| { b.output(out, Expr::var(acc)); });
/// });
/// d.dataflow_top("top", [p, c]);
/// let design = d.build().unwrap();
///
/// let mut sim = LightningSimulator::new(&design).unwrap();
/// let report = sim.simulate().unwrap();
/// assert_eq!(report.outputs["sum"], 136);
/// assert!(report.total_cycles > 16);
/// ```
#[derive(Debug)]
pub struct LightningSimulator<'d> {
    design: &'d Design,
    trace: Option<LightningTrace>,
}

impl<'d> LightningSimulator<'d> {
    /// Creates a simulator for a design, rejecting designs that are not
    /// Type A in the paper's taxonomy.
    ///
    /// # Errors
    ///
    /// Returns [`LightningError::Unsupported`] for Type B / Type C designs.
    pub fn new(design: &'d Design) -> Result<Self, LightningError> {
        let report = classify(design);
        if report.class != DesignClass::TypeA {
            let mut reasons = Vec::new();
            if report.uses_nonblocking {
                reasons.push("non-blocking FIFO accesses");
            }
            if report.cyclic_dataflow {
                reasons.push("cyclic dataflow dependencies");
            }
            if report.has_infinite_loop {
                reasons.push("unbounded loops");
            }
            return Err(LightningError::Unsupported {
                class: report.class,
                reason: reasons.join(", "),
            });
        }
        Ok(LightningSimulator {
            design,
            trace: None,
        })
    }

    /// The design under simulation.
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// Phase 1: generates (or returns the cached) execution trace and
    /// simulation graph.
    ///
    /// # Errors
    ///
    /// Returns [`LightningError::Execution`] if functional execution fails.
    pub fn trace(&mut self) -> Result<&LightningTrace, LightningError> {
        if self.trace.is_none() {
            self.trace = Some(generate_trace(self.design)?);
        }
        Ok(self.trace.as_ref().expect("trace just generated"))
    }

    /// Consumes the simulator, returning the cached Phase 1 trace (if Phase 1
    /// has run). Used by the unified API to hand the trace to callers as a
    /// [`SimReport`](omnisim_api::SimReport) extra.
    pub fn into_trace(self) -> Option<LightningTrace> {
        self.trace
    }

    /// Phase 2 only: recomputes the latency for new FIFO depths, reusing the
    /// cached Phase 1 trace. This is LightningSim's incremental
    /// design-space-exploration mode.
    ///
    /// # Errors
    ///
    /// Returns [`LightningError::TraceMissing`] if Phase 1 has not run yet.
    pub fn analyze_with_depths(&self, depths: &[usize]) -> Result<u64, LightningError> {
        let trace = self.trace.as_ref().ok_or(LightningError::TraceMissing)?;
        trace.analyze(depths)
    }

    /// Runs both phases with the design's declared FIFO depths.
    ///
    /// # Errors
    ///
    /// Propagates Phase 1 and Phase 2 errors.
    pub fn simulate(&mut self) -> Result<LightningReport, LightningError> {
        let phase1_start = Instant::now();
        if self.trace.is_none() {
            self.trace = Some(generate_trace(self.design)?);
        }
        let phase1_time = phase1_start.elapsed();
        let trace = self.trace.as_ref().expect("trace generated above");

        let phase2_start = Instant::now();
        let depths = self.design.fifo_depths();
        let total_cycles = trace.analyze(&depths)?;
        let phase2_time = phase2_start.elapsed();

        Ok(LightningReport {
            outputs: trace.outputs.clone(),
            total_cycles,
            phase1_time,
            phase2_time,
            node_count: trace.node_count(),
            edge_count: trace.edge_count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::{DesignBuilder, Expr};
    use omnisim_rtlsim::RtlSimulator;

    fn producer_consumer(n: i64, depth: usize, consumer_ii: u64) -> Design {
        let mut d = DesignBuilder::new("pc");
        let data = d.array("data", (1..=n).collect::<Vec<i64>>());
        let out = d.output("sum");
        let q = d.fifo("q", depth);
        let p = d.function("producer", |m| {
            m.counted_loop("i", n, 1, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(data, i);
                b.fifo_write(q, Expr::var(v));
            });
        });
        let c = d.function("consumer", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", n, consumer_ii, |b| {
                let v = b.fifo_read(q);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        d.build().unwrap()
    }

    #[test]
    fn matches_reference_simulator_on_type_a() {
        for (n, depth, ii) in [(32, 2, 1), (64, 4, 2), (100, 1, 1), (16, 16, 4)] {
            let design = producer_consumer(n, depth, ii);
            let reference = RtlSimulator::new(&design).run().unwrap();
            let mut sim = LightningSimulator::new(&design).unwrap();
            let report = sim.simulate().unwrap();
            assert_eq!(report.outputs, reference.outputs, "outputs for n={n}");
            assert_eq!(
                report.total_cycles, reference.total_cycles,
                "cycles for n={n} depth={depth} ii={ii}"
            );
        }
    }

    #[test]
    fn incremental_phase2_matches_full_runs() {
        let design = producer_consumer(64, 2, 2);
        let mut sim = LightningSimulator::new(&design).unwrap();
        sim.trace().unwrap();
        for depth in [1usize, 2, 4, 16, 64] {
            let incremental = sim.analyze_with_depths(&[depth]).unwrap();
            let full_design = design.with_fifo_depths(&[depth]);
            let reference = RtlSimulator::new(&full_design).run().unwrap();
            assert_eq!(
                incremental, reference.total_cycles,
                "incremental analysis for depth {depth}"
            );
        }
    }

    #[test]
    fn deeper_fifos_never_slow_down_the_design() {
        let design = producer_consumer(50, 1, 3);
        let mut sim = LightningSimulator::new(&design).unwrap();
        sim.trace().unwrap();
        let mut prev = u64::MAX;
        for depth in [1usize, 2, 4, 8, 64] {
            let cycles = sim.analyze_with_depths(&[depth]).unwrap();
            assert!(cycles <= prev);
            prev = cycles;
        }
    }

    #[test]
    fn type_b_designs_are_rejected() {
        // Cyclic dependency through blocking FIFOs (Fig. 4 Ex. 3).
        let mut d = DesignBuilder::new("cyclic");
        let req = d.fifo("req", 2);
        let resp = d.fifo("resp", 2);
        let out = d.output("sum");
        let controller = d.function("controller", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 8, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(req, i);
                let v = b.fifo_read(resp);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        let processor = d.function("processor", |m| {
            m.counted_loop("i", 8, 1, |b| {
                let v = b.fifo_read(req);
                b.fifo_write(resp, Expr::var(v).mul(Expr::imm(2)));
            });
        });
        d.dataflow_top("top", [controller, processor]);
        let design = d.build().unwrap();
        match LightningSimulator::new(&design) {
            Err(LightningError::Unsupported { reason, .. }) => {
                assert!(reason.contains("cyclic"));
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn depth_mismatch_is_reported() {
        let design = producer_consumer(8, 2, 1);
        let mut sim = LightningSimulator::new(&design).unwrap();
        sim.trace().unwrap();
        assert!(matches!(
            sim.analyze_with_depths(&[1, 2]),
            Err(LightningError::DepthMismatch { .. })
        ));
        let fresh = LightningSimulator::new(&design).unwrap();
        assert!(matches!(
            fresh.analyze_with_depths(&[1]),
            Err(LightningError::TraceMissing)
        ));
    }
}
