//! Adjacency-list simulation graph used by the OmniSim engine (§7.3.1).
//!
//! Optimised for online construction: nodes and edges are appended while the
//! simulation is still running, node times are maintained incrementally as a
//! lower bound, and a full longest-path recomputation (with optional overlay
//! edges) is run at finalization. One predecessor edge is stored inline with
//! each node so the common single-predecessor case needs no extra allocation
//! or pointer chasing.

use crate::algo::{longest_path, CycleError, Edge};
use crate::NodeId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PredEdge {
    from: NodeId,
    weight: i64,
}

#[derive(Debug, Clone, Default)]
struct NodePreds {
    /// Inline first predecessor: the overwhelmingly common case.
    first: Option<PredEdge>,
    /// Rare additional predecessors.
    rest: Vec<PredEdge>,
}

/// Online-constructible simulation graph with incremental node times.
///
/// Node times maintained online are *lower bounds*: they include every edge
/// known when the edge was added, but edges added later (for example
/// depth-dependent write-after-read constraints discovered at finalization)
/// only take effect after [`EventGraph::recompute`] or
/// [`EventGraph::times_with_overlay`].
#[derive(Debug, Clone, Default)]
pub struct EventGraph {
    base: Vec<u64>,
    preds: Vec<NodePreds>,
    time: Vec<u64>,
    edge_count: usize,
}

impl EventGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        EventGraph {
            base: Vec::with_capacity(nodes),
            preds: Vec::with_capacity(nodes),
            time: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a node with the given intrinsic earliest cycle and returns its id.
    pub fn add_node(&mut self, base: u64) -> NodeId {
        let id = NodeId::from_index(self.base.len());
        self.base.push(base);
        self.preds.push(NodePreds::default());
        self.time.push(base);
        id
    }

    /// Adds an edge: `to` happens at least `weight` cycles after `from`.
    ///
    /// The target node's online time is raised immediately if the source
    /// node's current time already implies a later cycle; times of nodes
    /// downstream of `to` are *not* re-propagated until
    /// [`EventGraph::recompute`].
    ///
    /// # Panics
    ///
    /// Panics if either node does not exist.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: i64) {
        assert!(from.index() < self.base.len(), "unknown source node");
        assert!(to.index() < self.base.len(), "unknown target node");
        let pred = PredEdge { from, weight };
        let slot = &mut self.preds[to.index()];
        if slot.first.is_none() {
            slot.first = Some(pred);
        } else {
            slot.rest.push(pred);
        }
        self.edge_count += 1;
        let cand = self.time[from.index()].saturating_add_signed(weight);
        if cand > self.time[to.index()] {
            self.time[to.index()] = cand;
        }
    }

    /// Raises the intrinsic earliest cycle of a node (never lowers it).
    pub fn raise_base(&mut self, node: NodeId, base: u64) {
        if base > self.base[node.index()] {
            self.base[node.index()] = base;
        }
        if base > self.time[node.index()] {
            self.time[node.index()] = base;
        }
    }

    /// The current (online, lower-bound) time of a node.
    pub fn time(&self, node: NodeId) -> u64 {
        self.time[node.index()]
    }

    /// The intrinsic earliest cycle of a node.
    pub fn base(&self, node: NodeId) -> u64 {
        self.base[node.index()]
    }

    /// The latest online node time, i.e. the current latency lower bound.
    pub fn max_time(&self) -> u64 {
        self.time.iter().copied().max().unwrap_or(0)
    }

    /// All intrinsic base cycles, indexed by node.
    pub fn base_times(&self) -> &[u64] {
        &self.base
    }

    /// All current node times, indexed by node. Online these are lower
    /// bounds; after [`EventGraph::recompute`] they are exact.
    pub fn times(&self) -> &[u64] {
        &self.time
    }

    /// Reassembles a graph from its serialized parts: per-node base cycles,
    /// per-node stored times, and the edge list in [`EventGraph::edges`]
    /// order.
    ///
    /// The stored `time` values are adopted **verbatim** — unlike
    /// [`EventGraph::add_edge`], no online lower-bound propagation runs — so
    /// a decoded graph reports exactly the times the encoded graph held
    /// (including online lower bounds frozen mid-construction, which a
    /// replayed construction could not reproduce). Feeding edges back in
    /// `edges()` order also reproduces the inline-first/spilled-rest
    /// predecessor layout, making encode(decode(g)) byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if `base` and `time` differ in length or an edge references a
    /// node out of range; decoders validate before calling.
    pub fn from_parts(
        base: Vec<u64>,
        time: Vec<u64>,
        edges: impl IntoIterator<Item = Edge>,
    ) -> Self {
        assert_eq!(base.len(), time.len(), "base/time length mismatch");
        let nodes = base.len();
        let mut graph = EventGraph {
            base,
            preds: vec![NodePreds::default(); nodes],
            time,
            edge_count: 0,
        };
        for edge in edges {
            assert!(edge.from.index() < nodes, "edge source out of range");
            assert!(edge.to.index() < nodes, "edge target out of range");
            let pred = PredEdge {
                from: edge.from,
                weight: edge.weight,
            };
            let slot = &mut graph.preds[edge.to.index()];
            if slot.first.is_none() {
                slot.first = Some(pred);
            } else {
                slot.rest.push(pred);
            }
            graph.edge_count += 1;
        }
        graph
    }

    /// Iterates over all edges of the graph.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + Clone + '_ {
        self.preds.iter().enumerate().flat_map(|(to, preds)| {
            let to = NodeId::from_index(to);
            preds
                .first
                .iter()
                .chain(preds.rest.iter())
                .map(move |p| Edge::new(p.from, to, p.weight))
        })
    }

    /// Recomputes exact longest-path times for every node in place and
    /// returns the design latency (the maximum node time).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph contains a dependency cycle.
    pub fn recompute(&mut self) -> Result<u64, CycleError> {
        let times = longest_path(&self.base, self.edges())?;
        self.time = times;
        Ok(self.max_time())
    }

    /// Computes exact longest-path times with extra overlay edges, without
    /// mutating the graph. Used to evaluate alternative FIFO depths during
    /// finalization and incremental re-simulation.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the combined edge set is cyclic.
    pub fn times_with_overlay(&self, overlay: &[Edge]) -> Result<Vec<u64>, CycleError> {
        longest_path(&self.base, self.edges().chain(overlay.iter().copied()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_times_are_lower_bounds() {
        let mut g = EventGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(2);
        let c = g.add_node(0);
        g.add_edge(a, b, 5);
        assert_eq!(g.time(b), 5, "edge raised the online time");
        g.add_edge(b, c, 1);
        assert_eq!(g.time(c), 6);
        // Adding a later edge into `a` does not automatically propagate…
        g.raise_base(a, 10);
        assert_eq!(g.time(c), 6);
        // …until recompute.
        let latency = g.recompute().unwrap();
        assert_eq!(g.time(b), 15);
        assert_eq!(g.time(c), 16);
        assert_eq!(latency, 16);
    }

    #[test]
    fn overlay_edges_do_not_mutate() {
        let mut g = EventGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        g.add_edge(a, b, 1);
        let overlay = vec![Edge::new(b, a, 0)]; // would create a cycle
        assert!(g.times_with_overlay(&overlay).is_err());
        // Graph itself is still acyclic and usable.
        assert_eq!(g.recompute().unwrap(), 1);

        let mut g2 = EventGraph::new();
        let x = g2.add_node(0);
        let y = g2.add_node(0);
        let z = g2.add_node(0);
        g2.add_edge(x, y, 2);
        let times = g2.times_with_overlay(&[Edge::new(y, z, 7)]).unwrap();
        assert_eq!(times, vec![0, 2, 9]);
        // Overlay did not change stored times.
        assert_eq!(g2.time(z), 0);
    }

    #[test]
    fn multiple_predecessors_use_inline_then_spill() {
        let mut g = EventGraph::new();
        let a = g.add_node(3);
        let b = g.add_node(4);
        let c = g.add_node(0);
        g.add_edge(a, c, 1);
        g.add_edge(b, c, 1);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.recompute().unwrap(), 5);
        assert_eq!(g.time(c), 5);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn max_time_of_empty_graph_is_zero() {
        let g = EventGraph::new();
        assert_eq!(g.max_time(), 0);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown target node")]
    fn edge_to_missing_node_panics() {
        let mut g = EventGraph::new();
        let a = g.add_node(0);
        g.add_edge(a, NodeId(5), 1);
    }

    #[test]
    fn from_parts_preserves_stored_times_and_edge_order() {
        let mut g = EventGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(2);
        let c = g.add_node(0);
        g.add_edge(a, b, 5);
        g.add_edge(b, c, 1);
        g.add_edge(a, c, 9);
        // Raise a base *after* the edges: the online times of b/c are now
        // stale lower bounds that a naive add_edge replay cannot reproduce.
        g.raise_base(a, 10);

        let rebuilt =
            EventGraph::from_parts(g.base_times().to_vec(), g.times().to_vec(), g.edges());
        assert_eq!(rebuilt.len(), g.len());
        assert_eq!(rebuilt.edge_count(), g.edge_count());
        assert_eq!(rebuilt.times(), g.times(), "stored times adopted verbatim");
        assert_eq!(rebuilt.base_times(), g.base_times());
        let original: Vec<_> = g.edges().collect();
        let roundtrip: Vec<_> = rebuilt.edges().collect();
        assert_eq!(original, roundtrip, "edges() order survives the rebuild");
        assert_eq!(rebuilt.max_time(), g.max_time());

        // And both recompute to the same exact times.
        let mut g2 = rebuilt.clone();
        let mut g1 = g.clone();
        assert_eq!(g1.recompute().unwrap(), g2.recompute().unwrap());
        assert_eq!(g1.times(), g2.times());
    }
}
