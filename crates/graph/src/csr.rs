//! Compressed-sparse-row simulation graph, as used by LightningSimV2.
//!
//! The CSR form is built once, after trace generation has finished, and is
//! then traversed for stall analysis. Its node/edge set cannot be extended
//! afterwards — the limitation §7.3.1 of the paper describes and the reason
//! the OmniSim engine builds its *online* graph as a [`crate::EventGraph`]
//! instead. That limitation only applies while the graph is still growing,
//! though: once a run has finished, its event graph is immutable, and the
//! compiled DSE engine (`omnisim-dse`) freezes it into a `CsrGraph` (plus a
//! cached [`CsrGraph::topo_order`] and a [`CsrGraph::transpose`] for
//! incoming-edge traversal) precisely *because* the frozen form is so much
//! cheaper to re-traverse. A new baseline run simply recompiles a new plan,
//! so "cannot be extended" never bites: extension and fast traversal happen
//! in different phases on different representations.

use crate::algo::{longest_path, CycleError, Edge};
use crate::NodeId;

/// Accumulates nodes and edges before freezing them into a [`CsrGraph`].
#[derive(Debug, Clone, Default)]
pub struct CsrGraphBuilder {
    base: Vec<u64>,
    edges: Vec<Edge>,
}

impl CsrGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given intrinsic earliest cycle.
    pub fn add_node(&mut self, base: u64) -> NodeId {
        let id = NodeId::from_index(self.base.len());
        self.base.push(base);
        id
    }

    /// Adds an edge: `to` happens at least `weight` cycles after `from`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: i64) {
        self.edges.push(Edge::new(from, to, weight));
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Freezes the builder into a compressed-sparse-row graph.
    pub fn build(self) -> CsrGraph {
        let n = self.base.len();
        let mut counts = vec![0usize; n + 1];
        for e in &self.edges {
            counts[e.from.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut col = vec![0u32; self.edges.len()];
        let mut weight = vec![0i64; self.edges.len()];
        let mut cursor = counts.clone();
        for e in &self.edges {
            let slot = cursor[e.from.index()];
            col[slot] = e.to.0;
            weight[slot] = e.weight;
            cursor[e.from.index()] += 1;
        }
        CsrGraph {
            base: self.base,
            row_ptr: counts,
            col,
            weight,
        }
    }
}

/// A frozen simulation graph in compressed-sparse-row form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    base: Vec<u64>,
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    weight: Vec<i64>,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.col.len()
    }

    /// The intrinsic earliest cycle of a node.
    pub fn base(&self, node: NodeId) -> u64 {
        self.base[node.index()]
    }

    /// The intrinsic earliest cycle of every node, indexed by node.
    pub fn base_times(&self) -> &[u64] {
        &self.base
    }

    /// Iterates over the out-edges of one node as `(target, weight)` pairs.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, i64)> + '_ {
        let from = node.index();
        (self.row_ptr[from]..self.row_ptr[from + 1])
            .map(move |i| (NodeId(self.col[i]), self.weight[i]))
    }

    /// Builds the transposed graph (every edge reversed, same weights and
    /// base times), for incoming-edge traversal.
    pub fn transpose(&self) -> CsrGraph {
        let mut builder = CsrGraphBuilder::new();
        for &base in &self.base {
            builder.add_node(base);
        }
        for e in self.edges() {
            builder.add_edge(e.to, e.from, e.weight);
        }
        builder.build()
    }

    /// Computes a topological order of the nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, CycleError> {
        self.topo_order_with(std::iter::empty())
    }

    /// Computes a topological order consistent with the graph's edges *and*
    /// an extra set of ordering edges (whose weights are ignored). The
    /// compiled DSE engine uses this to obtain one order that stays valid
    /// for every depth-parameterized write-after-read overlay.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the combined edge set is cyclic.
    pub fn topo_order_with(
        &self,
        extra: impl Iterator<Item = Edge> + Clone,
    ) -> Result<Vec<NodeId>, CycleError> {
        let n = self.base.len();
        let mut in_degree = vec![0u32; n];
        for e in self.edges() {
            in_degree[e.to.index()] += 1;
        }
        for e in extra.clone() {
            in_degree[e.to.index()] += 1;
        }
        let mut extra_successors: Vec<Vec<u32>> = vec![Vec::new(); n];
        for e in extra {
            extra_successors[e.from.index()].push(e.to.0);
        }
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<u32> = (0..n as u32)
            .filter(|&i| in_degree[i as usize] == 0)
            .collect();
        while let Some(v) = ready.pop() {
            order.push(NodeId(v));
            for (w, _) in self.successors(NodeId(v)) {
                in_degree[w.index()] -= 1;
                if in_degree[w.index()] == 0 {
                    ready.push(w.0);
                }
            }
            for &w in &extra_successors[v as usize] {
                in_degree[w as usize] -= 1;
                if in_degree[w as usize] == 0 {
                    ready.push(w);
                }
            }
        }
        if order.len() != n {
            return Err(CycleError);
        }
        Ok(order)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + Clone + '_ {
        (0..self.base.len()).flat_map(move |from| {
            (self.row_ptr[from]..self.row_ptr[from + 1]).map(move |i| {
                Edge::new(
                    NodeId::from_index(from),
                    NodeId(self.col[i]),
                    self.weight[i],
                )
            })
        })
    }

    /// Computes longest-path times with optional overlay edges (the
    /// depth-dependent write-after-read constraints of Phase 2).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the combined edge set is cyclic.
    pub fn times_with_overlay(&self, overlay: &[Edge]) -> Result<Vec<u64>, CycleError> {
        longest_path(&self.base, self.edges().chain(overlay.iter().copied()))
    }

    /// Computes longest-path times for the graph alone.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph is cyclic.
    pub fn times(&self) -> Result<Vec<u64>, CycleError> {
        self.times_with_overlay(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_longest_path_matches_expectation() {
        let mut b = CsrGraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(0);
        let n2 = b.add_node(0);
        let n3 = b.add_node(2);
        b.add_edge(n0, n1, 3);
        b.add_edge(n1, n2, 4);
        b.add_edge(n0, n3, 1);
        let g = b.build();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        let t = g.times().unwrap();
        assert_eq!(t, vec![0, 3, 7, 2]);
    }

    #[test]
    fn overlay_edges_change_result_without_rebuilding() {
        let mut b = CsrGraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(0);
        let n2 = b.add_node(0);
        b.add_edge(n0, n1, 1);
        b.add_edge(n1, n2, 1);
        let g = b.build();
        let plain = g.times().unwrap();
        assert_eq!(plain, vec![0, 1, 2]);
        let with = g
            .times_with_overlay(&[Edge::new(NodeId(0), NodeId(2), 10)])
            .unwrap();
        assert_eq!(with, vec![0, 1, 10]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrGraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.times().unwrap(), Vec::<u64>::new());
        assert_eq!(g.topo_order().unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn successors_match_edges() {
        let mut b = CsrGraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(0);
        let n2 = b.add_node(0);
        b.add_edge(n0, n1, 3);
        b.add_edge(n0, n2, 4);
        b.add_edge(n1, n2, 5);
        let g = b.build();
        let from0: Vec<_> = g.successors(n0).collect();
        assert_eq!(from0, vec![(n1, 3), (n2, 4)]);
        let from2: Vec<_> = g.successors(n2).collect();
        assert!(from2.is_empty());
        assert_eq!(g.base_times(), &[0, 0, 0]);
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let mut b = CsrGraphBuilder::new();
        let n0 = b.add_node(7);
        let n1 = b.add_node(0);
        b.add_edge(n0, n1, 2);
        let g = b.build();
        let t = g.transpose();
        assert_eq!(t.len(), 2);
        assert_eq!(t.base(n0), 7);
        let preds_of_1: Vec<_> = t.successors(n1).collect();
        assert_eq!(preds_of_1, vec![(n0, 2)]);
        assert!(t.successors(n0).next().is_none());
    }

    #[test]
    fn topo_order_respects_base_and_extra_edges() {
        let mut b = CsrGraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(0);
        let n2 = b.add_node(0);
        b.add_edge(n0, n1, 1);
        let g = b.build();
        // Without extra edges, any order with n0 before n1 is valid.
        let order = g.topo_order().unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(n0) < pos(n1));
        // An extra ordering edge n1 -> n2 must be respected too.
        let order = g
            .topo_order_with([Edge::new(n1, n2, 0)].iter().copied())
            .unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(n0) < pos(n1));
        assert!(pos(n1) < pos(n2));
        // Extra edges that close a cycle are detected.
        assert_eq!(
            g.topo_order_with([Edge::new(n1, n0, 0)].iter().copied())
                .unwrap_err(),
            CycleError
        );
    }
}
