//! Compressed-sparse-row simulation graph, as used by LightningSimV2.
//!
//! The CSR form is built once, after trace generation has finished, and is
//! then traversed for stall analysis. It cannot be extended afterwards —
//! which is exactly the limitation §7.3.1 of the paper describes and the
//! reason the OmniSim engine uses [`crate::EventGraph`] instead.

use crate::algo::{longest_path, CycleError, Edge};
use crate::NodeId;

/// Accumulates nodes and edges before freezing them into a [`CsrGraph`].
#[derive(Debug, Clone, Default)]
pub struct CsrGraphBuilder {
    base: Vec<u64>,
    edges: Vec<Edge>,
}

impl CsrGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given intrinsic earliest cycle.
    pub fn add_node(&mut self, base: u64) -> NodeId {
        let id = NodeId::from_index(self.base.len());
        self.base.push(base);
        id
    }

    /// Adds an edge: `to` happens at least `weight` cycles after `from`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: i64) {
        self.edges.push(Edge::new(from, to, weight));
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Freezes the builder into a compressed-sparse-row graph.
    pub fn build(self) -> CsrGraph {
        let n = self.base.len();
        let mut counts = vec![0usize; n + 1];
        for e in &self.edges {
            counts[e.from.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut col = vec![0u32; self.edges.len()];
        let mut weight = vec![0i64; self.edges.len()];
        let mut cursor = counts.clone();
        for e in &self.edges {
            let slot = cursor[e.from.index()];
            col[slot] = e.to.0;
            weight[slot] = e.weight;
            cursor[e.from.index()] += 1;
        }
        CsrGraph {
            base: self.base,
            row_ptr: counts,
            col,
            weight,
        }
    }
}

/// A frozen simulation graph in compressed-sparse-row form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    base: Vec<u64>,
    row_ptr: Vec<usize>,
    col: Vec<u32>,
    weight: Vec<i64>,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.col.len()
    }

    /// The intrinsic earliest cycle of a node.
    pub fn base(&self, node: NodeId) -> u64 {
        self.base[node.index()]
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + Clone + '_ {
        (0..self.base.len()).flat_map(move |from| {
            (self.row_ptr[from]..self.row_ptr[from + 1]).map(move |i| {
                Edge::new(
                    NodeId::from_index(from),
                    NodeId(self.col[i]),
                    self.weight[i],
                )
            })
        })
    }

    /// Computes longest-path times with optional overlay edges (the
    /// depth-dependent write-after-read constraints of Phase 2).
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the combined edge set is cyclic.
    pub fn times_with_overlay(&self, overlay: &[Edge]) -> Result<Vec<u64>, CycleError> {
        longest_path(&self.base, self.edges().chain(overlay.iter().copied()))
    }

    /// Computes longest-path times for the graph alone.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError`] if the graph is cyclic.
    pub fn times(&self) -> Result<Vec<u64>, CycleError> {
        self.times_with_overlay(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_longest_path_matches_expectation() {
        let mut b = CsrGraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(0);
        let n2 = b.add_node(0);
        let n3 = b.add_node(2);
        b.add_edge(n0, n1, 3);
        b.add_edge(n1, n2, 4);
        b.add_edge(n0, n3, 1);
        let g = b.build();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 3);
        let t = g.times().unwrap();
        assert_eq!(t, vec![0, 3, 7, 2]);
    }

    #[test]
    fn overlay_edges_change_result_without_rebuilding() {
        let mut b = CsrGraphBuilder::new();
        let n0 = b.add_node(0);
        let n1 = b.add_node(0);
        let n2 = b.add_node(0);
        b.add_edge(n0, n1, 1);
        b.add_edge(n1, n2, 1);
        let g = b.build();
        let plain = g.times().unwrap();
        assert_eq!(plain, vec![0, 1, 2]);
        let with = g
            .times_with_overlay(&[Edge::new(NodeId(0), NodeId(2), 10)])
            .unwrap();
        assert_eq!(with, vec![0, 1, 10]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrGraphBuilder::new().build();
        assert!(g.is_empty());
        assert_eq!(g.times().unwrap(), Vec::<u64>::new());
    }
}
