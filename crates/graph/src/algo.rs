//! Longest-path analysis over simulation graphs.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// A timing constraint: the target node happens at least `weight` cycles
/// after the source node.
///
/// Weights may be negative: sequential chaining of events inside a pipelined
/// loop uses the (possibly negative) static-schedule distance between
/// consecutive events so that a stall in one iteration propagates to the
/// next iteration without over-constraining it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Minimum cycle distance from source to target (may be negative).
    pub weight: i64,
}

impl Edge {
    /// Convenience constructor.
    pub fn new(from: NodeId, to: NodeId, weight: i64) -> Self {
        Edge { from, to, weight }
    }
}

/// Returned when a simulation graph contains a dependency cycle, which would
/// mean an event must happen strictly after itself. Well-formed simulations
/// never produce one; encountering it indicates a simulator bug or a
/// corrupted graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleError;

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation graph contains a dependency cycle")
    }
}

impl Error for CycleError {}

/// Computes the longest-path time of every node.
///
/// `base[i]` is the intrinsic earliest cycle of node `i`; `edges` yields all
/// timing constraints (including any overlay edges). The result satisfies
/// `time[i] = max(base[i], max over incoming edges (time[from] + weight))`.
///
/// Runs Kahn's algorithm over the successor lists, so the complexity is
/// `O(nodes + edges)`.
///
/// # Errors
///
/// Returns [`CycleError`] if the constraints are cyclic.
pub fn longest_path(
    base: &[u64],
    edges: impl Iterator<Item = Edge> + Clone,
) -> Result<Vec<u64>, CycleError> {
    let n = base.len();
    let mut successors: Vec<Vec<(u32, i64)>> = vec![Vec::new(); n];
    let mut in_degree: Vec<u32> = vec![0; n];
    for e in edges.clone() {
        successors[e.from.index()].push((e.to.0, e.weight));
        in_degree[e.to.index()] += 1;
    }

    let mut time = base.to_vec();
    let mut ready: Vec<u32> = (0..n as u32)
        .filter(|&i| in_degree[i as usize] == 0)
        .collect();
    let mut processed = 0usize;
    while let Some(v) = ready.pop() {
        processed += 1;
        let tv = time[v as usize];
        for &(w, weight) in &successors[v as usize] {
            let cand = tv.saturating_add_signed(weight);
            if cand > time[w as usize] {
                time[w as usize] = cand;
            }
            in_degree[w as usize] -= 1;
            if in_degree[w as usize] == 0 {
                ready.push(w);
            }
        }
    }
    if processed != n {
        return Err(CycleError);
    }
    Ok(time)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn empty_graph_keeps_base_times() {
        let times = longest_path(&[3, 1, 4], std::iter::empty()).unwrap();
        assert_eq!(times, vec![3, 1, 4]);
    }

    #[test]
    fn chain_accumulates_weights() {
        let base = vec![0, 0, 0, 0];
        let edges = [
            Edge::new(n(0), n(1), 2),
            Edge::new(n(1), n(2), 3),
            Edge::new(n(2), n(3), 1),
        ];
        let times = longest_path(&base, edges.iter().copied()).unwrap();
        assert_eq!(times, vec![0, 2, 5, 6]);
    }

    #[test]
    fn base_times_act_as_lower_bounds() {
        let base = vec![0, 10, 0];
        let edges = [Edge::new(n(0), n(1), 1), Edge::new(n(1), n(2), 1)];
        let times = longest_path(&base, edges.iter().copied()).unwrap();
        assert_eq!(times, vec![0, 10, 11]);
    }

    #[test]
    fn diamond_takes_the_longer_branch() {
        let base = vec![0; 4];
        let edges = [
            Edge::new(n(0), n(1), 5),
            Edge::new(n(0), n(2), 1),
            Edge::new(n(1), n(3), 1),
            Edge::new(n(2), n(3), 1),
        ];
        let times = longest_path(&base, edges.iter().copied()).unwrap();
        assert_eq!(times[3], 6);
    }

    #[test]
    fn cycle_is_detected() {
        let base = vec![0, 0];
        let edges = [Edge::new(n(0), n(1), 1), Edge::new(n(1), n(0), 1)];
        assert_eq!(
            longest_path(&base, edges.iter().copied()).unwrap_err(),
            CycleError
        );
    }
}
