//! Strongly connected components (iterative Tarjan).
//!
//! The static analyzer (`omnisim-analyze`) condenses the task/FIFO dataflow
//! graph into its SCCs to find request/response channel cycles; the event
//! graphs elsewhere in this crate are DAGs by construction and never need
//! this. The implementation is an explicit-stack Tarjan so deep chains
//! cannot overflow the call stack, and allocates exactly four `Vec`s of
//! `num_nodes` length plus the output.

use crate::NodeId;

const UNVISITED: u32 = u32::MAX;

/// Computes the strongly connected components of a directed graph given as
/// an edge list over `num_nodes` nodes (self-loops and duplicate edges are
/// allowed). Components are returned in *reverse topological order* of the
/// condensation — a component only appears after every component it has an
/// edge into — and each component lists its member nodes in discovery order.
///
/// Edges referencing nodes outside `0..num_nodes` are ignored.
pub fn strongly_connected_components(
    num_nodes: usize,
    edges: &[(NodeId, NodeId)],
) -> Vec<Vec<NodeId>> {
    // Build a CSR adjacency out of the edge list.
    let mut degree = vec![0u32; num_nodes];
    let in_range = |n: NodeId| n.index() < num_nodes;
    for &(from, to) in edges {
        if in_range(from) && in_range(to) {
            degree[from.index()] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(num_nodes + 1);
    let mut total = 0u32;
    for &d in &degree {
        offsets.push(total);
        total += d;
    }
    offsets.push(total);
    let mut adj = vec![0u32; total as usize];
    let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
    for &(from, to) in edges {
        if in_range(from) && in_range(to) {
            let c = &mut cursor[from.index()];
            adj[*c as usize] = to.0;
            *c += 1;
        }
    }

    let mut index = vec![UNVISITED; num_nodes];
    let mut lowlink = vec![0u32; num_nodes];
    let mut on_stack = vec![false; num_nodes];
    let mut stack: Vec<u32> = Vec::new();
    // Explicit DFS frames: (node, next successor slot to visit).
    let mut frames: Vec<(u32, u32)> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    for root in 0..num_nodes {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root as u32, offsets[root]));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut slot)) = frames.last_mut() {
            let vi = v as usize;
            if *slot < offsets[vi + 1] {
                let w = adj[*slot as usize] as usize;
                *slot += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, offsets[w]));
                } else if on_stack[w] {
                    lowlink[vi] = lowlink[vi].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[vi]);
                }
                if lowlink[vi] == index[vi] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack cannot underflow");
                        on_stack[w as usize] = false;
                        component.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    component.reverse();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// True if `component` (as returned by [`strongly_connected_components`]) is
/// cyclic: it has more than one node, or its single node has a self-edge.
pub fn component_is_cyclic(component: &[NodeId], edges: &[(NodeId, NodeId)]) -> bool {
    match component {
        [] => false,
        [single] => edges.iter().any(|&(f, t)| f == *single && t == *single),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(from: u32, to: u32) -> (NodeId, NodeId) {
        (NodeId(from), NodeId(to))
    }

    #[test]
    fn singletons_without_edges() {
        let sccs = strongly_connected_components(3, &[]);
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // 0 <-> 1 -> 2 <-> 3, plus isolated 4.
        let edges = [e(0, 1), e(1, 0), e(1, 2), e(2, 3), e(3, 2)];
        let sccs = strongly_connected_components(5, &edges);
        assert_eq!(sccs.len(), 3);
        let find = |n: u32| {
            sccs.iter()
                .position(|c| c.contains(&NodeId(n)))
                .expect("node in some scc")
        };
        assert_eq!(find(0), find(1));
        assert_eq!(find(2), find(3));
        assert_ne!(find(0), find(2));
        // Reverse topological: {2,3} is downstream of {0,1}, so it pops first.
        assert!(find(2) < find(0));
    }

    #[test]
    fn self_loop_is_cyclic_but_singleton_is_not() {
        let edges = [e(0, 0), e(0, 1)];
        let sccs = strongly_connected_components(2, &edges);
        let zero = sccs
            .iter()
            .find(|c| c.contains(&NodeId(0)))
            .expect("scc of node 0");
        let one = sccs
            .iter()
            .find(|c| c.contains(&NodeId(1)))
            .expect("scc of node 1");
        assert!(component_is_cyclic(zero, &edges));
        assert!(!component_is_cyclic(one, &edges));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 200_000;
        let edges: Vec<_> = (0..n - 1).map(|i| e(i, i + 1)).collect();
        let sccs = strongly_connected_components(n as usize, &edges);
        assert_eq!(sccs.len(), n as usize);
    }

    #[test]
    fn out_of_range_edges_are_ignored() {
        let sccs = strongly_connected_components(2, &[e(0, 7), e(9, 1), e(0, 1)]);
        assert_eq!(sccs.len(), 2);
    }
}
