//! # omnisim-graph
//!
//! Simulation-graph data structures shared by the LightningSim baseline and
//! the OmniSim engine.
//!
//! A *simulation graph* records the events of one simulation run — FIFO
//! accesses, task starts/ends, block boundaries — as nodes, and the timing
//! constraints between them as weighted edges (`to` happens at least `weight`
//! cycles after `from`). Every node also carries a *base* cycle, the earliest
//! time permitted by its module's own static schedule. The hardware time of a
//! node is the longest-path value over base times and edges; the design
//! latency is the maximum over all nodes.
//!
//! Two representations are provided, mirroring §7.3.1 of the paper:
//!
//! * [`EventGraph`] — an adjacency-list graph optimised for *online*
//!   construction and zero-copy traversal of a partially built graph, with
//!   one inline predecessor edge per node to minimise pointer chasing. This
//!   is what the OmniSim engine uses.
//! * [`CsrGraph`] — a compressed-sparse-row graph built once after trace
//!   generation, as LightningSimV2 does. Cheaper to traverse, but it cannot
//!   be extended after construction.
//!
//! Both support *overlay edges*: longest-path analysis can be re-run with an
//! extra set of edges (the depth-dependent write-after-read constraints)
//! without mutating the graph, which is what makes incremental FIFO-depth
//! re-simulation (§7.2, Table 6) cheap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adjacency;
pub mod algo;
pub mod csr;
pub mod scc;

pub use adjacency::EventGraph;
pub use algo::{longest_path, CycleError, Edge};
pub use csr::{CsrGraph, CsrGraphBuilder};
pub use scc::{component_is_cyclic, strongly_connected_components};

use std::fmt;

/// Identifies a node of a simulation graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node identifier from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
