//! Operations, basic blocks and terminators.
//!
//! Operations are the hardware-visible actions of a module: local arithmetic
//! (`Assign`), array accesses, blocking and non-blocking FIFO accesses, FIFO
//! status checks, AXI transactions, sub-function calls and testbench-visible
//! output writes. The set mirrors the request types of Table 1 in the paper.

use crate::expr::Expr;
use crate::ids::{ArrayId, AxiId, BlockId, FifoId, ModuleId, OutputId, VarId};
use crate::schedule::BlockSchedule;

/// One operation of a basic block.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// `dst = expr`
    Assign {
        /// Destination variable.
        dst: VarId,
        /// Value to assign.
        expr: Expr,
    },
    /// `dst = array[index]`
    ///
    /// Out-of-bounds indices are a simulation error (the C-sim model turns
    /// them into the segmentation faults reported in Table 3 of the paper).
    ArrayLoad {
        /// Destination variable.
        dst: VarId,
        /// Array to read.
        array: ArrayId,
        /// Element index.
        index: Expr,
    },
    /// `array[index] = value`
    ArrayStore {
        /// Array to write.
        array: ArrayId,
        /// Element index.
        index: Expr,
        /// Value to store.
        value: Expr,
    },
    /// Blocking FIFO write (`fifo.write(value)`): stalls while the FIFO is full.
    FifoWrite {
        /// Target FIFO.
        fifo: FifoId,
        /// Value to push.
        value: Expr,
    },
    /// Blocking FIFO read (`dst = fifo.read()`): stalls while the FIFO is empty.
    FifoRead {
        /// Source FIFO.
        fifo: FifoId,
        /// Destination variable.
        dst: VarId,
    },
    /// Non-blocking FIFO write (`ok = fifo.write_nb(value)`).
    FifoNbWrite {
        /// Target FIFO.
        fifo: FifoId,
        /// Value to push when the write succeeds.
        value: Expr,
        /// Receives 1 on success, 0 on failure. `None` if the result is unused.
        success: Option<VarId>,
    },
    /// Non-blocking FIFO read (`ok = fifo.read_nb(dst)`).
    FifoNbRead {
        /// Source FIFO.
        fifo: FifoId,
        /// Receives the popped value on success; unchanged on failure.
        dst: VarId,
        /// Receives 1 on success, 0 on failure. `None` if the result is unused.
        success: Option<VarId>,
    },
    /// FIFO emptiness check (`dst = fifo.empty()`).
    ///
    /// A `dst` of `None` marks a check whose result is never used; the
    /// redundant-check elision pass (§7.3.2) produces these markers so the
    /// simulators can skip the query entirely.
    FifoEmpty {
        /// FIFO being inspected.
        fifo: FifoId,
        /// Receives 1 when empty, 0 otherwise.
        dst: Option<VarId>,
    },
    /// FIFO fullness check (`dst = fifo.full()`).
    FifoFull {
        /// FIFO being inspected.
        fifo: FifoId,
        /// Receives 1 when full, 0 otherwise.
        dst: Option<VarId>,
    },
    /// Issues an AXI read request for `len` beats starting at `addr`.
    AxiReadReq {
        /// AXI port.
        bus: AxiId,
        /// Start address (element index into the backing array).
        addr: Expr,
        /// Burst length in beats.
        len: Expr,
    },
    /// Consumes one beat of a previously issued AXI read burst.
    AxiRead {
        /// AXI port.
        bus: AxiId,
        /// Destination variable for the beat data.
        dst: VarId,
    },
    /// Issues an AXI write request for `len` beats starting at `addr`.
    AxiWriteReq {
        /// AXI port.
        bus: AxiId,
        /// Start address (element index into the backing array).
        addr: Expr,
        /// Burst length in beats.
        len: Expr,
    },
    /// Sends one beat of a previously issued AXI write burst.
    AxiWrite {
        /// AXI port.
        bus: AxiId,
        /// Beat data.
        value: Expr,
    },
    /// Waits for the write response of the last AXI write burst.
    AxiWriteResp {
        /// AXI port.
        bus: AxiId,
    },
    /// Calls another (non-dataflow) function module, passing `args` into its
    /// first `args.len()` variables and storing its return value into `dst`.
    Call {
        /// Callee module.
        callee: ModuleId,
        /// Argument expressions, bound to the callee's lowest-numbered variables.
        args: Vec<Expr>,
        /// Receives the callee's return value, if any.
        dst: Option<VarId>,
    },
    /// Writes a testbench-visible scalar output.
    Output {
        /// Output slot.
        output: OutputId,
        /// Value to record.
        value: Expr,
    },
}

impl Op {
    /// Returns the FIFO touched by this operation, if any.
    pub fn fifo(&self) -> Option<FifoId> {
        match self {
            Op::FifoWrite { fifo, .. }
            | Op::FifoRead { fifo, .. }
            | Op::FifoNbWrite { fifo, .. }
            | Op::FifoNbRead { fifo, .. }
            | Op::FifoEmpty { fifo, .. }
            | Op::FifoFull { fifo, .. } => Some(*fifo),
            _ => None,
        }
    }

    /// True for non-blocking FIFO accesses and status checks — the operations
    /// whose outcome depends on exact hardware cycles (Table 2 of the paper).
    pub fn is_nonblocking_fifo(&self) -> bool {
        matches!(
            self,
            Op::FifoNbWrite { .. }
                | Op::FifoNbRead { .. }
                | Op::FifoEmpty { dst: Some(_), .. }
                | Op::FifoFull { dst: Some(_), .. }
        )
    }

    /// True if this operation writes data into a FIFO (blocking or not).
    pub fn is_fifo_write(&self) -> bool {
        matches!(self, Op::FifoWrite { .. } | Op::FifoNbWrite { .. })
    }

    /// True if this operation reads data from a FIFO (blocking or not).
    pub fn is_fifo_read(&self) -> bool {
        matches!(self, Op::FifoRead { .. } | Op::FifoNbRead { .. })
    }

    /// Returns the variable whose value the success/result flag of a
    /// non-blocking access or status check is written to, if any.
    pub fn nb_result_var(&self) -> Option<VarId> {
        match self {
            Op::FifoNbWrite { success, .. } | Op::FifoNbRead { success, .. } => *success,
            Op::FifoEmpty { dst, .. } | Op::FifoFull { dst, .. } => *dst,
            _ => None,
        }
    }
}

/// An operation together with its scheduled cycle offset inside the block.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduledOp {
    /// Cycle offset relative to block entry at which the operation executes.
    pub offset: u64,
    /// The operation itself.
    pub op: Op,
}

/// Control-flow terminator of a basic block.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `cond != 0`.
    Branch {
        /// Branch condition.
        cond: Expr,
        /// Successor when the condition is non-zero.
        if_true: BlockId,
        /// Successor when the condition is zero.
        if_false: BlockId,
    },
    /// Return from the module, optionally yielding a value to the caller.
    Return(Option<Expr>),
}

impl Terminator {
    /// Returns the possible successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                if_true, if_false, ..
            } => vec![*if_true, *if_false],
            Terminator::Return(_) => Vec::new(),
        }
    }
}

/// A scheduled basic block.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Block {
    /// Operations in program order, each with its scheduled offset.
    pub ops: Vec<ScheduledOp>,
    /// Control-flow terminator, evaluated at block exit.
    pub terminator: Terminator,
    /// Static schedule of the block.
    pub schedule: BlockSchedule,
}

impl Block {
    /// Creates an empty single-cycle block that returns nothing. Used as a
    /// placeholder by the builder before the block body is filled in.
    pub fn placeholder() -> Self {
        Block {
            ops: Vec::new(),
            terminator: Terminator::Return(None),
            schedule: BlockSchedule::default(),
        }
    }

    /// Iterates over FIFO identifiers referenced by operations in this block.
    pub fn referenced_fifos(&self) -> impl Iterator<Item = FifoId> + '_ {
        self.ops.iter().filter_map(|s| s.op.fifo())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_accessors() {
        let w = Op::FifoWrite {
            fifo: FifoId(1),
            value: Expr::imm(1),
        };
        assert_eq!(w.fifo(), Some(FifoId(1)));
        assert!(w.is_fifo_write());
        assert!(!w.is_fifo_read());
        assert!(!w.is_nonblocking_fifo());

        let nb = Op::FifoNbRead {
            fifo: FifoId(0),
            dst: VarId(0),
            success: Some(VarId(1)),
        };
        assert!(nb.is_nonblocking_fifo());
        assert!(nb.is_fifo_read());
        assert_eq!(nb.nb_result_var(), Some(VarId(1)));
    }

    #[test]
    fn elided_checks_are_not_cycle_dependent() {
        let check = Op::FifoEmpty {
            fifo: FifoId(0),
            dst: None,
        };
        assert!(!check.is_nonblocking_fifo());
        let live = Op::FifoEmpty {
            fifo: FifoId(0),
            dst: Some(VarId(3)),
        };
        assert!(live.is_nonblocking_fifo());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(2)).successors(), vec![BlockId(2)]);
        assert_eq!(Terminator::Return(None).successors(), Vec::<BlockId>::new());
        let b = Terminator::Branch {
            cond: Expr::imm(1),
            if_true: BlockId(1),
            if_false: BlockId(3),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(3)]);
    }

    #[test]
    fn block_referenced_fifos() {
        let block = Block {
            ops: vec![
                ScheduledOp {
                    offset: 0,
                    op: Op::FifoRead {
                        fifo: FifoId(0),
                        dst: VarId(0),
                    },
                },
                ScheduledOp {
                    offset: 1,
                    op: Op::Assign {
                        dst: VarId(1),
                        expr: Expr::imm(0),
                    },
                },
                ScheduledOp {
                    offset: 1,
                    op: Op::FifoWrite {
                        fifo: FifoId(2),
                        value: Expr::var(VarId(1)),
                    },
                },
            ],
            terminator: Terminator::Return(None),
            schedule: BlockSchedule::new(2),
        };
        let fifos: Vec<_> = block.referenced_fifos().collect();
        assert_eq!(fifos, vec![FifoId(0), FifoId(2)]);
    }
}
