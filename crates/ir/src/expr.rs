//! Pure value expressions evaluated by the simulators.
//!
//! Expressions are side-effect free: every hardware-visible action (FIFO and
//! AXI accesses, array stores, output writes) is an [`crate::Op`], never an
//! expression. Values are 64-bit signed integers, which is sufficient to model
//! the integer/fixed-point arithmetic of the paper's benchmark designs.

use crate::ids::VarId;
use std::fmt;

/// Binary operators available in [`Expr::Binary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Min,
    Max,
}

/// Unary operators available in [`Expr::Unary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    LogicalNot,
}

/// A pure expression over module-local variables.
///
/// # Example
///
/// ```
/// use omnisim_ir::expr::Expr;
/// use omnisim_ir::ids::VarId;
///
/// let e = Expr::var(VarId(0)).mul(Expr::imm(2)).add(Expr::imm(1));
/// assert_eq!(e.eval(&|_| 10), 21);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Expr {
    /// A constant value.
    Const(i64),
    /// The current value of a module-local variable.
    Var(VarId),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Selects between two expressions based on a condition (`cond ? a : b`).
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Creates a constant expression.
    pub fn imm(value: i64) -> Self {
        Expr::Const(value)
    }

    /// Creates a variable reference expression.
    pub fn var(id: VarId) -> Self {
        Expr::Var(id)
    }

    /// Builds a select expression `self ? if_true : if_false`.
    pub fn select(self, if_true: Expr, if_false: Expr) -> Self {
        Expr::Select(Box::new(self), Box::new(if_true), Box::new(if_false))
    }

    /// Evaluates the expression with `lookup` providing variable values.
    ///
    /// Division and remainder by zero evaluate to zero, mirroring the
    /// "defined but meaningless" behaviour a hardware divider would exhibit
    /// instead of trapping.
    pub fn eval(&self, lookup: &impl Fn(VarId) -> i64) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(id) => lookup(*id),
            Expr::Unary(op, a) => {
                let a = a.eval(lookup);
                match op {
                    UnOp::Neg => a.wrapping_neg(),
                    UnOp::Not => !a,
                    UnOp::LogicalNot => i64::from(a == 0),
                }
            }
            Expr::Binary(op, a, b) => {
                let a = a.eval(lookup);
                let b = b.eval(lookup);
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                }
            }
            Expr::Select(c, t, f) => {
                if c.eval(lookup) != 0 {
                    t.eval(lookup)
                } else {
                    f.eval(lookup)
                }
            }
        }
    }

    /// Collects every variable referenced by this expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(id) => out.push(*id),
            Expr::Unary(_, a) => a.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Select(c, t, f) => {
                c.collect_vars(out);
                t.collect_vars(out);
                f.collect_vars(out);
            }
        }
    }

    fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }
}

macro_rules! expr_method {
    ($(#[$doc:meta])* $name:ident, $op:ident) => {
        impl Expr {
            $(#[$doc])*
            // The names deliberately mirror `std::ops` — this is a builder
            // DSL producing IR nodes, not an arithmetic implementation.
            #[allow(clippy::should_implement_trait)]
            pub fn $name(self, rhs: Expr) -> Expr {
                Expr::bin(BinOp::$op, self, rhs)
            }
        }
    };
}

expr_method!(
    /// Builds `self + rhs`.
    add, Add
);
expr_method!(
    /// Builds `self - rhs`.
    sub, Sub
);
expr_method!(
    /// Builds `self * rhs`.
    mul, Mul
);
expr_method!(
    /// Builds `self / rhs` (zero when `rhs` is zero).
    div, Div
);
expr_method!(
    /// Builds `self % rhs` (zero when `rhs` is zero).
    rem, Rem
);
expr_method!(
    /// Builds the bitwise AND of the operands.
    bitand, And
);
expr_method!(
    /// Builds the bitwise OR of the operands.
    bitor, Or
);
expr_method!(
    /// Builds the bitwise XOR of the operands.
    bitxor, Xor
);
expr_method!(
    /// Builds `self << rhs`.
    shl, Shl
);
expr_method!(
    /// Builds `self >> rhs` (arithmetic shift).
    shr, Shr
);
expr_method!(
    /// Builds the comparison `self < rhs` (1 or 0).
    lt, Lt
);
expr_method!(
    /// Builds the comparison `self <= rhs` (1 or 0).
    le, Le
);
expr_method!(
    /// Builds the comparison `self > rhs` (1 or 0).
    gt, Gt
);
expr_method!(
    /// Builds the comparison `self >= rhs` (1 or 0).
    ge, Ge
);
expr_method!(
    /// Builds the comparison `self == rhs` (1 or 0).
    eq, Eq
);
expr_method!(
    /// Builds the comparison `self != rhs` (1 or 0).
    ne, Ne
);
expr_method!(
    /// Builds `min(self, rhs)`.
    min, Min
);
expr_method!(
    /// Builds `max(self, rhs)`.
    max, Max
);

impl Expr {
    /// Builds the arithmetic negation of this expression.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }

    /// Builds the logical negation (`== 0`) of this expression.
    pub fn logical_not(self) -> Expr {
        Expr::Unary(UnOp::LogicalNot, Box::new(self))
    }
}

impl From<i64> for Expr {
    fn from(value: i64) -> Self {
        Expr::Const(value)
    }
}

impl From<VarId> for Expr {
    fn from(value: VarId) -> Self {
        Expr::Var(value)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(id) => write!(f, "{id}"),
            Expr::Unary(op, a) => write!(f, "({op:?} {a})"),
            Expr::Binary(op, a, b) => write!(f, "({a} {op:?} {b})"),
            Expr::Select(c, t, e) => write!(f, "({c} ? {t} : {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(vals: &[i64]) -> impl Fn(VarId) -> i64 + '_ {
        move |id: VarId| vals[id.index()]
    }

    #[test]
    fn arithmetic_evaluation() {
        let e = Expr::var(VarId(0))
            .add(Expr::imm(3))
            .mul(Expr::var(VarId(1)));
        assert_eq!(e.eval(&env(&[2, 4])), 20);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(Expr::imm(5).div(Expr::imm(0)).eval(&env(&[])), 0);
        assert_eq!(Expr::imm(5).rem(Expr::imm(0)).eval(&env(&[])), 0);
    }

    #[test]
    fn comparisons_produce_booleans() {
        assert_eq!(Expr::imm(1).lt(Expr::imm(2)).eval(&env(&[])), 1);
        assert_eq!(Expr::imm(3).lt(Expr::imm(2)).eval(&env(&[])), 0);
        assert_eq!(Expr::imm(3).eq(Expr::imm(3)).eval(&env(&[])), 1);
    }

    #[test]
    fn select_behaves_like_ternary() {
        let e = Expr::var(VarId(0)).select(Expr::imm(10), Expr::imm(20));
        assert_eq!(e.eval(&env(&[1])), 10);
        assert_eq!(e.eval(&env(&[0])), 20);
    }

    #[test]
    fn logical_not() {
        assert_eq!(Expr::imm(0).logical_not().eval(&env(&[])), 1);
        assert_eq!(Expr::imm(7).logical_not().eval(&env(&[])), 0);
    }

    #[test]
    fn min_max_and_shifts() {
        assert_eq!(Expr::imm(3).min(Expr::imm(9)).eval(&env(&[])), 3);
        assert_eq!(Expr::imm(3).max(Expr::imm(9)).eval(&env(&[])), 9);
        assert_eq!(Expr::imm(1).shl(Expr::imm(4)).eval(&env(&[])), 16);
        assert_eq!(Expr::imm(-16).shr(Expr::imm(2)).eval(&env(&[])), -4);
    }

    #[test]
    fn collect_vars_lists_every_reference() {
        let e = Expr::var(VarId(0))
            .add(Expr::var(VarId(2)))
            .select(Expr::var(VarId(1)), Expr::imm(0));
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        vars.sort();
        assert_eq!(vars, vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn wrapping_semantics() {
        let e = Expr::imm(i64::MAX).add(Expr::imm(1));
        assert_eq!(e.eval(&env(&[])), i64::MIN);
    }
}
