//! Binary wire codec for [`Design`].
//!
//! The `omnisim-serve` wire protocol ships whole designs from client to
//! server, and the workspace has no serialization dependency, so the IR
//! carries its own hand-rolled little-endian codec built on
//! [`omnisim_codec`]. The encoding is positional and versioned: every enum
//! variant gets a fixed `u8` tag in declaration order, every collection a
//! `u64` length prefix, and the whole design is wrapped in the standard
//! magic/version/checksum frame.
//!
//! Decoding is total (returns [`CodecError`], never panics) and finishes
//! with a structural [`crate::validate::validate`] pass, so a corrupted or
//! adversarial byte stream cannot produce a `Design` with dangling
//! identifiers that would panic deep inside a simulator.

use crate::design::{ArraySpec, AxiPortSpec, Design, FifoSpec, Module, ModuleKind};
use crate::expr::{BinOp, Expr, UnOp};
use crate::ids::{ArrayId, AxiId, BlockId, FifoId, ModuleId, OutputId, VarId};
use crate::op::{Block, Op, ScheduledOp, Terminator};
use crate::schedule::BlockSchedule;
use omnisim_codec::{frame, unframe, ByteReader, ByteWriter, CodecError};

/// Magic bytes of an encoded design: "OmniSim DesigN".
pub const DESIGN_MAGIC: [u8; 4] = *b"OSDN";
/// Current design encoding version.
pub const DESIGN_VERSION: u16 = 1;

/// Encodes a design into a framed, checksummed byte vector.
pub fn encode_design(design: &Design) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(1024);
    write_design(&mut w, design);
    frame(DESIGN_MAGIC, DESIGN_VERSION, &w.into_bytes())
}

/// Decodes a design encoded by [`encode_design`], validating both the frame
/// (magic, version, checksum) and the decoded structure (identifier ranges,
/// schedule invariants).
///
/// # Errors
///
/// Any [`CodecError`]; structural problems surface as
/// [`CodecError::Invalid`].
pub fn decode_design(bytes: &[u8]) -> Result<Design, CodecError> {
    let payload = unframe(DESIGN_MAGIC, DESIGN_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let design = read_design(&mut r)?;
    r.finish()?;
    crate::validate::validate(&design)
        .map_err(|error| CodecError::Invalid(format!("decoded design is malformed: {error}")))?;
    Ok(design)
}

fn write_design(w: &mut ByteWriter, design: &Design) {
    w.str(&design.name);
    w.seq(design.modules.iter(), write_module);
    w.seq(design.fifos.iter(), |w, fifo| {
        w.str(&fifo.name);
        w.usize(fifo.depth);
    });
    w.seq(design.arrays.iter(), |w, array| {
        w.str(&array.name);
        w.seq(array.init.iter(), |w, &v| w.i64(v));
    });
    w.seq(design.axi_ports.iter(), |w, port| {
        w.str(&port.name);
        w.u32(port.array.0);
        w.u64(port.request_latency);
    });
    w.seq(design.outputs.iter(), |w, name| w.str(name));
    w.u32(design.top.0);
}

fn read_design(r: &mut ByteReader<'_>) -> Result<Design, CodecError> {
    let name = r.str()?;
    let modules = r.seq(read_module)?;
    let fifos = r.seq(|r| {
        Ok(FifoSpec {
            name: r.str()?,
            depth: r.usize()?,
        })
    })?;
    let arrays = r.seq(|r| {
        Ok(ArraySpec {
            name: r.str()?,
            init: r.seq(|r| r.i64())?,
        })
    })?;
    let axi_ports = r.seq(|r| {
        Ok(AxiPortSpec {
            name: r.str()?,
            array: ArrayId(r.u32()?),
            request_latency: r.u64()?,
        })
    })?;
    let outputs = r.seq(|r| r.str())?;
    let top = ModuleId(r.u32()?);
    Ok(Design {
        name,
        modules,
        fifos,
        arrays,
        axi_ports,
        outputs,
        top,
    })
}

fn write_module(w: &mut ByteWriter, module: &Module) {
    w.str(&module.name);
    match &module.kind {
        ModuleKind::Dataflow { children } => {
            w.u8(0);
            w.seq(children.iter(), |w, child| w.u32(child.0));
        }
        ModuleKind::Function => w.u8(1),
    }
    w.seq(module.blocks.iter(), write_block);
    w.u32(module.num_vars);
    w.seq(module.var_names.iter(), |w, name| w.str(name));
}

fn read_module(r: &mut ByteReader<'_>) -> Result<Module, CodecError> {
    let name = r.str()?;
    let kind = match r.u8()? {
        0 => ModuleKind::Dataflow {
            children: r.seq(|r| Ok(ModuleId(r.u32()?)))?,
        },
        1 => ModuleKind::Function,
        tag => return Err(CodecError::Invalid(format!("module kind tag {tag}"))),
    };
    Ok(Module {
        name,
        kind,
        blocks: r.seq(read_block)?,
        num_vars: r.u32()?,
        var_names: r.seq(|r| r.str())?,
    })
}

fn write_block(w: &mut ByteWriter, block: &Block) {
    w.seq(block.ops.iter(), |w, scheduled| {
        w.u64(scheduled.offset);
        write_op(w, &scheduled.op);
    });
    match &block.terminator {
        Terminator::Jump(target) => {
            w.u8(0);
            w.u32(target.0);
        }
        Terminator::Branch {
            cond,
            if_true,
            if_false,
        } => {
            w.u8(1);
            write_expr(w, cond);
            w.u32(if_true.0);
            w.u32(if_false.0);
        }
        Terminator::Return(value) => {
            w.u8(2);
            w.opt(value.as_ref(), write_expr);
        }
    }
    w.u64(block.schedule.latency);
    w.opt(block.schedule.ii, |w, ii| w.u64(ii));
}

fn read_block(r: &mut ByteReader<'_>) -> Result<Block, CodecError> {
    let ops = r.seq(|r| {
        Ok(ScheduledOp {
            offset: r.u64()?,
            op: read_op(r)?,
        })
    })?;
    let terminator = match r.u8()? {
        0 => Terminator::Jump(BlockId(r.u32()?)),
        1 => Terminator::Branch {
            cond: read_expr(r)?,
            if_true: BlockId(r.u32()?),
            if_false: BlockId(r.u32()?),
        },
        2 => Terminator::Return(r.opt(read_expr)?),
        tag => return Err(CodecError::Invalid(format!("terminator tag {tag}"))),
    };
    let latency = r.u64()?;
    let ii = r.opt(|r| r.u64())?;
    if latency == 0 || ii.is_some_and(|ii| ii == 0 || ii > latency) {
        return Err(CodecError::Invalid(format!(
            "bad block schedule: latency {latency}, ii {ii:?}"
        )));
    }
    Ok(Block {
        ops,
        terminator,
        schedule: BlockSchedule { latency, ii },
    })
}

fn write_op(w: &mut ByteWriter, op: &Op) {
    match op {
        Op::Assign { dst, expr } => {
            w.u8(0);
            w.u32(dst.0);
            write_expr(w, expr);
        }
        Op::ArrayLoad { dst, array, index } => {
            w.u8(1);
            w.u32(dst.0);
            w.u32(array.0);
            write_expr(w, index);
        }
        Op::ArrayStore {
            array,
            index,
            value,
        } => {
            w.u8(2);
            w.u32(array.0);
            write_expr(w, index);
            write_expr(w, value);
        }
        Op::FifoWrite { fifo, value } => {
            w.u8(3);
            w.u32(fifo.0);
            write_expr(w, value);
        }
        Op::FifoRead { fifo, dst } => {
            w.u8(4);
            w.u32(fifo.0);
            w.u32(dst.0);
        }
        Op::FifoNbWrite {
            fifo,
            value,
            success,
        } => {
            w.u8(5);
            w.u32(fifo.0);
            write_expr(w, value);
            w.opt(*success, |w, v| w.u32(v.0));
        }
        Op::FifoNbRead { fifo, dst, success } => {
            w.u8(6);
            w.u32(fifo.0);
            w.u32(dst.0);
            w.opt(*success, |w, v| w.u32(v.0));
        }
        Op::FifoEmpty { fifo, dst } => {
            w.u8(7);
            w.u32(fifo.0);
            w.opt(*dst, |w, v| w.u32(v.0));
        }
        Op::FifoFull { fifo, dst } => {
            w.u8(8);
            w.u32(fifo.0);
            w.opt(*dst, |w, v| w.u32(v.0));
        }
        Op::AxiReadReq { bus, addr, len } => {
            w.u8(9);
            w.u32(bus.0);
            write_expr(w, addr);
            write_expr(w, len);
        }
        Op::AxiRead { bus, dst } => {
            w.u8(10);
            w.u32(bus.0);
            w.u32(dst.0);
        }
        Op::AxiWriteReq { bus, addr, len } => {
            w.u8(11);
            w.u32(bus.0);
            write_expr(w, addr);
            write_expr(w, len);
        }
        Op::AxiWrite { bus, value } => {
            w.u8(12);
            w.u32(bus.0);
            write_expr(w, value);
        }
        Op::AxiWriteResp { bus } => {
            w.u8(13);
            w.u32(bus.0);
        }
        Op::Call { callee, args, dst } => {
            w.u8(14);
            w.u32(callee.0);
            w.seq(args.iter(), write_expr);
            w.opt(*dst, |w, v| w.u32(v.0));
        }
        Op::Output { output, value } => {
            w.u8(15);
            w.u32(output.0);
            write_expr(w, value);
        }
    }
}

fn read_op(r: &mut ByteReader<'_>) -> Result<Op, CodecError> {
    Ok(match r.u8()? {
        0 => Op::Assign {
            dst: VarId(r.u32()?),
            expr: read_expr(r)?,
        },
        1 => Op::ArrayLoad {
            dst: VarId(r.u32()?),
            array: ArrayId(r.u32()?),
            index: read_expr(r)?,
        },
        2 => Op::ArrayStore {
            array: ArrayId(r.u32()?),
            index: read_expr(r)?,
            value: read_expr(r)?,
        },
        3 => Op::FifoWrite {
            fifo: FifoId(r.u32()?),
            value: read_expr(r)?,
        },
        4 => Op::FifoRead {
            fifo: FifoId(r.u32()?),
            dst: VarId(r.u32()?),
        },
        5 => Op::FifoNbWrite {
            fifo: FifoId(r.u32()?),
            value: read_expr(r)?,
            success: r.opt(|r| Ok(VarId(r.u32()?)))?,
        },
        6 => Op::FifoNbRead {
            fifo: FifoId(r.u32()?),
            dst: VarId(r.u32()?),
            success: r.opt(|r| Ok(VarId(r.u32()?)))?,
        },
        7 => Op::FifoEmpty {
            fifo: FifoId(r.u32()?),
            dst: r.opt(|r| Ok(VarId(r.u32()?)))?,
        },
        8 => Op::FifoFull {
            fifo: FifoId(r.u32()?),
            dst: r.opt(|r| Ok(VarId(r.u32()?)))?,
        },
        9 => Op::AxiReadReq {
            bus: AxiId(r.u32()?),
            addr: read_expr(r)?,
            len: read_expr(r)?,
        },
        10 => Op::AxiRead {
            bus: AxiId(r.u32()?),
            dst: VarId(r.u32()?),
        },
        11 => Op::AxiWriteReq {
            bus: AxiId(r.u32()?),
            addr: read_expr(r)?,
            len: read_expr(r)?,
        },
        12 => Op::AxiWrite {
            bus: AxiId(r.u32()?),
            value: read_expr(r)?,
        },
        13 => Op::AxiWriteResp {
            bus: AxiId(r.u32()?),
        },
        14 => Op::Call {
            callee: ModuleId(r.u32()?),
            args: r.seq(read_expr)?,
            dst: r.opt(|r| Ok(VarId(r.u32()?)))?,
        },
        15 => Op::Output {
            output: OutputId(r.u32()?),
            value: read_expr(r)?,
        },
        tag => return Err(CodecError::Invalid(format!("op tag {tag}"))),
    })
}

const BIN_OPS: [BinOp; 18] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Min,
    BinOp::Max,
];

const UN_OPS: [UnOp; 3] = [UnOp::Neg, UnOp::Not, UnOp::LogicalNot];

fn write_expr(w: &mut ByteWriter, expr: &Expr) {
    match expr {
        Expr::Const(value) => {
            w.u8(0);
            w.i64(*value);
        }
        Expr::Var(var) => {
            w.u8(1);
            w.u32(var.0);
        }
        Expr::Unary(op, inner) => {
            w.u8(2);
            w.u8(UN_OPS.iter().position(|u| u == op).unwrap() as u8);
            write_expr(w, inner);
        }
        Expr::Binary(op, lhs, rhs) => {
            w.u8(3);
            w.u8(BIN_OPS.iter().position(|b| b == op).unwrap() as u8);
            write_expr(w, lhs);
            write_expr(w, rhs);
        }
        Expr::Select(cond, if_true, if_false) => {
            w.u8(4);
            write_expr(w, cond);
            write_expr(w, if_true);
            write_expr(w, if_false);
        }
    }
}

fn read_expr(r: &mut ByteReader<'_>) -> Result<Expr, CodecError> {
    Ok(match r.u8()? {
        0 => Expr::Const(r.i64()?),
        1 => Expr::Var(VarId(r.u32()?)),
        2 => {
            let tag = r.u8()? as usize;
            let op = *UN_OPS
                .get(tag)
                .ok_or_else(|| CodecError::Invalid(format!("unary op tag {tag}")))?;
            Expr::Unary(op, Box::new(read_expr(r)?))
        }
        3 => {
            let tag = r.u8()? as usize;
            let op = *BIN_OPS
                .get(tag)
                .ok_or_else(|| CodecError::Invalid(format!("binary op tag {tag}")))?;
            Expr::Binary(op, Box::new(read_expr(r)?), Box::new(read_expr(r)?))
        }
        4 => Expr::Select(
            Box::new(read_expr(r)?),
            Box::new(read_expr(r)?),
            Box::new(read_expr(r)?),
        ),
        tag => return Err(CodecError::Invalid(format!("expr tag {tag}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;

    /// A design touching every op family: arrays, AXI bursts, calls,
    /// non-blocking accesses, status checks, pipelined loops.
    fn kitchen_sink() -> Design {
        let mut d = DesignBuilder::new("sink");
        let out = d.output("sum");
        let q = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.counted_loop("i", 6, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(q, i.mul(Expr::imm(3)).add(Expr::imm(1)));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 6, 1, |b| {
                let v = b.fifo_read(q);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)).max(Expr::imm(0)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        d.build().unwrap()
    }

    #[test]
    fn design_round_trips_exactly() {
        let design = kitchen_sink();
        let bytes = encode_design(&design);
        let decoded = decode_design(&bytes).unwrap();
        assert_eq!(decoded, design);
        // Deterministic: encoding the decoded design is byte-identical.
        assert_eq!(encode_design(&decoded), bytes);
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let design = kitchen_sink();
        let bytes = encode_design(&design);
        // Truncations at every length.
        for len in 0..bytes.len() {
            assert!(decode_design(&bytes[..len]).is_err());
        }
        // Single-byte corruption is caught by the checksum (or the frame
        // header checks, for the first 14 bytes).
        for index in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[index] ^= 0x5a;
            assert!(decode_design(&corrupt).is_err(), "byte {index}");
        }
    }

    #[test]
    fn structurally_invalid_designs_are_rejected() {
        let mut design = kitchen_sink();
        // Point `top` out of range; the payload still decodes, so only the
        // validation pass can catch it.
        design.top = ModuleId(99);
        let bytes = encode_design(&design);
        match decode_design(&bytes).unwrap_err() {
            CodecError::Invalid(detail) => assert!(detail.contains("malformed")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }
}
