//! Structural validation of designs.
//!
//! Validation is run automatically by [`crate::DesignBuilder::build`] and can
//! be invoked directly on hand-constructed or deserialized designs. It
//! rejects designs that no simulator in the workspace could give a meaning
//! to: dangling identifiers, FIFOs with several producers or consumers,
//! zero-depth FIFOs, malformed schedules, recursive call graphs and dataflow
//! regions whose children are not plain functions.

use crate::design::{Design, ModuleKind};
use crate::error::IrError;
use crate::expr::Expr;
use crate::ids::{BlockId, FifoId, ModuleId, VarId};
use crate::loc::Loc;
use crate::op::{Op, Terminator};

/// Validates a design, returning the first structural error found.
///
/// # Errors
///
/// Returns an [`IrError`] describing the problem; see the enum variants for
/// the full list of checks.
pub fn validate(design: &Design) -> Result<(), IrError> {
    if design.top.index() >= design.modules.len() {
        return Err(IrError::MissingTop);
    }
    for (f_idx, fifo) in design.fifos.iter().enumerate() {
        if fifo.depth == 0 {
            return Err(IrError::ZeroDepthFifo {
                fifo: FifoId::from_index(f_idx),
            });
        }
    }
    for (m_idx, module) in design.modules.iter().enumerate() {
        let mid = ModuleId::from_index(m_idx);
        match &module.kind {
            ModuleKind::Dataflow { children } => {
                for &child in children {
                    if child.index() >= design.modules.len()
                        || design.modules[child.index()].is_dataflow()
                    {
                        return Err(IrError::InvalidDataflowChild { region: mid, child });
                    }
                }
            }
            ModuleKind::Function => {
                if module.blocks.is_empty() {
                    return Err(IrError::EmptyFunction { module: mid });
                }
                for (b_idx, block) in module.blocks.iter().enumerate() {
                    let bid = BlockId::from_index(b_idx);
                    let mut prev_offset = 0u64;
                    for (op_idx, sop) in block.ops.iter().enumerate() {
                        let at = Loc::op(mid, bid, op_idx);
                        if sop.offset >= block.schedule.latency {
                            return Err(IrError::OffsetPastLatency {
                                at,
                                offset: sop.offset,
                                latency: block.schedule.latency,
                            });
                        }
                        if sop.offset < prev_offset {
                            return Err(IrError::NonMonotonicOffsets { at });
                        }
                        prev_offset = sop.offset;
                        check_op(design, at, module.num_vars, &sop.op)?;
                    }
                    check_terminator(design, module, Loc::block(mid, bid), &block.terminator)?;
                }
            }
        }
    }
    check_fifo_point_to_point(design)?;
    check_no_recursion(design)?;
    Ok(())
}

fn check_expr_vars(at: Loc, num_vars: u32, expr: &Expr) -> Result<(), IrError> {
    let mut vars = Vec::new();
    expr.collect_vars(&mut vars);
    for v in vars {
        if v.0 >= num_vars {
            return Err(IrError::UnknownVar { at, var: v });
        }
    }
    Ok(())
}

fn check_var(at: Loc, num_vars: u32, var: VarId) -> Result<(), IrError> {
    if var.0 >= num_vars {
        return Err(IrError::UnknownVar { at, var });
    }
    Ok(())
}

fn check_op(design: &Design, at: Loc, num_vars: u32, op: &Op) -> Result<(), IrError> {
    let check_fifo = |fifo: FifoId| {
        if fifo.index() >= design.fifos.len() {
            Err(IrError::UnknownFifo { at, fifo })
        } else {
            Ok(())
        }
    };
    let check_axi = |bus: crate::ids::AxiId| {
        if bus.index() >= design.axi_ports.len() {
            Err(IrError::UnknownAxiPort { at, axi: bus })
        } else {
            Ok(())
        }
    };
    match op {
        Op::Assign { dst, expr } => {
            check_var(at, num_vars, *dst)?;
            check_expr_vars(at, num_vars, expr)?;
        }
        Op::ArrayLoad { dst, array, index } => {
            check_var(at, num_vars, *dst)?;
            if array.index() >= design.arrays.len() {
                return Err(IrError::UnknownArray { at, array: *array });
            }
            check_expr_vars(at, num_vars, index)?;
        }
        Op::ArrayStore {
            array,
            index,
            value,
        } => {
            if array.index() >= design.arrays.len() {
                return Err(IrError::UnknownArray { at, array: *array });
            }
            check_expr_vars(at, num_vars, index)?;
            check_expr_vars(at, num_vars, value)?;
        }
        Op::FifoWrite { fifo, value } => {
            check_fifo(*fifo)?;
            check_expr_vars(at, num_vars, value)?;
        }
        Op::FifoRead { fifo, dst } => {
            check_fifo(*fifo)?;
            check_var(at, num_vars, *dst)?;
        }
        Op::FifoNbWrite {
            fifo,
            value,
            success,
        } => {
            check_fifo(*fifo)?;
            check_expr_vars(at, num_vars, value)?;
            if let Some(s) = success {
                check_var(at, num_vars, *s)?;
            }
        }
        Op::FifoNbRead { fifo, dst, success } => {
            check_fifo(*fifo)?;
            check_var(at, num_vars, *dst)?;
            if let Some(s) = success {
                check_var(at, num_vars, *s)?;
            }
        }
        Op::FifoEmpty { fifo, dst } | Op::FifoFull { fifo, dst } => {
            check_fifo(*fifo)?;
            if let Some(d) = dst {
                check_var(at, num_vars, *d)?;
            }
        }
        Op::AxiReadReq { bus, addr, len } | Op::AxiWriteReq { bus, addr, len } => {
            check_axi(*bus)?;
            check_expr_vars(at, num_vars, addr)?;
            check_expr_vars(at, num_vars, len)?;
        }
        Op::AxiRead { bus, dst } => {
            check_axi(*bus)?;
            check_var(at, num_vars, *dst)?;
        }
        Op::AxiWrite { bus, value } => {
            check_axi(*bus)?;
            check_expr_vars(at, num_vars, value)?;
        }
        Op::AxiWriteResp { bus } => {
            check_axi(*bus)?;
        }
        Op::Call { callee, args, dst } => {
            if callee.index() >= design.modules.len() {
                return Err(IrError::UnknownModule {
                    at,
                    module: *callee,
                });
            }
            if design.modules[callee.index()].is_dataflow() {
                return Err(IrError::InvalidDataflowChild {
                    region: at.module.expect("op locations always carry a module"),
                    child: *callee,
                });
            }
            for a in args {
                check_expr_vars(at, num_vars, a)?;
            }
            if let Some(d) = dst {
                check_var(at, num_vars, *d)?;
            }
            let callee_vars = design.modules[callee.index()].num_vars;
            if args.len() as u32 > callee_vars {
                return Err(IrError::UnknownVar {
                    at,
                    var: VarId(callee_vars),
                });
            }
        }
        Op::Output { output, value } => {
            if output.index() >= design.outputs.len() {
                return Err(IrError::UnknownOutput {
                    at,
                    output: *output,
                });
            }
            check_expr_vars(at, num_vars, value)?;
        }
    }
    Ok(())
}

fn check_terminator(
    design: &Design,
    module: &crate::design::Module,
    at: Loc,
    term: &Terminator,
) -> Result<(), IrError> {
    match term {
        Terminator::Jump(target) => {
            if target.index() >= module.blocks.len() {
                return Err(IrError::UnknownBlock { at, block: *target });
            }
        }
        Terminator::Branch {
            cond,
            if_true,
            if_false,
        } => {
            check_expr_vars(at, module.num_vars, cond)?;
            for t in [if_true, if_false] {
                if t.index() >= module.blocks.len() {
                    return Err(IrError::UnknownBlock { at, block: *t });
                }
            }
        }
        Terminator::Return(Some(expr)) => {
            check_expr_vars(at, module.num_vars, expr)?;
        }
        Terminator::Return(None) => {}
    }
    let _ = design;
    Ok(())
}

/// Returns, for every FIFO, the modules that write it and the modules that
/// read it (data accesses only; status checks do not count).
pub fn fifo_endpoints(design: &Design) -> Vec<(Vec<ModuleId>, Vec<ModuleId>)> {
    let mut endpoints = vec![(Vec::new(), Vec::new()); design.fifos.len()];
    for (m_idx, module) in design.modules.iter().enumerate() {
        let mid = ModuleId::from_index(m_idx);
        for block in &module.blocks {
            for sop in &block.ops {
                if let Some(fifo) = sop.op.fifo() {
                    if sop.op.is_fifo_write() {
                        let writers: &mut Vec<ModuleId> = &mut endpoints[fifo.index()].0;
                        if !writers.contains(&mid) {
                            writers.push(mid);
                        }
                    } else if sop.op.is_fifo_read() {
                        let readers: &mut Vec<ModuleId> = &mut endpoints[fifo.index()].1;
                        if !readers.contains(&mid) {
                            readers.push(mid);
                        }
                    }
                }
            }
        }
    }
    endpoints
}

/// For every module, the modules reachable from it through `Op::Call`
/// chains (itself included). FIFO accesses inside a callee happen on the
/// caller's thread, so analyses that reason about *runtime* endpoints (task
/// ordering, dataflow cycles) must attribute them through this closure.
pub fn call_closures(design: &Design) -> Vec<Vec<ModuleId>> {
    let n = design.modules.len();
    let mut direct: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, module) in design.modules.iter().enumerate() {
        for block in &module.blocks {
            for sop in &block.ops {
                if let Op::Call { callee, .. } = &sop.op {
                    if callee.index() < n {
                        direct[i].push(callee.index());
                    }
                }
            }
        }
    }
    (0..n)
        .map(|root| {
            let mut seen = vec![false; n];
            let mut stack = vec![root];
            let mut closure = Vec::new();
            while let Some(v) = stack.pop() {
                if !seen[v] {
                    seen[v] = true;
                    closure.push(ModuleId::from_index(v));
                    stack.extend(direct[v].iter().copied());
                }
            }
            closure
        })
        .collect()
}

fn check_fifo_point_to_point(design: &Design) -> Result<(), IrError> {
    for (f_idx, (writers, readers)) in fifo_endpoints(design).into_iter().enumerate() {
        if writers.len() > 1 || readers.len() > 1 {
            return Err(IrError::FifoNotPointToPoint {
                fifo: FifoId::from_index(f_idx),
                writers,
                readers,
            });
        }
    }
    Ok(())
}

fn check_no_recursion(design: &Design) -> Result<(), IrError> {
    // DFS over the call graph of function modules.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        InStack,
        Done,
    }
    fn dfs(design: &Design, m: usize, state: &mut [State]) -> Result<(), IrError> {
        state[m] = State::InStack;
        for block in &design.modules[m].blocks {
            for sop in &block.ops {
                if let Op::Call { callee, .. } = &sop.op {
                    let c = callee.index();
                    if c >= design.modules.len() {
                        continue; // reported elsewhere
                    }
                    match state[c] {
                        State::InStack => {
                            return Err(IrError::RecursiveCall { module: *callee });
                        }
                        State::Unvisited => dfs(design, c, state)?,
                        State::Done => {}
                    }
                }
            }
        }
        state[m] = State::Done;
        Ok(())
    }
    let mut state = vec![State::Unvisited; design.modules.len()];
    for m in 0..design.modules.len() {
        if state[m] == State::Unvisited {
            dfs(design, m, &mut state)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::op::{Block, ScheduledOp};
    use crate::schedule::BlockSchedule;

    #[test]
    fn valid_design_passes() {
        let mut d = DesignBuilder::new("ok");
        let f = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let c = d.function("c", |m| {
            m.entry(|b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        assert!(d.build().is_ok());
    }

    #[test]
    fn zero_depth_fifo_rejected() {
        let mut d = DesignBuilder::new("bad");
        let f = d.fifo("q", 0);
        let p = d.function("p", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let c = d.function("c", |m| {
            m.entry(|b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        assert!(matches!(
            d.build().unwrap_err(),
            IrError::ZeroDepthFifo { .. }
        ));
    }

    #[test]
    fn multi_writer_fifo_rejected() {
        let mut d = DesignBuilder::new("bad");
        let f = d.fifo("q", 2);
        let p1 = d.function("p1", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let p2 = d.function("p2", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(2));
            });
        });
        let c = d.function("c", |m| {
            m.entry(|b| {
                let _ = b.fifo_read(f);
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p1, p2, c]);
        assert!(matches!(
            d.build().unwrap_err(),
            IrError::FifoNotPointToPoint { .. }
        ));
    }

    #[test]
    fn unknown_fifo_rejected() {
        let mut d = DesignBuilder::new("bad");
        d.function_top("f", |m| {
            m.entry(|b| {
                b.fifo_write(FifoId(5), Expr::imm(1));
            });
        });
        assert!(matches!(
            d.build().unwrap_err(),
            IrError::UnknownFifo { .. }
        ));
    }

    #[test]
    fn validation_errors_carry_op_locations() {
        let mut d = DesignBuilder::new("bad");
        d.function_top("f", |m| {
            m.entry(|b| {
                let t = b.tmp();
                b.assign(t, Expr::imm(0));
                b.fifo_write(FifoId(5), Expr::imm(1));
            });
        });
        let err = d.build().unwrap_err();
        assert!(matches!(err, IrError::UnknownFifo { .. }));
        let loc = err.location();
        assert_eq!(loc.module, Some(ModuleId(0)));
        assert_eq!(loc.block, Some(BlockId(0)));
        assert_eq!(loc.op, Some(1));
    }

    #[test]
    fn recursive_call_rejected() {
        let mut d = DesignBuilder::new("rec");
        // Build a self-recursive module by hand.
        let m = d.function_top("f", |m| {
            m.entry(|b| {
                b.call_void(ModuleId(0), vec![]);
            });
        });
        assert_eq!(m, ModuleId(0));
        assert!(matches!(
            d.build().unwrap_err(),
            IrError::RecursiveCall { .. }
        ));
    }

    #[test]
    fn offset_past_latency_rejected() {
        let mut d = DesignBuilder::new("sched");
        d.function_top("f", |m| {
            m.entry(|b| {
                let t = b.tmp();
                b.assign(t, Expr::imm(0));
            });
        });
        let mut design = d.build_unchecked();
        // Corrupt the schedule: offset 5 with latency 1.
        design.modules[0].blocks[0] = Block {
            ops: vec![ScheduledOp {
                offset: 5,
                op: Op::Assign {
                    dst: VarId(0),
                    expr: Expr::imm(0),
                },
            }],
            terminator: Terminator::Return(None),
            schedule: BlockSchedule::new(1),
        };
        assert!(matches!(
            validate(&design).unwrap_err(),
            IrError::OffsetPastLatency { .. }
        ));
    }

    #[test]
    fn fifo_endpoints_reports_producer_and_consumer() {
        let mut d = DesignBuilder::new("pc");
        let f = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        let c = d.function("c", |m| {
            m.entry(|b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().unwrap();
        let eps = fifo_endpoints(&design);
        assert_eq!(eps[0].0, vec![ModuleId(0)]);
        assert_eq!(eps[0].1, vec![ModuleId(1)]);
    }
}
