//! Strongly typed identifiers used throughout the IR.
//!
//! Every entity in a [`crate::Design`] — modules, FIFOs, arrays, AXI ports,
//! basic blocks, local variables and named outputs — is referenced by a small
//! index newtype rather than a string, following the newtype guidance of the
//! Rust API guidelines (`C-NEWTYPE`). Indices are only meaningful relative to
//! the design (or, for [`VarId`] and [`BlockId`], the module) that created
//! them.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index wrapped by this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in a `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("identifier index overflows u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifies a [`crate::Module`] within a design.
    ModuleId,
    "m"
);
id_type!(
    /// Identifies a FIFO channel ([`crate::FifoSpec`]) within a design.
    FifoId,
    "f"
);
id_type!(
    /// Identifies a global array ([`crate::ArraySpec`]) within a design.
    ArrayId,
    "a"
);
id_type!(
    /// Identifies an AXI port ([`crate::AxiPortSpec`]) within a design.
    AxiId,
    "axi"
);
id_type!(
    /// Identifies a basic block within a module.
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a local variable (virtual register) within a module.
    VarId,
    "v"
);
id_type!(
    /// Identifies a named testbench-visible output of the design.
    OutputId,
    "out"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = ModuleId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(usize::from(id), 7);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(FifoId(3).to_string(), "f3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(VarId(12).to_string(), "v12");
        assert_eq!(AxiId(1).to_string(), "axi1");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VarId(1) < VarId(2));
        assert_eq!(ModuleId(4), ModuleId::from_index(4));
    }

    #[test]
    #[should_panic(expected = "identifier index overflows u32")]
    fn from_index_overflow_panics() {
        let _ = VarId::from_index(usize::MAX);
    }
}
