//! # omnisim-ir
//!
//! An HLS-like intermediate representation (IR) of hardware dataflow designs,
//! standing in for the LLVM IR + static-schedule inputs that the OmniSim paper
//! (Sarkar & Hao, MICRO 2025) extracts from Vitis HLS.
//!
//! A [`Design`] is a set of [`Module`]s connected by FIFO channels and AXI
//! ports. Each module is either a *dataflow region* (its children execute
//! concurrently, exactly like a `#pragma HLS dataflow` region) or an ordinary
//! *function* made of scheduled basic blocks. Every basic block carries a
//! static schedule — a latency in clock cycles, an optional pipeline
//! initiation interval, and a cycle offset for every operation — which is the
//! information C synthesis would normally produce.
//!
//! The IR is consumed by every simulator in the workspace:
//!
//! * `omnisim-csim` — naive sequential C simulation,
//! * `omnisim-rtlsim` — cycle-stepped reference simulation (co-sim stand-in),
//! * `omnisim-lightning` — the decoupled two-phase LightningSim baseline,
//! * `omnisim` — the OmniSim engine itself.
//!
//! # Example
//!
//! Build the producer/consumer design of Fig. 4 Ex. 1 of the paper:
//!
//! ```
//! use omnisim_ir::builder::DesignBuilder;
//! use omnisim_ir::expr::Expr;
//!
//! let mut d = DesignBuilder::new("producer_consumer");
//! let data = d.array("data", (0..16).collect::<Vec<i64>>());
//! let sum = d.output("sum_out");
//! let fifo = d.fifo("stream", 2);
//!
//! let producer = d.function("producer", |m| {
//!     m.counted_loop("i", 16, 1, |body| {
//!         let i = body.var_expr("i");
//!         let v = body.array_load(data, i);
//!         body.fifo_write(fifo, Expr::var(v));
//!     });
//! });
//! let consumer = d.function("consumer", |m| {
//!     let acc = m.var("acc");
//!     m.entry(|b| { b.assign(acc, Expr::imm(0)); });
//!     m.counted_loop("i", 16, 1, |body| {
//!         let v = body.fifo_read(fifo);
//!         body.assign(acc, Expr::var(acc).add(Expr::var(v)));
//!     });
//!     m.exit(|b| { b.output(sum, Expr::var(acc)); });
//! });
//! d.dataflow_top("top", [producer, consumer]);
//! let design = d.build().expect("valid design");
//! assert_eq!(design.modules.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod design;
pub mod error;
pub mod expr;
pub mod ids;
pub mod loc;
pub mod op;
pub mod optimize;
pub mod schedule;
pub mod taxonomy;
pub mod validate;
pub mod wire;

pub use builder::{BlockBuilder, DesignBuilder, ModuleBuilder};
pub use design::{ArraySpec, AxiPortSpec, Design, FifoSpec, Module, ModuleKind};
pub use error::IrError;
pub use expr::{BinOp, Expr, UnOp};
pub use ids::{ArrayId, AxiId, BlockId, FifoId, ModuleId, OutputId, VarId};
pub use loc::Loc;
pub use op::{Block, Op, ScheduledOp, Terminator};
pub use schedule::BlockSchedule;
pub use taxonomy::{DesignClass, SimLevel, TaxonomyReport};
