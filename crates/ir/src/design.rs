//! Top-level design containers: designs, modules, FIFOs, arrays, AXI ports.

use crate::ids::{ArrayId, AxiId, FifoId, ModuleId, OutputId};
use crate::op::Block;
use std::collections::BTreeMap;

/// A FIFO channel connecting exactly one producer module to one consumer
/// module, as in `hls::stream<T>` with `#pragma HLS stream depth=N`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FifoSpec {
    /// Human-readable channel name.
    pub name: String,
    /// Capacity in elements. Must be at least one.
    pub depth: usize,
}

/// A global array visible to all modules: testbench inputs, outputs and
/// on-chip buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArraySpec {
    /// Human-readable array name.
    pub name: String,
    /// Initial contents; the array length is `init.len()`.
    pub init: Vec<i64>,
}

/// An AXI master port backed by a global array, with a fixed request latency
/// (the number of cycles between a burst request and its first beat).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AxiPortSpec {
    /// Human-readable port name.
    pub name: String,
    /// Backing memory for the port.
    pub array: ArrayId,
    /// Cycles between a read/write request and the first data beat.
    pub request_latency: u64,
}

/// Distinguishes dataflow regions from ordinary scheduled functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModuleKind {
    /// A dataflow region: its children execute concurrently, connected by
    /// FIFOs, and the region completes when every child has returned.
    Dataflow {
        /// Child modules launched by the region.
        children: Vec<ModuleId>,
    },
    /// An ordinary function lowered to scheduled basic blocks.
    Function,
}

/// One hardware module (an HLS function).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Module {
    /// Human-readable module name.
    pub name: String,
    /// Whether this is a dataflow region or a scheduled function.
    pub kind: ModuleKind,
    /// Basic blocks; index 0 is the entry block. Empty for dataflow regions.
    pub blocks: Vec<Block>,
    /// Number of local variables (virtual registers) used by the blocks.
    pub num_vars: u32,
    /// Debug names of the local variables, indexed by `VarId`.
    pub var_names: Vec<String>,
}

impl Module {
    /// Returns the children of a dataflow region, or an empty slice for a
    /// function module.
    pub fn children(&self) -> &[ModuleId] {
        match &self.kind {
            ModuleKind::Dataflow { children } => children,
            ModuleKind::Function => &[],
        }
    }

    /// True if this module is a dataflow region.
    pub fn is_dataflow(&self) -> bool {
        matches!(self.kind, ModuleKind::Dataflow { .. })
    }

    /// Total number of scheduled operations across all blocks.
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }
}

/// A complete hardware design plus its testbench-visible environment
/// (input arrays, declared outputs).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Design {
    /// Design name (used in reports and benchmark tables).
    pub name: String,
    /// All modules; `top` is the simulation entry point.
    pub modules: Vec<Module>,
    /// FIFO channels.
    pub fifos: Vec<FifoSpec>,
    /// Global arrays.
    pub arrays: Vec<ArraySpec>,
    /// AXI master ports.
    pub axi_ports: Vec<AxiPortSpec>,
    /// Names of the testbench-visible scalar outputs, indexed by `OutputId`.
    pub outputs: Vec<String>,
    /// The top-level module started by the testbench.
    pub top: ModuleId,
}

impl Design {
    /// Looks up a module.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range for this design.
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Looks up a FIFO specification.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range for this design.
    pub fn fifo(&self, id: FifoId) -> &FifoSpec {
        &self.fifos[id.index()]
    }

    /// Looks up an array specification.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range for this design.
    pub fn array(&self, id: ArrayId) -> &ArraySpec {
        &self.arrays[id.index()]
    }

    /// Looks up an AXI port specification.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range for this design.
    pub fn axi_port(&self, id: AxiId) -> &AxiPortSpec {
        &self.axi_ports[id.index()]
    }

    /// Returns the name of a testbench-visible output.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range for this design.
    pub fn output_name(&self, id: OutputId) -> &str {
        &self.outputs[id.index()]
    }

    /// Finds a module by name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name == name)
            .map(ModuleId::from_index)
    }

    /// Finds a FIFO by name.
    pub fn fifo_by_name(&self, name: &str) -> Option<FifoId> {
        self.fifos
            .iter()
            .position(|f| f.name == name)
            .map(FifoId::from_index)
    }

    /// Finds an output slot by name.
    pub fn output_by_name(&self, name: &str) -> Option<OutputId> {
        self.outputs
            .iter()
            .position(|o| o == name)
            .map(OutputId::from_index)
    }

    /// Identifiers of every module, in declaration order.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> {
        (0..self.modules.len()).map(ModuleId::from_index)
    }

    /// Identifiers of every FIFO, in declaration order.
    pub fn fifo_ids(&self) -> impl Iterator<Item = FifoId> {
        (0..self.fifos.len()).map(FifoId::from_index)
    }

    /// Returns the FIFO depths as a vector indexed by [`FifoId`].
    pub fn fifo_depths(&self) -> Vec<usize> {
        self.fifos.iter().map(|f| f.depth).collect()
    }

    /// Returns a copy of this design with the FIFO depths replaced.
    ///
    /// Used by the incremental-simulation experiments (Table 6) and FIFO
    /// sizing design-space exploration.
    ///
    /// # Panics
    ///
    /// Panics if `depths.len()` does not match the number of FIFOs or if any
    /// depth is zero.
    pub fn with_fifo_depths(&self, depths: &[usize]) -> Design {
        assert_eq!(
            depths.len(),
            self.fifos.len(),
            "depth vector length must match the number of FIFOs"
        );
        assert!(
            depths.iter().all(|&d| d > 0),
            "FIFO depths must be at least one"
        );
        let mut clone = self.clone();
        for (spec, &depth) in clone.fifos.iter_mut().zip(depths) {
            spec.depth = depth;
        }
        clone
    }

    /// Total number of scheduled operations in the design.
    pub fn op_count(&self) -> usize {
        self.modules.iter().map(|m| m.op_count()).sum()
    }

    /// Dataflow tasks (leaf function modules) launched by the top module if
    /// it is a dataflow region; otherwise just the top module itself.
    pub fn dataflow_tasks(&self) -> Vec<ModuleId> {
        let top = self.module(self.top);
        if top.is_dataflow() {
            top.children().to_vec()
        } else {
            vec![self.top]
        }
    }
}

/// The functional result of simulating a design: the final value of every
/// declared output that was written during simulation.
pub type OutputMap = BTreeMap<String, i64>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::expr::Expr;

    fn tiny_design() -> Design {
        let mut d = DesignBuilder::new("tiny");
        let out = d.output("x");
        let f = d.fifo("q", 4);
        let producer = d.function("producer", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(7));
            });
        });
        let consumer = d.function("consumer", |m| {
            m.entry(|b| {
                let v = b.fifo_read(f);
                b.output(out, Expr::var(v));
            });
        });
        d.dataflow_top("top", [producer, consumer]);
        d.build().unwrap()
    }

    #[test]
    fn lookups_by_name() {
        let d = tiny_design();
        assert!(d.module_by_name("producer").is_some());
        assert!(d.module_by_name("missing").is_none());
        assert_eq!(d.fifo_by_name("q"), Some(FifoId(0)));
        assert_eq!(d.output_by_name("x"), Some(OutputId(0)));
    }

    #[test]
    fn with_fifo_depths_replaces_depths() {
        let d = tiny_design();
        let d2 = d.with_fifo_depths(&[9]);
        assert_eq!(d2.fifo(FifoId(0)).depth, 9);
        assert_eq!(d.fifo(FifoId(0)).depth, 4, "original is untouched");
    }

    #[test]
    #[should_panic(expected = "depth vector length")]
    fn with_fifo_depths_wrong_length_panics() {
        let d = tiny_design();
        let _ = d.with_fifo_depths(&[1, 2]);
    }

    #[test]
    fn dataflow_tasks_lists_children() {
        let d = tiny_design();
        assert_eq!(d.dataflow_tasks().len(), 2);
        assert!(d.module(d.top).is_dataflow());
        assert_eq!(d.module(d.top).children().len(), 2);
    }

    #[test]
    fn op_count_sums_blocks() {
        let d = tiny_design();
        assert!(d.op_count() >= 3);
    }
}
