//! IR-level optimisation passes applied before simulation.
//!
//! The only pass currently implemented mirrors §7.3.2 of the paper:
//! *eliminating redundant FIFO checks*. `empty()` / `full()` calls whose
//! result is never consumed would otherwise generate a hardware-cycle query
//! per evaluation; marking them as dead lets every simulator skip the query.

use crate::design::Design;
use crate::ids::VarId;
use crate::op::{Op, Terminator};
use std::collections::HashSet;

/// Statistics returned by [`eliminate_dead_fifo_checks`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadCheckStats {
    /// Number of `empty()` checks whose result was marked unused.
    pub empty_checks_elided: usize,
    /// Number of `full()` checks whose result was marked unused.
    pub full_checks_elided: usize,
}

impl DeadCheckStats {
    /// Total number of checks elided.
    pub fn total(&self) -> usize {
        self.empty_checks_elided + self.full_checks_elided
    }
}

/// Marks FIFO `empty()`/`full()` checks whose result variable is never read
/// anywhere in the module as dead (`dst = None`), so simulators can skip the
/// associated hardware-cycle query (§7.3.2).
///
/// Returns how many checks were elided. The pass is idempotent.
pub fn eliminate_dead_fifo_checks(design: &mut Design) -> DeadCheckStats {
    let mut stats = DeadCheckStats::default();
    for module in &mut design.modules {
        // Collect every variable that is *read* by any expression, call
        // argument or terminator in the module.
        let mut read: HashSet<VarId> = HashSet::new();
        let collect = |expr: &crate::expr::Expr, read: &mut HashSet<VarId>| {
            let mut vars = Vec::new();
            expr.collect_vars(&mut vars);
            read.extend(vars);
        };
        for block in &module.blocks {
            for sop in &block.ops {
                match &sop.op {
                    Op::Assign { expr, .. } => collect(expr, &mut read),
                    Op::ArrayLoad { index, .. } => collect(index, &mut read),
                    Op::ArrayStore { index, value, .. } => {
                        collect(index, &mut read);
                        collect(value, &mut read);
                    }
                    Op::FifoWrite { value, .. } | Op::FifoNbWrite { value, .. } => {
                        collect(value, &mut read)
                    }
                    Op::AxiReadReq { addr, len, .. } | Op::AxiWriteReq { addr, len, .. } => {
                        collect(addr, &mut read);
                        collect(len, &mut read);
                    }
                    Op::AxiWrite { value, .. } => collect(value, &mut read),
                    Op::Call { args, .. } => {
                        for a in args {
                            collect(a, &mut read);
                        }
                    }
                    Op::Output { value, .. } => collect(value, &mut read),
                    Op::FifoRead { .. }
                    | Op::FifoNbRead { .. }
                    | Op::FifoEmpty { .. }
                    | Op::FifoFull { .. }
                    | Op::AxiRead { .. }
                    | Op::AxiWriteResp { .. } => {}
                }
            }
            match &block.terminator {
                Terminator::Branch { cond, .. } => collect(cond, &mut read),
                Terminator::Return(Some(e)) => collect(e, &mut read),
                _ => {}
            }
        }
        for block in &mut module.blocks {
            for sop in &mut block.ops {
                match &mut sop.op {
                    Op::FifoEmpty { dst, .. } => {
                        if matches!(dst, Some(v) if !read.contains(v)) {
                            *dst = None;
                            stats.empty_checks_elided += 1;
                        }
                    }
                    Op::FifoFull { dst, .. } => {
                        if matches!(dst, Some(v) if !read.contains(v)) {
                            *dst = None;
                            stats.full_checks_elided += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::expr::Expr;

    #[test]
    fn unused_checks_are_elided_and_used_ones_kept() {
        let mut d = DesignBuilder::new("checks");
        let f = d.fifo("q", 1);
        let out = d.output("o");
        let p = d.function("p", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(1));
                // full() result never read: should be elided.
                let _unused = b.fifo_full(f);
            });
        });
        let c = d.function("c", |m| {
            m.entry(|b| {
                // empty() result feeds an output: must be kept.
                let e = b.fifo_empty(f);
                b.output(out, Expr::var(e));
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let mut design = d.build().unwrap();

        let stats = eliminate_dead_fifo_checks(&mut design);
        assert_eq!(stats.full_checks_elided, 1);
        assert_eq!(stats.empty_checks_elided, 0);
        assert_eq!(stats.total(), 1);

        // Second application changes nothing (idempotent).
        let stats2 = eliminate_dead_fifo_checks(&mut design);
        assert_eq!(stats2.total(), 0);

        // The consumer's live check still carries its destination.
        let consumer = &design.modules[1];
        let live = consumer
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|s| matches!(s.op, Op::FifoEmpty { dst: Some(_), .. }));
        assert!(live);
        // The producer's dead check no longer does.
        let producer = &design.modules[0];
        let dead = producer
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .any(|s| matches!(s.op, Op::FifoFull { dst: None, .. }));
        assert!(dead);
    }
}
