//! Fluent builders for constructing [`Design`]s in Rust code.
//!
//! The builders play the role of the HLS front end: benchmark designs (see
//! the `omnisim-designs` crate) are authored directly against this API, which
//! produces the same artefact a Vitis HLS front-end compilation would hand to
//! OmniSim — scheduled basic blocks connected by FIFO channels.
//!
//! Two levels of API are provided:
//!
//! * a *sequential* API ([`ModuleBuilder::entry`], [`ModuleBuilder::seq`],
//!   [`ModuleBuilder::counted_loop`], [`ModuleBuilder::loop_block`],
//!   [`ModuleBuilder::exit`]) that chains blocks in program order, and
//! * a *low-level* API ([`ModuleBuilder::new_block`],
//!   [`ModuleBuilder::fill_block`]) for arbitrary control-flow graphs.

use crate::design::{ArraySpec, AxiPortSpec, Design, FifoSpec, Module, ModuleKind};
use crate::error::IrError;
use crate::expr::Expr;
use crate::ids::{ArrayId, AxiId, BlockId, FifoId, ModuleId, OutputId, VarId};
use crate::op::{Block, Op, ScheduledOp, Terminator};
use crate::schedule::BlockSchedule;
use crate::validate;
use std::collections::HashMap;

/// Builds a [`Design`] incrementally.
#[derive(Debug)]
pub struct DesignBuilder {
    name: String,
    modules: Vec<Module>,
    fifos: Vec<FifoSpec>,
    arrays: Vec<ArraySpec>,
    axi_ports: Vec<AxiPortSpec>,
    outputs: Vec<String>,
    top: Option<ModuleId>,
}

impl DesignBuilder {
    /// Starts a new design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DesignBuilder {
            name: name.into(),
            modules: Vec::new(),
            fifos: Vec::new(),
            arrays: Vec::new(),
            axi_ports: Vec::new(),
            outputs: Vec::new(),
            top: None,
        }
    }

    /// Declares a FIFO channel with the given buffer depth.
    pub fn fifo(&mut self, name: impl Into<String>, depth: usize) -> FifoId {
        let id = FifoId::from_index(self.fifos.len());
        self.fifos.push(FifoSpec {
            name: name.into(),
            depth,
        });
        id
    }

    /// Declares a global array initialised with `init`.
    pub fn array(&mut self, name: impl Into<String>, init: impl Into<Vec<i64>>) -> ArrayId {
        let id = ArrayId::from_index(self.arrays.len());
        self.arrays.push(ArraySpec {
            name: name.into(),
            init: init.into(),
        });
        id
    }

    /// Declares a zero-initialised global array of the given length.
    pub fn zero_array(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        self.array(name, vec![0; len])
    }

    /// Declares an AXI master port backed by `array` with the given request
    /// latency.
    pub fn axi_port(
        &mut self,
        name: impl Into<String>,
        array: ArrayId,
        request_latency: u64,
    ) -> AxiId {
        let id = AxiId::from_index(self.axi_ports.len());
        self.axi_ports.push(AxiPortSpec {
            name: name.into(),
            array,
            request_latency,
        });
        id
    }

    /// Declares a testbench-visible scalar output.
    pub fn output(&mut self, name: impl Into<String>) -> OutputId {
        let id = OutputId::from_index(self.outputs.len());
        self.outputs.push(name.into());
        id
    }

    /// Defines a function module by running `f` against a [`ModuleBuilder`].
    pub fn function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut ModuleBuilder),
    ) -> ModuleId {
        let mut mb = ModuleBuilder::new(name.into());
        f(&mut mb);
        let module = mb.finish();
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(module);
        id
    }

    /// Defines a function module and marks it as the design top.
    pub fn function_top(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut ModuleBuilder),
    ) -> ModuleId {
        let id = self.function(name, f);
        self.top = Some(id);
        id
    }

    /// Defines a dataflow region whose children run concurrently and marks it
    /// as the design top.
    pub fn dataflow_top(
        &mut self,
        name: impl Into<String>,
        children: impl IntoIterator<Item = ModuleId>,
    ) -> ModuleId {
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(Module {
            name: name.into(),
            kind: ModuleKind::Dataflow {
                children: children.into_iter().collect(),
            },
            blocks: Vec::new(),
            num_vars: 0,
            var_names: Vec::new(),
        });
        self.top = Some(id);
        id
    }

    /// Finishes the design, running full validation.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] describing the first structural problem found
    /// (dangling references, non point-to-point FIFOs, bad schedules, …).
    pub fn build(self) -> Result<Design, IrError> {
        let design = Design {
            name: self.name,
            modules: self.modules,
            fifos: self.fifos,
            arrays: self.arrays,
            axi_ports: self.axi_ports,
            outputs: self.outputs,
            top: self.top.ok_or(IrError::MissingTop)?,
        };
        validate::validate(&design)?;
        Ok(design)
    }

    /// Finishes the design without validation. Intended for tests that need
    /// to construct deliberately malformed designs.
    pub fn build_unchecked(self) -> Design {
        Design {
            name: self.name,
            modules: self.modules,
            fifos: self.fifos,
            arrays: self.arrays,
            axi_ports: self.axi_ports,
            outputs: self.outputs,
            top: self.top.unwrap_or(ModuleId(0)),
        }
    }
}

/// Which terminator slot of a block still needs to be pointed at the next
/// sequential segment.
#[derive(Debug, Clone, Copy)]
enum PendingExit {
    /// The block has no explicit terminator yet; it falls through.
    FallThrough(BlockId),
    /// The false edge of the block's branch terminator is unresolved.
    BranchFalse(BlockId),
    /// The true edge of the block's branch terminator is unresolved.
    BranchTrue(BlockId),
}

/// Builds the basic blocks of one function module.
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    blocks: Vec<Block>,
    vars: Vec<String>,
    var_lookup: HashMap<String, VarId>,
    pending: Vec<PendingExit>,
    tmp_counter: u32,
}

impl ModuleBuilder {
    fn new(name: String) -> Self {
        ModuleBuilder {
            name,
            blocks: Vec::new(),
            vars: Vec::new(),
            var_lookup: HashMap::new(),
            pending: Vec::new(),
            tmp_counter: 0,
        }
    }

    /// Returns the variable named `name`, creating it on first use.
    pub fn var(&mut self, name: impl AsRef<str>) -> VarId {
        let name = name.as_ref();
        if let Some(&id) = self.var_lookup.get(name) {
            return id;
        }
        let id = VarId::from_index(self.vars.len());
        self.vars.push(name.to_owned());
        self.var_lookup.insert(name.to_owned(), id);
        id
    }

    /// Shorthand for `Expr::var(self.var(name))`.
    pub fn var_expr(&mut self, name: impl AsRef<str>) -> Expr {
        Expr::var(self.var(name))
    }

    /// Allocates a fresh anonymous temporary variable.
    pub fn tmp(&mut self) -> VarId {
        self.tmp_counter += 1;
        self.var(format!("%t{}", self.tmp_counter))
    }

    /// Allocates an empty placeholder block and returns its identifier.
    /// Use [`ModuleBuilder::fill_block`] to populate it.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block::placeholder());
        id
    }

    /// Populates a block previously allocated with [`ModuleBuilder::new_block`].
    ///
    /// This low-level entry point does not participate in sequential
    /// chaining: the closure must set an explicit terminator (the default is
    /// `Return(None)`).
    pub fn fill_block(&mut self, id: BlockId, f: impl FnOnce(&mut BlockBuilder)) {
        let mut bb = BlockBuilder::new(self, Some(id));
        f(&mut bb);
        let (block, _) = bb.finish();
        self.blocks[id.index()] = block;
    }

    fn patch_pending_to(&mut self, target: BlockId) {
        let pending = std::mem::take(&mut self.pending);
        for exit in pending {
            match exit {
                PendingExit::FallThrough(b) => {
                    self.blocks[b.index()].terminator = Terminator::Jump(target);
                }
                PendingExit::BranchFalse(b) => {
                    if let Terminator::Branch { if_false, .. } =
                        &mut self.blocks[b.index()].terminator
                    {
                        *if_false = target;
                    }
                }
                PendingExit::BranchTrue(b) => {
                    if let Terminator::Branch { if_true, .. } =
                        &mut self.blocks[b.index()].terminator
                    {
                        *if_true = target;
                    }
                }
            }
        }
    }

    /// Appends a sequential block. If a previous sequential segment exists,
    /// its exit is linked to this block.
    pub fn seq(&mut self, f: impl FnOnce(&mut BlockBuilder)) -> BlockId {
        let id = self.new_block();
        let mut bb = BlockBuilder::new(self, Some(id));
        f(&mut bb);
        let (block, explicit_term) = bb.finish();
        self.blocks[id.index()] = block;
        self.patch_pending_to(id);
        if !explicit_term {
            self.pending.push(PendingExit::FallThrough(id));
        }
        id
    }

    /// Alias of [`ModuleBuilder::seq`] naming the first block of a module.
    pub fn entry(&mut self, f: impl FnOnce(&mut BlockBuilder)) -> BlockId {
        self.seq(f)
    }

    /// Alias of [`ModuleBuilder::seq`] naming the last block of a module.
    pub fn exit(&mut self, f: impl FnOnce(&mut BlockBuilder)) -> BlockId {
        self.seq(f)
    }

    /// Appends a counted loop `for (name = 0; name < trip_count; name++)`
    /// whose single-block body is pipelined with initiation interval `ii`.
    ///
    /// The body closure runs once to emit the loop-body operations; the
    /// builder appends the induction-variable increment and the back edge.
    pub fn counted_loop(
        &mut self,
        name: impl AsRef<str>,
        trip_count: i64,
        ii: u64,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> BlockId {
        let ivar = self.var(name);
        // Initialise the induction variable in a small preheader block.
        self.seq(|b| {
            b.assign(ivar, Expr::imm(0));
        });

        let id = self.new_block();
        let mut bb = BlockBuilder::new(self, Some(id));
        f(&mut bb);
        bb.assign(ivar, Expr::var(ivar).add(Expr::imm(1)));
        let (mut block, _) = bb.finish();
        let latency = block.schedule.latency;
        block.schedule = if ii < latency {
            BlockSchedule::pipelined(latency, ii)
        } else {
            BlockSchedule::new(latency.max(ii))
        };
        block.terminator = Terminator::Branch {
            cond: Expr::var(ivar).lt(Expr::imm(trip_count)),
            if_true: id,
            if_false: id, // patched when the next segment is appended
        };
        self.blocks[id.index()] = block;
        self.patch_pending_to(id);
        self.pending.push(PendingExit::BranchFalse(id));
        id
    }

    /// Appends a loop block that repeats until [`BlockBuilder::exit_loop_if`]
    /// fires, with initiation interval `ii`. If no exit condition is given the
    /// loop is infinite (`while (true)` with no break).
    pub fn loop_block(&mut self, ii: u64, f: impl FnOnce(&mut BlockBuilder)) -> BlockId {
        let id = self.new_block();
        let mut bb = BlockBuilder::new(self, Some(id));
        f(&mut bb);
        let break_cond = bb.break_cond.take();
        let (mut block, _) = bb.finish();
        let latency = block.schedule.latency;
        block.schedule = if ii < latency {
            BlockSchedule::pipelined(latency, ii)
        } else {
            BlockSchedule::new(latency.max(ii))
        };
        block.terminator = match break_cond {
            Some(cond) => Terminator::Branch {
                cond,
                if_true: id, // patched to the next segment
                if_false: id,
            },
            None => Terminator::Jump(id),
        };
        self.blocks[id.index()] = block;
        self.patch_pending_to(id);
        if matches!(
            block_terminator(&self.blocks[id.index()]),
            Terminator::Branch { .. }
        ) {
            self.pending.push(PendingExit::BranchTrue(id));
        }
        id
    }

    fn finish(mut self) -> Module {
        if self.blocks.is_empty() {
            // A module with no body: single empty return block.
            self.new_block();
        }
        // Any block still falling through keeps its placeholder Return(None)
        // terminator; branch slots that were never patched need a real
        // landing block.
        let needs_landing = self
            .pending
            .iter()
            .any(|p| matches!(p, PendingExit::BranchFalse(_) | PendingExit::BranchTrue(_)));
        if needs_landing {
            let landing = self.new_block();
            let pending = std::mem::take(&mut self.pending);
            for exit in pending {
                match exit {
                    PendingExit::FallThrough(b) => {
                        self.blocks[b.index()].terminator = Terminator::Jump(landing);
                    }
                    PendingExit::BranchFalse(b) => {
                        if let Terminator::Branch { if_false, .. } =
                            &mut self.blocks[b.index()].terminator
                        {
                            *if_false = landing;
                        }
                    }
                    PendingExit::BranchTrue(b) => {
                        if let Terminator::Branch { if_true, .. } =
                            &mut self.blocks[b.index()].terminator
                        {
                            *if_true = landing;
                        }
                    }
                }
            }
        }
        Module {
            name: self.name,
            kind: ModuleKind::Function,
            blocks: self.blocks,
            num_vars: u32::try_from(self.vars.len()).expect("too many variables"),
            var_names: self.vars,
        }
    }
}

fn block_terminator(block: &Block) -> &Terminator {
    &block.terminator
}

/// Builds the operations of one basic block.
#[derive(Debug)]
pub struct BlockBuilder<'m> {
    module: &'m mut ModuleBuilder,
    #[allow(dead_code)]
    id: Option<BlockId>,
    ops: Vec<ScheduledOp>,
    offset: u64,
    latency: Option<u64>,
    ii: Option<u64>,
    terminator: Option<Terminator>,
    break_cond: Option<Expr>,
}

impl<'m> BlockBuilder<'m> {
    fn new(module: &'m mut ModuleBuilder, id: Option<BlockId>) -> Self {
        BlockBuilder {
            module,
            id,
            ops: Vec::new(),
            offset: 0,
            latency: None,
            ii: None,
            terminator: None,
            break_cond: None,
        }
    }

    fn finish(self) -> (Block, bool) {
        let max_offset = self.ops.iter().map(|o| o.offset).max().unwrap_or(0);
        let latency = self.latency.unwrap_or(max_offset + 1).max(max_offset + 1);
        let schedule = match self.ii {
            Some(ii) if ii < latency => BlockSchedule::pipelined(latency, ii),
            _ => BlockSchedule::new(latency),
        };
        let explicit = self.terminator.is_some();
        (
            Block {
                ops: self.ops,
                terminator: self.terminator.unwrap_or(Terminator::Return(None)),
                schedule,
            },
            explicit,
        )
    }

    /// Returns (creating if needed) the module variable named `name`.
    pub fn var(&mut self, name: impl AsRef<str>) -> VarId {
        self.module.var(name)
    }

    /// Shorthand for `Expr::var(self.var(name))`.
    pub fn var_expr(&mut self, name: impl AsRef<str>) -> Expr {
        let v = self.module.var(name);
        Expr::var(v)
    }

    /// Allocates a fresh anonymous temporary variable.
    pub fn tmp(&mut self) -> VarId {
        self.module.tmp()
    }

    /// Sets the cycle offset at which subsequent operations are scheduled.
    pub fn at(&mut self, offset: u64) -> &mut Self {
        self.offset = offset;
        self
    }

    /// Advances the schedule cursor by `cycles`.
    pub fn step(&mut self, cycles: u64) -> &mut Self {
        self.offset += cycles;
        self
    }

    /// Sets the block latency explicitly (otherwise `max op offset + 1`).
    pub fn latency(&mut self, cycles: u64) -> &mut Self {
        self.latency = Some(cycles);
        self
    }

    /// Marks the block as a pipelined loop body with the given initiation
    /// interval (only meaningful when the block loops back to itself).
    pub fn pipeline(&mut self, ii: u64) -> &mut Self {
        self.ii = Some(ii);
        self
    }

    fn push(&mut self, op: Op) {
        self.ops.push(ScheduledOp {
            offset: self.offset,
            op,
        });
    }

    /// Emits `dst = expr`.
    pub fn assign(&mut self, dst: VarId, expr: Expr) -> &mut Self {
        self.push(Op::Assign { dst, expr });
        self
    }

    /// Emits an array load and returns the destination variable.
    pub fn array_load(&mut self, array: ArrayId, index: Expr) -> VarId {
        let dst = self.module.tmp();
        self.push(Op::ArrayLoad { dst, array, index });
        dst
    }

    /// Emits an array load into an existing variable.
    pub fn array_load_into(&mut self, dst: VarId, array: ArrayId, index: Expr) -> &mut Self {
        self.push(Op::ArrayLoad { dst, array, index });
        self
    }

    /// Emits an array store.
    pub fn array_store(&mut self, array: ArrayId, index: Expr, value: Expr) -> &mut Self {
        self.push(Op::ArrayStore {
            array,
            index,
            value,
        });
        self
    }

    /// Emits a blocking FIFO write.
    pub fn fifo_write(&mut self, fifo: FifoId, value: Expr) -> &mut Self {
        self.push(Op::FifoWrite { fifo, value });
        self
    }

    /// Emits a blocking FIFO read and returns the destination variable.
    pub fn fifo_read(&mut self, fifo: FifoId) -> VarId {
        let dst = self.module.tmp();
        self.push(Op::FifoRead { fifo, dst });
        dst
    }

    /// Emits a blocking FIFO read into an existing variable.
    pub fn fifo_read_into(&mut self, dst: VarId, fifo: FifoId) -> &mut Self {
        self.push(Op::FifoRead { fifo, dst });
        self
    }

    /// Emits a non-blocking FIFO write and returns the success-flag variable.
    pub fn fifo_nb_write(&mut self, fifo: FifoId, value: Expr) -> VarId {
        let success = self.module.tmp();
        self.push(Op::FifoNbWrite {
            fifo,
            value,
            success: Some(success),
        });
        success
    }

    /// Emits a non-blocking FIFO write whose success flag is ignored
    /// (Fig. 4 Ex. 4a of the paper: data silently dropped on failure).
    pub fn fifo_nb_write_ignored(&mut self, fifo: FifoId, value: Expr) -> &mut Self {
        self.push(Op::FifoNbWrite {
            fifo,
            value,
            success: None,
        });
        self
    }

    /// Emits a non-blocking FIFO read, returning `(data, success)` variables.
    pub fn fifo_nb_read(&mut self, fifo: FifoId) -> (VarId, VarId) {
        let dst = self.module.tmp();
        let success = self.module.tmp();
        self.push(Op::FifoNbRead {
            fifo,
            dst,
            success: Some(success),
        });
        (dst, success)
    }

    /// Emits a non-blocking FIFO read into existing variables.
    pub fn fifo_nb_read_into(
        &mut self,
        fifo: FifoId,
        dst: VarId,
        success: Option<VarId>,
    ) -> &mut Self {
        self.push(Op::FifoNbRead { fifo, dst, success });
        self
    }

    /// Emits a FIFO `empty()` check and returns the result variable.
    pub fn fifo_empty(&mut self, fifo: FifoId) -> VarId {
        let dst = self.module.tmp();
        self.push(Op::FifoEmpty {
            fifo,
            dst: Some(dst),
        });
        dst
    }

    /// Emits a FIFO `full()` check and returns the result variable.
    pub fn fifo_full(&mut self, fifo: FifoId) -> VarId {
        let dst = self.module.tmp();
        self.push(Op::FifoFull {
            fifo,
            dst: Some(dst),
        });
        dst
    }

    /// Emits a FIFO `empty()` check whose result is discarded.
    pub fn fifo_empty_unused(&mut self, fifo: FifoId) -> &mut Self {
        self.push(Op::FifoEmpty { fifo, dst: None });
        self
    }

    /// Emits an AXI read-burst request.
    pub fn axi_read_req(&mut self, bus: AxiId, addr: Expr, len: Expr) -> &mut Self {
        self.push(Op::AxiReadReq { bus, addr, len });
        self
    }

    /// Consumes one AXI read beat and returns the destination variable.
    pub fn axi_read(&mut self, bus: AxiId) -> VarId {
        let dst = self.module.tmp();
        self.push(Op::AxiRead { bus, dst });
        dst
    }

    /// Emits an AXI write-burst request.
    pub fn axi_write_req(&mut self, bus: AxiId, addr: Expr, len: Expr) -> &mut Self {
        self.push(Op::AxiWriteReq { bus, addr, len });
        self
    }

    /// Sends one AXI write beat.
    pub fn axi_write(&mut self, bus: AxiId, value: Expr) -> &mut Self {
        self.push(Op::AxiWrite { bus, value });
        self
    }

    /// Waits for the AXI write response.
    pub fn axi_write_resp(&mut self, bus: AxiId) -> &mut Self {
        self.push(Op::AxiWriteResp { bus });
        self
    }

    /// Calls another function module and returns the variable receiving the
    /// callee's return value.
    pub fn call(&mut self, callee: ModuleId, args: impl Into<Vec<Expr>>) -> VarId {
        let dst = self.module.tmp();
        self.push(Op::Call {
            callee,
            args: args.into(),
            dst: Some(dst),
        });
        dst
    }

    /// Calls another function module, discarding its return value.
    pub fn call_void(&mut self, callee: ModuleId, args: impl Into<Vec<Expr>>) -> &mut Self {
        self.push(Op::Call {
            callee,
            args: args.into(),
            dst: None,
        });
        self
    }

    /// Writes a testbench-visible output.
    pub fn output(&mut self, output: OutputId, value: Expr) -> &mut Self {
        self.push(Op::Output { output, value });
        self
    }

    /// Within [`ModuleBuilder::loop_block`], exits the loop when `cond` is
    /// non-zero at the end of an iteration.
    pub fn exit_loop_if(&mut self, cond: Expr) -> &mut Self {
        self.break_cond = Some(cond);
        self
    }

    /// Sets an unconditional jump terminator.
    pub fn jump(&mut self, target: BlockId) -> &mut Self {
        self.terminator = Some(Terminator::Jump(target));
        self
    }

    /// Sets a conditional branch terminator.
    pub fn branch(&mut self, cond: Expr, if_true: BlockId, if_false: BlockId) -> &mut Self {
        self.terminator = Some(Terminator::Branch {
            cond,
            if_true,
            if_false,
        });
        self
    }

    /// Sets a `return` terminator with no value.
    pub fn ret(&mut self) -> &mut Self {
        self.terminator = Some(Terminator::Return(None));
        self
    }

    /// Sets a `return value` terminator.
    pub fn ret_val(&mut self, value: Expr) -> &mut Self {
        self.terminator = Some(Terminator::Return(Some(value)));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_blocks_are_chained() {
        let mut d = DesignBuilder::new("chain");
        let out = d.output("o");
        d.function_top("f", |m| {
            let x = m.var("x");
            m.entry(|b| {
                b.assign(x, Expr::imm(1));
            });
            m.seq(|b| {
                b.assign(x, Expr::var(x).add(Expr::imm(1)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(x));
            });
        });
        let design = d.build().unwrap();
        let m = design.module(design.top);
        assert_eq!(m.blocks.len(), 3);
        assert_eq!(m.blocks[0].terminator, Terminator::Jump(BlockId(1)));
        assert_eq!(m.blocks[1].terminator, Terminator::Jump(BlockId(2)));
        assert_eq!(m.blocks[2].terminator, Terminator::Return(None));
    }

    #[test]
    fn counted_loop_builds_rotated_loop() {
        let mut d = DesignBuilder::new("loop");
        let out = d.output("o");
        d.function_top("f", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 10, 1, |b| {
                let i = b.var("i");
                b.assign(acc, Expr::var(acc).add(Expr::var(i)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        let design = d.build().unwrap();
        let m = design.module(design.top);
        // entry, preheader (i = 0), loop body, exit
        assert_eq!(m.blocks.len(), 4);
        let loop_block = &m.blocks[2];
        match &loop_block.terminator {
            Terminator::Branch {
                if_true, if_false, ..
            } => {
                assert_eq!(*if_true, BlockId(2), "back edge loops to itself");
                assert_eq!(*if_false, BlockId(3), "exit edge goes to next block");
            }
            t => panic!("expected branch, got {t:?}"),
        }
    }

    #[test]
    fn loop_block_without_break_is_infinite() {
        let mut d = DesignBuilder::new("inf");
        let f = d.fifo("q", 1);
        let producer = d.function("p", |m| {
            m.loop_block(1, |b| {
                b.fifo_nb_write_ignored(f, Expr::imm(1));
            });
        });
        let consumer = d.function("c", |m| {
            m.entry(|b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [producer, consumer]);
        let design = d.build().unwrap();
        let p = design.module(ModuleId(0));
        assert_eq!(p.blocks[0].terminator, Terminator::Jump(BlockId(0)));
    }

    #[test]
    fn loop_block_with_break_gets_landing_block() {
        let mut d = DesignBuilder::new("brk");
        let f = d.fifo("done", 1);
        let out = d.output("n");
        let watcher = d.function("w", |m| {
            let n = m.var("n");
            m.entry(|b| {
                b.assign(n, Expr::imm(0));
            });
            m.loop_block(1, |b| {
                let n = b.var("n");
                let (_, ok) = b.fifo_nb_read(f);
                b.assign(n, Expr::var(n).add(Expr::imm(1)));
                b.exit_loop_if(Expr::var(ok));
            });
            m.exit(|b| {
                let n = b.var_expr("n");
                b.output(out, n);
            });
        });
        let sender = d.function("s", |m| {
            m.entry(|b| {
                b.fifo_write(f, Expr::imm(1));
            });
        });
        d.dataflow_top("top", [watcher, sender]);
        let design = d.build().unwrap();
        let w = design.module(ModuleId(0));
        assert_eq!(w.blocks.len(), 3);
        match &w.blocks[1].terminator {
            Terminator::Branch {
                if_true, if_false, ..
            } => {
                assert_eq!(*if_false, BlockId(1), "loop continues on false");
                assert_eq!(*if_true, BlockId(2), "break jumps to exit block");
            }
            t => panic!("expected branch, got {t:?}"),
        }
    }

    #[test]
    fn variables_are_deduplicated_by_name() {
        let mut d = DesignBuilder::new("vars");
        d.function_top("f", |m| {
            let a = m.var("a");
            let a2 = m.var("a");
            assert_eq!(a, a2);
            let b = m.var("b");
            assert_ne!(a, b);
            m.entry(|blk| {
                blk.assign(a, Expr::imm(1));
                blk.assign(b, Expr::imm(2));
            });
        });
        let design = d.build().unwrap();
        assert_eq!(design.module(design.top).num_vars, 2);
    }

    #[test]
    fn latency_defaults_to_max_offset_plus_one() {
        let mut d = DesignBuilder::new("lat");
        d.function_top("f", |m| {
            m.entry(|b| {
                let x = b.var("x");
                b.assign(x, Expr::imm(0));
                b.at(3).assign(x, Expr::imm(1));
            });
        });
        let design = d.build().unwrap();
        assert_eq!(design.module(design.top).blocks[0].schedule.latency, 4);
    }

    #[test]
    fn missing_top_is_an_error() {
        let d = DesignBuilder::new("empty");
        assert_eq!(d.build().unwrap_err(), IrError::MissingTop);
    }
}
