//! A typed location inside a design.
//!
//! Validation errors ([`crate::IrError`]) and static-analyzer diagnostics
//! (`omnisim-analyze`) both need to point at "where" in a design something
//! went wrong. [`Loc`] is that shared currency: an optional module / block /
//! op-index triple, precise down to whatever granularity the reporting pass
//! actually knows. Entity identifiers (the FIFO, array or AXI port involved)
//! stay on the individual error or diagnostic — a location says *where the
//! code is*, not *what it touches*.

use crate::ids::{BlockId, ModuleId};
use std::fmt;

/// Where in a design an error or diagnostic points: a module, optionally a
/// basic block within it, optionally an op index within that block.
///
/// Ordering of precision is strictly nested: an op index without a block, or
/// a block without a module, is never produced by the constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Loc {
    /// Module the location points into, if known.
    pub module: Option<ModuleId>,
    /// Basic block within the module, if known.
    pub block: Option<BlockId>,
    /// Index of the op within the block's program order, if known.
    pub op: Option<usize>,
}

impl Loc {
    /// A location pointing nowhere (design-wide findings).
    pub const NONE: Loc = Loc {
        module: None,
        block: None,
        op: None,
    };

    /// A module-level location.
    pub fn module(module: ModuleId) -> Self {
        Loc {
            module: Some(module),
            block: None,
            op: None,
        }
    }

    /// A block-level location.
    pub fn block(module: ModuleId, block: BlockId) -> Self {
        Loc {
            module: Some(module),
            block: Some(block),
            op: None,
        }
    }

    /// An op-level location: `op` is the index into the block's op list.
    pub fn op(module: ModuleId, block: BlockId, op: usize) -> Self {
        Loc {
            module: Some(module),
            block: Some(block),
            op: Some(op),
        }
    }

    /// True if the location carries no information at all.
    pub fn is_none(&self) -> bool {
        self.module.is_none()
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.module, self.block, self.op) {
            (Some(m), Some(b), Some(o)) => write!(f, "{m}/{b}/op{o}"),
            (Some(m), Some(b), None) => write!(f, "{m}/{b}"),
            (Some(m), None, _) => write!(f, "{m}"),
            (None, _, _) => write!(f, "<design>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_narrows_with_precision() {
        assert_eq!(Loc::NONE.to_string(), "<design>");
        assert_eq!(Loc::module(ModuleId(1)).to_string(), "m1");
        assert_eq!(Loc::block(ModuleId(1), BlockId(2)).to_string(), "m1/bb2");
        assert_eq!(
            Loc::op(ModuleId(1), BlockId(2), 3).to_string(),
            "m1/bb2/op3"
        );
    }

    #[test]
    fn none_detection() {
        assert!(Loc::NONE.is_none());
        assert!(!Loc::module(ModuleId(0)).is_none());
    }
}
