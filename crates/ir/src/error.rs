//! Error types for IR construction and validation.

use crate::ids::{ArrayId, AxiId, BlockId, FifoId, ModuleId, OutputId, VarId};
use crate::loc::Loc;
use std::error::Error;
use std::fmt;

/// Errors detected while building or validating a [`crate::Design`].
///
/// Every variant that points at code carries a typed [`Loc`] (module, block,
/// op index) — the same location type the static analyzer's diagnostics use
/// — so tooling can jump to the offending op without parsing messages.
/// [`IrError::location`] extracts it uniformly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A design must contain at least one module and declare a top module.
    MissingTop,
    /// A terminator targets a block index that does not exist.
    UnknownBlock {
        /// Where the dangling reference is.
        at: Loc,
        /// The missing block.
        block: BlockId,
    },
    /// An operation references a FIFO that does not exist.
    UnknownFifo {
        /// Where the reference is.
        at: Loc,
        /// The missing FIFO.
        fifo: FifoId,
    },
    /// An operation references an array that does not exist.
    UnknownArray {
        /// Where the reference is.
        at: Loc,
        /// The missing array.
        array: ArrayId,
    },
    /// An operation references a variable past the module's variable count.
    UnknownVar {
        /// Where the reference is.
        at: Loc,
        /// The out-of-range variable.
        var: VarId,
    },
    /// An operation references a module that does not exist.
    UnknownModule {
        /// Where the reference is.
        at: Loc,
        /// The missing module.
        module: ModuleId,
    },
    /// An operation references an AXI port that does not exist.
    UnknownAxiPort {
        /// Where the reference is.
        at: Loc,
        /// The missing AXI port.
        axi: AxiId,
    },
    /// An operation writes a testbench output slot that does not exist.
    UnknownOutput {
        /// Where the reference is.
        at: Loc,
        /// The missing output slot.
        output: OutputId,
    },
    /// A dataflow region has a child that is itself a dataflow region or does
    /// not exist.
    InvalidDataflowChild {
        /// The dataflow region.
        region: ModuleId,
        /// The offending child.
        child: ModuleId,
    },
    /// A FIFO has more than one producer or more than one consumer module.
    FifoNotPointToPoint {
        /// The offending FIFO.
        fifo: FifoId,
        /// Modules that write the FIFO.
        writers: Vec<ModuleId>,
        /// Modules that read the FIFO.
        readers: Vec<ModuleId>,
    },
    /// A FIFO was declared with a depth of zero.
    ZeroDepthFifo {
        /// The offending FIFO.
        fifo: FifoId,
    },
    /// An operation's scheduled offset exceeds its block latency.
    OffsetPastLatency {
        /// The op with the bad schedule.
        at: Loc,
        /// Offending offset.
        offset: u64,
        /// Block latency.
        latency: u64,
    },
    /// Scheduled op offsets within a block must be non-decreasing (program
    /// order must agree with schedule order).
    NonMonotonicOffsets {
        /// The first op scheduled before its predecessor.
        at: Loc,
    },
    /// A function module has no basic blocks.
    EmptyFunction {
        /// The offending module.
        module: ModuleId,
    },
    /// Call graph of function modules contains a cycle (recursion is not
    /// synthesizable and not simulatable).
    RecursiveCall {
        /// A module participating in the cycle.
        module: ModuleId,
    },
}

impl IrError {
    /// The location this error points at — [`Loc::NONE`] for design-wide
    /// problems (a missing top, a FIFO declared with several endpoints…).
    pub fn location(&self) -> Loc {
        match self {
            IrError::UnknownBlock { at, .. }
            | IrError::UnknownFifo { at, .. }
            | IrError::UnknownArray { at, .. }
            | IrError::UnknownVar { at, .. }
            | IrError::UnknownModule { at, .. }
            | IrError::UnknownAxiPort { at, .. }
            | IrError::UnknownOutput { at, .. }
            | IrError::OffsetPastLatency { at, .. }
            | IrError::NonMonotonicOffsets { at } => *at,
            IrError::InvalidDataflowChild { region, .. } => Loc::module(*region),
            IrError::EmptyFunction { module } | IrError::RecursiveCall { module } => {
                Loc::module(*module)
            }
            IrError::MissingTop
            | IrError::FifoNotPointToPoint { .. }
            | IrError::ZeroDepthFifo { .. } => Loc::NONE,
        }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::MissingTop => write!(f, "design has no top module"),
            IrError::UnknownBlock { at, block } => {
                write!(f, "{at}: references unknown block {block}")
            }
            IrError::UnknownFifo { at, fifo } => {
                write!(f, "{at}: references unknown fifo {fifo}")
            }
            IrError::UnknownArray { at, array } => {
                write!(f, "{at}: references unknown array {array}")
            }
            IrError::UnknownVar { at, var } => {
                write!(f, "{at}: references unknown variable {var}")
            }
            IrError::UnknownModule { at, module } => {
                write!(f, "{at}: reference to unknown module {module}")
            }
            IrError::UnknownAxiPort { at, axi } => {
                write!(f, "{at}: references unknown axi port {axi}")
            }
            IrError::UnknownOutput { at, output } => {
                write!(f, "{at}: writes unknown output slot {output}")
            }
            IrError::InvalidDataflowChild { region, child } => {
                write!(f, "dataflow region {region} has invalid child {child}")
            }
            IrError::FifoNotPointToPoint {
                fifo,
                writers,
                readers,
            } => write!(
                f,
                "fifo {fifo} is not point-to-point ({} writers, {} readers)",
                writers.len(),
                readers.len()
            ),
            IrError::ZeroDepthFifo { fifo } => {
                write!(f, "fifo {fifo} has zero depth")
            }
            IrError::OffsetPastLatency {
                at,
                offset,
                latency,
            } => write!(
                f,
                "{at}: op offset {offset} exceeds block latency {latency}"
            ),
            IrError::NonMonotonicOffsets { at } => {
                write!(f, "{at}: op offsets are not non-decreasing")
            }
            IrError::EmptyFunction { module } => {
                write!(f, "function module {module} has no basic blocks")
            }
            IrError::RecursiveCall { module } => {
                write!(f, "call graph cycle involving module {module}")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IrError::UnknownFifo {
            at: Loc::op(ModuleId(1), BlockId(0), 2),
            fifo: FifoId(3),
        };
        let msg = e.to_string();
        assert!(msg.contains("m1"));
        assert!(msg.contains("f3"));
        assert!(msg.contains("op2"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn every_op_level_error_exposes_its_location() {
        let at = Loc::op(ModuleId(2), BlockId(1), 4);
        let e = IrError::UnknownAxiPort { at, axi: AxiId(0) };
        assert_eq!(e.location(), at);
        assert_eq!(IrError::MissingTop.location(), Loc::NONE);
        assert_eq!(
            IrError::EmptyFunction {
                module: ModuleId(3)
            }
            .location(),
            Loc::module(ModuleId(3))
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(IrError::MissingTop);
    }
}
