//! Error types for IR construction and validation.

use crate::ids::{ArrayId, BlockId, FifoId, ModuleId, VarId};
use std::error::Error;
use std::fmt;

/// Errors detected while building or validating a [`crate::Design`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A design must contain at least one module and declare a top module.
    MissingTop,
    /// A module references a block index that does not exist.
    UnknownBlock {
        /// Module containing the dangling reference.
        module: ModuleId,
        /// The missing block.
        block: BlockId,
    },
    /// An operation references a FIFO that does not exist.
    UnknownFifo {
        /// Module containing the reference.
        module: ModuleId,
        /// The missing FIFO.
        fifo: FifoId,
    },
    /// An operation references an array that does not exist.
    UnknownArray {
        /// Module containing the reference.
        module: ModuleId,
        /// The missing array.
        array: ArrayId,
    },
    /// An operation references a variable past the module's variable count.
    UnknownVar {
        /// Module containing the reference.
        module: ModuleId,
        /// The out-of-range variable.
        var: VarId,
    },
    /// An operation references a module that does not exist.
    UnknownModule {
        /// The missing module.
        module: ModuleId,
    },
    /// A dataflow region has a child that is itself a dataflow region or does
    /// not exist.
    InvalidDataflowChild {
        /// The dataflow region.
        region: ModuleId,
        /// The offending child.
        child: ModuleId,
    },
    /// A FIFO has more than one producer or more than one consumer module.
    FifoNotPointToPoint {
        /// The offending FIFO.
        fifo: FifoId,
        /// Modules that write the FIFO.
        writers: Vec<ModuleId>,
        /// Modules that read the FIFO.
        readers: Vec<ModuleId>,
    },
    /// A FIFO was declared with a depth of zero.
    ZeroDepthFifo {
        /// The offending FIFO.
        fifo: FifoId,
    },
    /// An operation's scheduled offset exceeds its block latency.
    OffsetPastLatency {
        /// Module containing the block.
        module: ModuleId,
        /// Block with the bad schedule.
        block: BlockId,
        /// Offending offset.
        offset: u64,
        /// Block latency.
        latency: u64,
    },
    /// Scheduled op offsets within a block must be non-decreasing (program
    /// order must agree with schedule order).
    NonMonotonicOffsets {
        /// Module containing the block.
        module: ModuleId,
        /// Block with the bad schedule.
        block: BlockId,
    },
    /// A function module has no basic blocks.
    EmptyFunction {
        /// The offending module.
        module: ModuleId,
    },
    /// Call graph of function modules contains a cycle (recursion is not
    /// synthesizable and not simulatable).
    RecursiveCall {
        /// A module participating in the cycle.
        module: ModuleId,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::MissingTop => write!(f, "design has no top module"),
            IrError::UnknownBlock { module, block } => {
                write!(f, "module {module} references unknown block {block}")
            }
            IrError::UnknownFifo { module, fifo } => {
                write!(f, "module {module} references unknown fifo {fifo}")
            }
            IrError::UnknownArray { module, array } => {
                write!(f, "module {module} references unknown array {array}")
            }
            IrError::UnknownVar { module, var } => {
                write!(f, "module {module} references unknown variable {var}")
            }
            IrError::UnknownModule { module } => {
                write!(f, "reference to unknown module {module}")
            }
            IrError::InvalidDataflowChild { region, child } => {
                write!(f, "dataflow region {region} has invalid child {child}")
            }
            IrError::FifoNotPointToPoint {
                fifo,
                writers,
                readers,
            } => write!(
                f,
                "fifo {fifo} is not point-to-point ({} writers, {} readers)",
                writers.len(),
                readers.len()
            ),
            IrError::ZeroDepthFifo { fifo } => {
                write!(f, "fifo {fifo} has zero depth")
            }
            IrError::OffsetPastLatency {
                module,
                block,
                offset,
                latency,
            } => write!(
                f,
                "module {module} block {block}: op offset {offset} exceeds block latency {latency}"
            ),
            IrError::NonMonotonicOffsets { module, block } => write!(
                f,
                "module {module} block {block}: op offsets are not non-decreasing"
            ),
            IrError::EmptyFunction { module } => {
                write!(f, "function module {module} has no basic blocks")
            }
            IrError::RecursiveCall { module } => {
                write!(f, "call graph cycle involving module {module}")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = IrError::UnknownFifo {
            module: ModuleId(1),
            fifo: FifoId(3),
        };
        let msg = e.to_string();
        assert!(msg.contains("m1"));
        assert!(msg.contains("f3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(IrError::MissingTop);
    }
}
