//! Static scheduling information attached to basic blocks.
//!
//! In a real HLS flow this information comes out of C synthesis: every basic
//! block of a module is assigned a latency in clock cycles, every operation a
//! start cycle within its block, and pipelined loops an initiation interval
//! (II). All simulators in this workspace honour the same interpretation,
//! documented on [`BlockSchedule`].

/// The static schedule of one basic block.
///
/// *Interpretation* (the "timing model contract" shared by every simulator):
///
/// * A module enters the block at some absolute cycle `T`.
/// * The operation with offset `o` nominally executes at cycle `T + o`
///   (plus any stall accumulated by earlier operations of the same block).
/// * The block nominally exits at `T + latency` (plus accumulated stalls).
/// * If the block is a self-looping pipelined loop body (its terminator can
///   branch back to itself) and [`BlockSchedule::ii`] is set, the *next*
///   iteration enters at `T + ii` (plus stalls) rather than at block exit,
///   which reproduces the `(trip_count − 1) × II + latency` latency formula
///   of a pipelined HLS loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockSchedule {
    /// Number of clock cycles from block entry to block exit, absent stalls.
    pub latency: u64,
    /// Initiation interval for pipelined self-loops. `None` means the block
    /// is not pipelined and back-to-back iterations are `latency` apart.
    pub ii: Option<u64>,
}

impl BlockSchedule {
    /// Creates a non-pipelined schedule with the given latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero; every scheduled block consumes at least
    /// one cycle (combinational chains are folded into their parent block).
    pub fn new(latency: u64) -> Self {
        assert!(latency > 0, "block latency must be at least one cycle");
        Self { latency, ii: None }
    }

    /// Creates a pipelined schedule with the given latency and initiation
    /// interval.
    ///
    /// # Panics
    ///
    /// Panics if `latency` or `ii` is zero, or if `ii > latency`.
    pub fn pipelined(latency: u64, ii: u64) -> Self {
        assert!(latency > 0, "block latency must be at least one cycle");
        assert!(ii > 0, "initiation interval must be at least one cycle");
        assert!(
            ii <= latency,
            "initiation interval cannot exceed block latency"
        );
        Self {
            latency,
            ii: Some(ii),
        }
    }

    /// Cycles between consecutive iterations when the block loops to itself.
    pub fn iteration_interval(&self) -> u64 {
        self.ii.unwrap_or(self.latency)
    }
}

impl Default for BlockSchedule {
    /// A single-cycle, non-pipelined block.
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_cycle() {
        let s = BlockSchedule::default();
        assert_eq!(s.latency, 1);
        assert_eq!(s.iteration_interval(), 1);
    }

    #[test]
    fn pipelined_iteration_interval() {
        let s = BlockSchedule::pipelined(4, 1);
        assert_eq!(s.iteration_interval(), 1);
        assert_eq!(s.latency, 4);
    }

    #[test]
    fn non_pipelined_interval_equals_latency() {
        assert_eq!(BlockSchedule::new(3).iteration_interval(), 3);
    }

    #[test]
    #[should_panic(expected = "latency must be at least one")]
    fn zero_latency_rejected() {
        let _ = BlockSchedule::new(0);
    }

    #[test]
    #[should_panic(expected = "initiation interval cannot exceed")]
    fn ii_larger_than_latency_rejected() {
        let _ = BlockSchedule::pipelined(2, 3);
    }
}
