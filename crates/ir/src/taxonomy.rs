//! The paper's dataflow-design taxonomy (§3): Type A, B and C, and the
//! simulation-requirement levels L1–L3 they imply.
//!
//! * **Type A** — non-dataflow or blocking-only FIFO access, acyclic module
//!   dependencies, one possible behaviour per FIFO access. Functionality and
//!   performance simulation are both concurrency- and cycle-independent (L1).
//! * **Type B** — may use non-blocking accesses, infinite loops or cyclic
//!   dependencies, but program behaviour does not depend on the outcome of a
//!   non-blocking access. Functionality simulation needs multi-threading
//!   (L2); performance simulation needs exact hardware cycles (L3).
//! * **Type C** — as Type B, but the outcome of a non-blocking access changes
//!   program behaviour (drops, branches, state updates). Both simulations are
//!   concurrency- and cycle-dependent (L3).
//!
//! Type-A-versus-not classification is exact (it only needs syntactic
//! features). Distinguishing B from C requires knowing whether a non-blocking
//! outcome can change *observable* behaviour, which in general needs value
//! analysis; [`classify`] uses a conservative taint heuristic that matches the
//! hand labels of Table 4 for every design in the benchmark suite, and
//! designs may carry an explicit label where the heuristic is insufficient.

use crate::design::{Design, ModuleKind};
use crate::ids::{ModuleId, VarId};
use crate::op::{Op, Terminator};
use crate::validate::fifo_endpoints;
use std::collections::HashSet;
use std::fmt;

/// The design classes of the paper's taxonomy (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DesignClass {
    /// Blocking-only, acyclic, single-behaviour designs.
    TypeA,
    /// Non-blocking / cyclic / infinite-loop designs with a single behaviour
    /// per FIFO access.
    TypeB,
    /// Designs whose behaviour depends on non-blocking access outcomes.
    TypeC,
}

impl fmt::Display for DesignClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignClass::TypeA => write!(f, "A"),
            DesignClass::TypeB => write!(f, "B"),
            DesignClass::TypeC => write!(f, "C"),
        }
    }
}

/// Simulation requirement levels (Fig. 4, top row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SimLevel {
    /// Concurrency-independent, cycle-independent.
    L1,
    /// Concurrency-dependent, cycle-independent.
    L2,
    /// Concurrency-dependent, cycle-dependent.
    L3,
}

impl fmt::Display for SimLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimLevel::L1 => write!(f, "L1"),
            SimLevel::L2 => write!(f, "L2"),
            SimLevel::L3 => write!(f, "L3"),
        }
    }
}

impl DesignClass {
    /// Functionality-simulation requirement level for this class.
    pub fn func_sim_level(self) -> SimLevel {
        match self {
            DesignClass::TypeA => SimLevel::L1,
            DesignClass::TypeB => SimLevel::L2,
            DesignClass::TypeC => SimLevel::L3,
        }
    }

    /// Performance-simulation requirement level for this class.
    pub fn perf_sim_level(self) -> SimLevel {
        match self {
            DesignClass::TypeA => SimLevel::L1,
            DesignClass::TypeB | DesignClass::TypeC => SimLevel::L3,
        }
    }
}

/// Structural features of a design relevant to the taxonomy, plus the
/// resulting classification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaxonomyReport {
    /// The inferred design class.
    pub class: DesignClass,
    /// Number of modules (dataflow regions included).
    pub module_count: usize,
    /// Number of FIFO channels.
    pub fifo_count: usize,
    /// True if any non-blocking FIFO access or live status check exists.
    pub uses_nonblocking: bool,
    /// True if any blocking FIFO access exists.
    pub uses_blocking: bool,
    /// True if the dataflow task graph (producer → consumer edges) has a cycle.
    pub cyclic_dataflow: bool,
    /// True if any module contains a control-flow loop with no exit edge.
    pub has_infinite_loop: bool,
    /// True if a non-blocking outcome can (conservatively) influence
    /// observable behaviour: an ignored non-blocking write result, or taint
    /// reaching an output, an array store or a different FIFO.
    pub nb_outcome_affects_behavior: bool,
}

impl TaxonomyReport {
    /// Functionality-simulation level required by this design.
    pub fn func_sim_level(&self) -> SimLevel {
        self.class.func_sim_level()
    }

    /// Performance-simulation level required by this design.
    pub fn perf_sim_level(&self) -> SimLevel {
        self.class.perf_sim_level()
    }

    /// "B", "NB" or "B/NB" — the FIFO access style string used in Table 4.
    pub fn access_style(&self) -> &'static str {
        match (self.uses_blocking, self.uses_nonblocking) {
            (true, true) => "B/NB",
            (false, true) => "NB",
            _ => "B",
        }
    }
}

/// Classifies a design according to the paper's taxonomy.
pub fn classify(design: &Design) -> TaxonomyReport {
    let uses_nonblocking = design.modules.iter().any(|m| {
        m.blocks
            .iter()
            .any(|b| b.ops.iter().any(|s| s.op.is_nonblocking_fifo()))
    });
    let uses_blocking = design.modules.iter().any(|m| {
        m.blocks.iter().any(|b| {
            b.ops
                .iter()
                .any(|s| matches!(s.op, Op::FifoRead { .. } | Op::FifoWrite { .. }))
        })
    });
    let cyclic_dataflow = dataflow_graph_has_cycle(design);
    let has_infinite_loop = design
        .module_ids()
        .any(|m| module_has_infinite_loop(design, m));
    let nb_outcome_affects_behavior = design
        .module_ids()
        .any(|m| nb_outcome_observable(design, m));

    let class = if !uses_nonblocking && !cyclic_dataflow && !has_infinite_loop {
        DesignClass::TypeA
    } else if nb_outcome_affects_behavior {
        DesignClass::TypeC
    } else {
        DesignClass::TypeB
    };

    TaxonomyReport {
        class,
        module_count: design.modules.len(),
        fifo_count: design.fifos.len(),
        uses_nonblocking,
        uses_blocking,
        cyclic_dataflow,
        has_infinite_loop,
        nb_outcome_affects_behavior,
    }
}

/// True if the producer→consumer graph of the dataflow tasks has a cycle.
/// FIFO accesses inside called sub-functions run on the caller's thread, so
/// a callee's endpoints are attributed to every module that can reach it
/// through `Op::Call` — otherwise a cycle closed through a wrapped read
/// would go unseen.
pub fn dataflow_graph_has_cycle(design: &Design) -> bool {
    let endpoints = fifo_endpoints(design);
    let closures = crate::validate::call_closures(design);
    let n = design.modules.len();
    // owners[m] = modules whose call closure contains m.
    let mut owners = vec![Vec::new(); n];
    for (root, closure) in closures.iter().enumerate() {
        for m in closure {
            owners[m.index()].push(root);
        }
    }
    let mut adj = vec![Vec::new(); n];
    for (writers, readers) in &endpoints {
        for w in writers {
            for r in readers {
                for &wo in &owners[w.index()] {
                    for &ro in &owners[r.index()] {
                        if wo != ro {
                            adj[wo].push(ro);
                        }
                    }
                }
            }
        }
    }
    // Standard three-colour DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        White,
        Grey,
        Black,
    }
    fn dfs(v: usize, adj: &[Vec<usize>], colour: &mut [C]) -> bool {
        colour[v] = C::Grey;
        for &w in &adj[v] {
            match colour[w] {
                C::Grey => return true,
                C::White => {
                    if dfs(w, adj, colour) {
                        return true;
                    }
                }
                C::Black => {}
            }
        }
        colour[v] = C::Black;
        false
    }
    let mut colour = vec![C::White; n];
    (0..n).any(|v| colour[v] == C::White && dfs(v, &adj, &mut colour))
}

fn module_has_infinite_loop(design: &Design, mid: ModuleId) -> bool {
    let module = design.module(mid);
    if let ModuleKind::Dataflow { .. } = module.kind {
        return false;
    }
    // A block whose only successor is itself is an infinite loop
    // (`while (true)` with no break).
    module.blocks.iter().enumerate().any(|(i, b)| {
        let succ = b.terminator.successors();
        !succ.is_empty() && succ.iter().all(|s| s.index() == i)
    })
}

/// Conservative taint analysis: can the outcome of a non-blocking access
/// change what the module observably does?
fn nb_outcome_observable(design: &Design, mid: ModuleId) -> bool {
    let module = design.module(mid);
    if module.blocks.is_empty() {
        return false;
    }

    // An ignored non-blocking write result means data is silently dropped on
    // failure — functional behaviour depends on the outcome (Fig. 4 Ex. 4a).
    for block in &module.blocks {
        for sop in &block.ops {
            if let Op::FifoNbWrite { success: None, .. } = sop.op {
                return true;
            }
        }
    }

    // Collect directly tainted variables: results of NB accesses and checks.
    let mut tainted: HashSet<VarId> = HashSet::new();
    for block in &module.blocks {
        for sop in &block.ops {
            if let Some(v) = sop.op.nb_result_var() {
                tainted.insert(v);
            }
            if let Op::FifoNbRead { dst, .. } = sop.op {
                tainted.insert(dst);
            }
        }
    }
    if tainted.is_empty() {
        return false;
    }

    let expr_tainted = |expr: &crate::expr::Expr, tainted: &HashSet<VarId>| {
        let mut vars = Vec::new();
        expr.collect_vars(&mut vars);
        vars.iter().any(|v| tainted.contains(v))
    };

    // Propagate data taint through assignments to a fixed point, and detect
    // control taint (a branch whose condition is tainted).
    let mut control_tainted = false;
    loop {
        let mut changed = false;
        for block in &module.blocks {
            for sop in &block.ops {
                if let Op::Assign { dst, expr } = &sop.op {
                    if expr_tainted(expr, &tainted) && tainted.insert(*dst) {
                        changed = true;
                    }
                }
            }
            if let Terminator::Branch { cond, .. } = &block.terminator {
                if expr_tainted(cond, &tainted) {
                    control_tainted = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Coarse control-dependence: if a tainted branch exists, every variable
    // assigned in the module is potentially tainted.
    if control_tainted {
        for block in &module.blocks {
            for sop in &block.ops {
                if let Op::Assign { dst, .. } = sop.op {
                    tainted.insert(dst);
                }
            }
        }
    }

    // Observable sinks: outputs, array stores, and writes to a *different*
    // FIFO whose value or guard is tainted.
    for block in &module.blocks {
        for sop in &block.ops {
            match &sop.op {
                Op::Output { value, .. } if expr_tainted(value, &tainted) => {
                    return true;
                }
                Op::ArrayStore { index, value, .. }
                    if expr_tainted(index, &tainted) || expr_tainted(value, &tainted) =>
                {
                    return true;
                }
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::expr::Expr;

    fn type_a_design() -> Design {
        let mut d = DesignBuilder::new("a");
        let f = d.fifo("q", 2);
        let data = d.array("data", vec![1, 2, 3, 4]);
        let out = d.output("sum");
        let p = d.function("p", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(data, i);
                b.fifo_write(f, Expr::var(v));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 4, 1, |b| {
                let v = b.fifo_read(f);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        d.build().unwrap()
    }

    #[test]
    fn blocking_acyclic_is_type_a() {
        let r = classify(&type_a_design());
        assert_eq!(r.class, DesignClass::TypeA);
        assert_eq!(r.func_sim_level(), SimLevel::L1);
        assert_eq!(r.perf_sim_level(), SimLevel::L1);
        assert!(!r.cyclic_dataflow);
        assert!(!r.uses_nonblocking);
        assert_eq!(r.access_style(), "B");
    }

    #[test]
    fn nb_retry_loop_is_type_b() {
        // Fig. 4 Ex. 2: producer retries a non-blocking write until it
        // succeeds; the data sequence does not depend on the outcome.
        let mut d = DesignBuilder::new("ex2ish");
        let f = d.fifo("q", 2);
        let done = d.fifo("done", 1);
        let data = d.array("data", vec![1, 2, 3, 4]);
        let out = d.output("sum");
        let p = d.function("p", |m| {
            let i = m.var("i");
            m.entry(|b| {
                b.assign(i, Expr::imm(0));
            });
            m.loop_block(1, |b| {
                let iv = Expr::var(b.var("i"));
                let v = b.array_load(data, iv.clone());
                let ok = b.fifo_nb_write(f, Expr::var(v));
                b.assign(i, Expr::var(ok).select(iv.clone().add(Expr::imm(1)), iv));
                let (_d, got) = b.fifo_nb_read(done);
                b.exit_loop_if(Expr::var(got));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 4, 1, |b| {
                let v = b.fifo_read(f);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
                b.fifo_write(done, Expr::imm(1));
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().unwrap();
        let r = classify(&design);
        assert_eq!(r.class, DesignClass::TypeB);
        assert!(r.uses_nonblocking);
        assert!(r.cyclic_dataflow, "done signal feeds back to the producer");
    }

    #[test]
    fn dropped_write_is_type_c() {
        // Fig. 4 Ex. 4a: result of write_nb ignored, data silently dropped.
        let mut d = DesignBuilder::new("ex4aish");
        let f = d.fifo("q", 1);
        let data = d.array("data", vec![1, 2, 3, 4]);
        let out = d.output("sum");
        let p = d.function("p", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(data, i);
                b.fifo_nb_write_ignored(f, Expr::var(v));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 4, 2, |b| {
                let (v, ok) = b.fifo_nb_read(f);
                b.assign(
                    acc,
                    Expr::var(ok).select(Expr::var(acc).add(Expr::var(v)), Expr::var(acc)),
                );
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        let r = classify(&d.build().unwrap());
        assert_eq!(r.class, DesignClass::TypeC);
        assert_eq!(r.func_sim_level(), SimLevel::L3);
        assert_eq!(r.perf_sim_level(), SimLevel::L3);
    }

    #[test]
    fn counter_fed_by_nb_outcome_is_type_c() {
        // Fig. 4 Ex. 4b: an explicit drop counter is an output.
        let mut d = DesignBuilder::new("ex4bish");
        let f = d.fifo("q", 1);
        let dropped = d.output("dropped");
        let p = d.function("p", |m| {
            let n = m.var("n");
            m.entry(|b| {
                b.assign(n, Expr::imm(0));
            });
            m.counted_loop("i", 4, 1, |b| {
                let ok = b.fifo_nb_write(f, Expr::imm(1));
                b.assign(
                    n,
                    Expr::var(ok).select(Expr::var(n), Expr::var(n).add(Expr::imm(1))),
                );
            });
            m.exit(|b| {
                b.output(dropped, Expr::var(n));
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", 2, 1, |b| {
                let _ = b.fifo_read(f);
            });
        });
        d.dataflow_top("top", [p, c]);
        let r = classify(&d.build().unwrap());
        assert_eq!(r.class, DesignClass::TypeC);
    }

    #[test]
    fn cyclic_blocking_design_is_type_b() {
        // Fig. 4 Ex. 3: controller and processor exchange data through
        // blocking FIFOs, forming a cycle.
        let mut d = DesignBuilder::new("ex3ish");
        let req = d.fifo("req", 2);
        let resp = d.fifo("resp", 2);
        let out = d.output("sum");
        let controller = d.function("controller", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 4, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(req, i);
                let v = b.fifo_read(resp);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        let processor = d.function("processor", |m| {
            m.counted_loop("i", 4, 1, |b| {
                let v = b.fifo_read(req);
                b.fifo_write(resp, Expr::var(v).mul(Expr::imm(2)));
            });
        });
        d.dataflow_top("top", [controller, processor]);
        let r = classify(&d.build().unwrap());
        assert_eq!(r.class, DesignClass::TypeB);
        assert!(r.cyclic_dataflow);
        assert!(!r.uses_nonblocking);
        assert_eq!(r.access_style(), "B");
    }

    #[test]
    fn access_style_strings() {
        let a = classify(&type_a_design());
        assert_eq!(a.access_style(), "B");
    }
}
