//! # omnisim-designs
//!
//! The benchmark designs used by the paper's evaluation, re-authored at the
//! `omnisim-ir` level:
//!
//! * [`table4_designs`] — the eleven Type B / Type C designs of Table 4
//!   (`fig4_ex2` … `multicore`) that no prior HLS tool could simulate
//!   correctly at the C level,
//! * [`typea_suite`] — a Type A suite mirroring the LightningSimV2 benchmark
//!   set of Table 5 (Vitis HLS basic examples, Kastner et al. kernels,
//!   FlowGNN-style and SkyNet-scale dataflow graphs),
//! * workload generators used by the benches and examples,
//! * [`fuzz`] — minimized regression designs found by the cross-backend
//!   differential fuzzer (`omnisim-gen`), committed so the scenario corpus
//!   only ever grows.
//!
//! Every design is returned as a [`BenchDesign`] carrying the design itself,
//! its hand-assigned taxonomy class (as in Table 4), a short description and
//! a flag saying whether running the cycle-stepped reference simulator on it
//! is practical (the biggest Type A designs are meant for OmniSim-vs-
//! LightningSim speed comparisons only, mirroring how the paper never runs
//! co-simulation on the Table 5 suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fig2;
pub mod fig4;
pub mod fuzz;
pub mod misc;
pub mod typea;

use omnisim_ir::{Design, DesignClass};

/// Default element count for the Type B/C designs, echoing the 2025-element
/// workloads visible in Table 3 of the paper.
pub const DEFAULT_N: i64 = 2025;

/// A named benchmark design plus its metadata.
#[derive(Debug, Clone)]
pub struct BenchDesign {
    /// Short name used in tables (e.g. `fig4_ex2`).
    pub name: &'static str,
    /// The design itself.
    pub design: Design,
    /// Hand-assigned taxonomy class, as in Table 4.
    pub declared_class: DesignClass,
    /// One-line description (the "Description" column of Table 4).
    pub description: &'static str,
    /// True when running the cycle-stepped reference simulator is practical.
    pub reference_feasible: bool,
}

impl BenchDesign {
    fn new(
        name: &'static str,
        design: Design,
        declared_class: DesignClass,
        description: &'static str,
    ) -> Self {
        BenchDesign {
            name,
            design,
            declared_class,
            description,
            reference_feasible: true,
        }
    }

    fn slow_reference(mut self) -> Self {
        self.reference_feasible = false;
        self
    }
}

/// The eleven Type B / Type C designs of Table 4, using the default
/// workload size.
pub fn table4_designs() -> Vec<BenchDesign> {
    table4_designs_with_n(DEFAULT_N)
}

/// The Table 4 designs with an explicit element count (smaller values are
/// useful for fast tests).
pub fn table4_designs_with_n(n: i64) -> Vec<BenchDesign> {
    vec![
        BenchDesign::new(
            "fig4_ex2",
            fig4::ex2(n),
            DesignClass::TypeB,
            "NB FIFO access (done signal)",
        ),
        BenchDesign::new(
            "fig4_ex3",
            fig4::ex3(n),
            DesignClass::TypeB,
            "Cyclic dependency",
        ),
        BenchDesign::new(
            "fig4_ex4a",
            fig4::ex4a(n),
            DesignClass::TypeC,
            "Skip if FIFO full",
        ),
        BenchDesign::new(
            "fig4_ex4a_d",
            fig4::ex4a_done(n),
            DesignClass::TypeC,
            "Skip if full (done signal)",
        ),
        BenchDesign::new(
            "fig4_ex4b",
            fig4::ex4b(n),
            DesignClass::TypeC,
            "Count dropped elements",
        ),
        BenchDesign::new(
            "fig4_ex4b_d",
            fig4::ex4b_done(n),
            DesignClass::TypeC,
            "Count dropped (done signal)",
        ),
        BenchDesign::new(
            "fig4_ex5",
            fig4::ex5(n),
            DesignClass::TypeC,
            "Congestion-aware select",
        ),
        BenchDesign::new(
            "fig2_timer",
            fig2::timer(n),
            DesignClass::TypeC,
            "Fixed-point cycle count",
        ),
        BenchDesign::new(
            "deadlock",
            misc::deadlock(),
            DesignClass::TypeB,
            "Mutual blocking read",
        ),
        BenchDesign::new(
            "branch",
            misc::branch(n),
            DesignClass::TypeC,
            "Branch instructions",
        ),
        BenchDesign::new(
            "multicore",
            misc::multicore(16, n / 16),
            DesignClass::TypeC,
            "Multiple cores with branches",
        ),
    ]
}

/// The Type A suite mirroring Table 5 (LightningSimV2's benchmark set).
pub fn typea_suite() -> Vec<BenchDesign> {
    use typea as t;
    let mut suite = vec![
        BenchDesign::new(
            "fixed_point_sqrt",
            t::fixed_point_sqrt(256),
            DesignClass::TypeA,
            "Fixed-point square root",
        ),
        BenchDesign::new(
            "fir_filter",
            t::fir_filter(512, 16),
            DesignClass::TypeA,
            "FIR filter",
        ),
        BenchDesign::new(
            "fixed_point_window_conv",
            t::window_conv(256, 8),
            DesignClass::TypeA,
            "Fixed-point window convolution",
        ),
        BenchDesign::new(
            "float_conv",
            t::window_conv(192, 12),
            DesignClass::TypeA,
            "Floating-point convolution (fixed-point model)",
        ),
        BenchDesign::new(
            "arbitrary_precision_alu",
            t::alu(512),
            DesignClass::TypeA,
            "Arbitrary precision ALU",
        ),
        BenchDesign::new(
            "parallel_loops",
            t::parallel_loops(256),
            DesignClass::TypeA,
            "Parallel loops",
        ),
        BenchDesign::new(
            "imperfect_loops",
            t::imperfect_loops(64, 32),
            DesignClass::TypeA,
            "Imperfect loops",
        ),
        BenchDesign::new(
            "loop_max_bound",
            t::loop_max_bound(300, 512),
            DesignClass::TypeA,
            "Loop with maximum bound",
        ),
        BenchDesign::new(
            "perfect_nested_loops",
            t::nested_loops(48, 48, false),
            DesignClass::TypeA,
            "Perfect nested loops",
        ),
        BenchDesign::new(
            "pipelined_nested_loops",
            t::nested_loops(48, 48, true),
            DesignClass::TypeA,
            "Pipelined nested loops",
        ),
        BenchDesign::new(
            "sequential_accumulators",
            t::sequential_accumulators(512),
            DesignClass::TypeA,
            "Sequential accumulators",
        ),
        BenchDesign::new(
            "accumulators_asserts",
            t::sequential_accumulators(480),
            DesignClass::TypeA,
            "Accumulators with asserts",
        ),
        BenchDesign::new(
            "accumulators_dataflow",
            t::dataflow_accumulators(512, 4),
            DesignClass::TypeA,
            "Accumulators in a dataflow region",
        ),
        BenchDesign::new(
            "static_memory",
            t::static_memory(256),
            DesignClass::TypeA,
            "Static memory example",
        ),
        BenchDesign::new(
            "pointer_casting",
            t::pointer_casting(256),
            DesignClass::TypeA,
            "Pointer casting example",
        ),
        BenchDesign::new(
            "double_pointer",
            t::pointer_casting(320),
            DesignClass::TypeA,
            "Double pointer example",
        ),
        BenchDesign::new(
            "axi4_master",
            t::axi4_master(256, 8),
            DesignClass::TypeA,
            "AXI4 master burst interface",
        ),
        BenchDesign::new(
            "axis_no_side_channel",
            t::vecadd_stream(512, 2),
            DesignClass::TypeA,
            "AXI-Stream without side channel",
        ),
        BenchDesign::new(
            "multiple_array_access",
            t::multiple_array_access(256),
            DesignClass::TypeA,
            "Multiple array access",
        ),
        BenchDesign::new(
            "resolved_array_access",
            t::multiple_array_access(320),
            DesignClass::TypeA,
            "Resolved array access",
        ),
        BenchDesign::new(
            "uram_ecc",
            t::static_memory(384),
            DesignClass::TypeA,
            "URAM with ECC",
        ),
        BenchDesign::new(
            "fixed_point_hamming",
            t::hamming_window(256),
            DesignClass::TypeA,
            "Fixed-point Hamming window",
        ),
        BenchDesign::new(
            "unoptimized_fft",
            t::fft_stages(128, 1),
            DesignClass::TypeA,
            "Unoptimized FFT",
        ),
        BenchDesign::new(
            "multi_stage_fft",
            t::fft_stages(128, 7),
            DesignClass::TypeA,
            "Multi-stage pipelined FFT",
        ),
        BenchDesign::new(
            "huffman_encoding",
            t::huffman_encoding(256),
            DesignClass::TypeA,
            "Huffman encoding (histogram + encode)",
        ),
        BenchDesign::new(
            "matrix_multiplication",
            t::matmul(24),
            DesignClass::TypeA,
            "Matrix multiplication",
        ),
        BenchDesign::new(
            "parallelized_merge_sort",
            t::merge_sort(256),
            DesignClass::TypeA,
            "Parallelized merge sort",
        ),
        BenchDesign::new(
            "vecadd_stream",
            t::vecadd_stream(1024, 4),
            DesignClass::TypeA,
            "Vector add with streams",
        ),
    ];
    // Large many-module dataflow graphs standing in for the FlowGNN variants,
    // INR-Arch and SkyNet: these exist to exercise simulator scalability, so
    // the cycle-stepped reference simulator is not expected to run on them.
    let large = vec![
        BenchDesign::new(
            "flowgnn_gin",
            t::dataflow_graph("flowgnn_gin", 12, 6_000, 1),
            DesignClass::TypeA,
            "FlowGNN GIN-style dataflow graph",
        )
        .slow_reference(),
        BenchDesign::new(
            "flowgnn_gcn",
            t::dataflow_graph("flowgnn_gcn", 16, 6_000, 1),
            DesignClass::TypeA,
            "FlowGNN GCN-style dataflow graph",
        )
        .slow_reference(),
        BenchDesign::new(
            "flowgnn_gat",
            t::dataflow_graph("flowgnn_gat", 20, 8_000, 1),
            DesignClass::TypeA,
            "FlowGNN GAT-style dataflow graph",
        )
        .slow_reference(),
        BenchDesign::new(
            "flowgnn_pna",
            t::dataflow_graph("flowgnn_pna", 24, 8_000, 1),
            DesignClass::TypeA,
            "FlowGNN PNA-style dataflow graph",
        )
        .slow_reference(),
        BenchDesign::new(
            "flowgnn_dgn",
            t::dataflow_graph("flowgnn_dgn", 12, 10_000, 1),
            DesignClass::TypeA,
            "FlowGNN DGN-style dataflow graph",
        )
        .slow_reference(),
        BenchDesign::new(
            "inr_arch",
            t::dataflow_graph("inr_arch", 32, 12_000, 1),
            DesignClass::TypeA,
            "INR-Arch-style gradient dataflow graph",
        )
        .slow_reference(),
        BenchDesign::new(
            "skynet",
            t::skynet(48, 25_000),
            DesignClass::TypeA,
            "SkyNet-style detection pipeline",
        )
        .slow_reference(),
    ];
    suite.extend(large);
    suite
}

/// Every benchmark design (Table 4 + Type A suite).
pub fn all_designs() -> Vec<BenchDesign> {
    let mut all = table4_designs();
    all.extend(typea_suite());
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::classify;

    #[test]
    fn table4_has_eleven_designs() {
        let designs = table4_designs_with_n(64);
        assert_eq!(designs.len(), 11);
        for d in &designs {
            assert!(!d.design.modules.is_empty(), "{} has modules", d.name);
        }
    }

    #[test]
    fn table4_classes_match_declared_labels() {
        for bench in table4_designs_with_n(64) {
            let inferred = classify(&bench.design).class;
            assert_eq!(
                inferred, bench.declared_class,
                "taxonomy mismatch for {}",
                bench.name
            );
        }
    }

    #[test]
    fn typea_suite_is_entirely_type_a() {
        for bench in typea_suite() {
            let inferred = classify(&bench.design).class;
            assert_eq!(
                inferred,
                DesignClass::TypeA,
                "{} must be Type A",
                bench.name
            );
        }
    }

    #[test]
    fn all_designs_have_unique_names() {
        let designs = all_designs();
        let mut names: Vec<_> = designs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), designs.len());
    }
}
