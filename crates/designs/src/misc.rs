//! The remaining Type B/C designs of Table 4 — the deliberately deadlocking
//! design, the `branch` fetch/execute loop, and the `multicore` design with
//! many cores and branch feedback — plus the congestion-aware
//! [`packet_router`] used by the introduction-style examples.

use omnisim_ir::{ArrayId, Design, DesignBuilder, Expr, FifoId, ModuleId, OutputId};

/// A cyclic dataflow design engineered to deadlock: two tasks each block
/// reading a FIFO the other task has not written yet. A third, independent
/// task completes normally, so the deadlock detector must distinguish
/// "everything still blocked" from "some tasks finished".
pub fn deadlock() -> Design {
    let mut d = DesignBuilder::new("deadlock");
    let a2b = d.fifo("a_to_b", 2);
    let b2a = d.fifo("b_to_a", 2);
    let sum = d.output("sum");
    let bystander_out = d.output("bystander");

    let task_a = d.function("task_a", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", 16, 1, |b| {
            // Waits for task_b before ever producing: classic deadlock.
            let v = b.fifo_read(b2a);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            b.fifo_write(a2b, Expr::var(v).add(Expr::imm(1)));
        });
        m.exit(|b| {
            b.output(sum, Expr::var(acc));
        });
    });
    let task_b = d.function("task_b", |m| {
        m.counted_loop("i", 16, 1, |b| {
            let v = b.fifo_read(a2b);
            b.fifo_write(b2a, Expr::var(v).mul(Expr::imm(2)));
        });
    });
    let bystander = d.function("bystander", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", 8, 1, |b| {
            let i = b.var_expr("i");
            b.assign(acc, Expr::var(acc).add(i));
        });
        m.exit(|b| {
            b.output(bystander_out, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [task_a, task_b, bystander]);
    d.build().expect("deadlock design is structurally valid")
}

/// Adds one fetch/execute core to the design under construction.
///
/// The fetcher walks an instruction array; the executor recognises branch
/// instructions (multiples of 8) and feeds redirect targets back to the
/// fetcher through a non-blocking FIFO — the upstream/downstream feedback
/// that makes this design Type C. At most `max_redirects` redirects are
/// issued so the program always terminates.
#[allow(clippy::too_many_arguments)]
fn add_core(
    d: &mut DesignBuilder,
    core: usize,
    prog: ArrayId,
    n: i64,
    fetched_out: Option<OutputId>,
    executed_out: Option<OutputId>,
    stats_fetched: Option<FifoId>,
    stats_executed: Option<FifoId>,
    max_redirects: i64,
) -> (ModuleId, ModuleId) {
    let instr_fifo = d.fifo(format!("instr_{core}"), 4);
    let branch_fifo = d.fifo(format!("branch_{core}"), 2);

    let fetcher = d.function(format!("fetcher_{core}"), |m| {
        let pc = m.var("pc");
        let fetched = m.var("fetched");
        let entry = m.new_block();
        let head = m.new_block();
        let fetch = m.new_block();
        let finish = m.new_block();
        m.fill_block(entry, |b| {
            b.assign(pc, Expr::imm(0))
                .assign(fetched, Expr::imm(0))
                .jump(head);
        });
        m.fill_block(head, |b| {
            let (target, got) = b.fifo_nb_read(branch_fifo);
            b.assign(pc, Expr::var(got).select(Expr::var(target), Expr::var(pc)));
            b.branch(Expr::var(pc).lt(Expr::imm(n)), fetch, finish);
        });
        m.fill_block(fetch, |b| {
            let instr = b.array_load(prog, Expr::var(pc));
            b.fifo_write(instr_fifo, Expr::var(instr));
            b.assign(pc, Expr::var(pc).add(Expr::imm(1)))
                .assign(fetched, Expr::var(fetched).add(Expr::imm(1)))
                .jump(head);
        });
        m.fill_block(finish, |b| {
            b.fifo_write(instr_fifo, Expr::imm(-1));
            if let Some(out) = fetched_out {
                b.output(out, Expr::var(fetched));
            }
            if let Some(stats) = stats_fetched {
                b.fifo_write(stats, Expr::var(fetched));
            }
            b.ret();
        });
    });

    let executor = d.function(format!("executor_{core}"), |m| {
        let executed = m.var("executed");
        let redirects = m.var("redirects");
        let entry = m.new_block();
        let head = m.new_block();
        let branch_handler = m.new_block();
        let finish = m.new_block();
        m.fill_block(entry, |b| {
            b.assign(executed, Expr::imm(0))
                .assign(redirects, Expr::imm(0))
                .jump(head);
        });
        m.fill_block(head, |b| {
            let instr = b.var("instr");
            b.fifo_read_into(instr, instr_fifo);
            b.latency(2);
            let is_sentinel = Expr::var(instr).eq(Expr::imm(-1));
            let is_branch = Expr::var(instr)
                .rem(Expr::imm(8))
                .eq(Expr::imm(0))
                .bitand(is_sentinel.clone().logical_not());
            let may_redirect = is_branch
                .clone()
                .bitand(Expr::var(redirects).lt(Expr::imm(max_redirects)));
            b.assign(executed, Expr::var(executed).add(is_branch));
            b.branch(
                is_sentinel.clone().select(Expr::imm(2), may_redirect),
                branch_handler,
                head,
            );
        });
        m.fill_block(branch_handler, |b| {
            let instr = b.var("instr");
            // A sentinel (-1) routed here exits; a real branch issues a
            // redirect and continues.
            let target = Expr::var(instr).mul(Expr::imm(7)).rem(Expr::imm(n));
            b.fifo_nb_write_ignored(branch_fifo, target);
            b.assign(redirects, Expr::var(redirects).add(Expr::imm(1)));
            b.branch(Expr::var(instr).eq(Expr::imm(-1)), finish, head);
        });
        m.fill_block(finish, |b| {
            if let Some(out) = executed_out {
                b.output(out, Expr::var(executed));
            }
            if let Some(stats) = stats_executed {
                b.fifo_write(stats, Expr::var(executed));
            }
            b.ret();
        });
    });

    (fetcher, executor)
}

/// Instruction memory for the branch/multicore designs: a deterministic
/// pseudo-random mix in which roughly one in eight instructions is a branch.
fn program(n: i64, seed: i64) -> Vec<i64> {
    (0..n)
        .map(|i| {
            let x = (i * 2654435761 + seed * 40503 + 12345) & 0x7fff_ffff;
            1 + (x % 97)
        })
        .collect()
}

/// The `branch` design of Table 4: a downstream executor redirects an
/// upstream instruction fetcher through a non-blocking feedback FIFO.
pub fn branch(n: i64) -> Design {
    let mut d = DesignBuilder::new("branch");
    let prog = d.array("prog", program(n, 1));
    let fetched = d.output("fetched");
    let executed = d.output("executed");
    let (fetcher, executor) = add_core(
        &mut d,
        0,
        prog,
        n,
        Some(fetched),
        Some(executed),
        None,
        None,
        64,
    );
    d.dataflow_top("top", [fetcher, executor]);
    d.build().expect("branch design is structurally valid")
}

/// The `multicore` design of Table 4: `cores` fetch/execute pairs plus a
/// collector that aggregates per-core counters into `total_fetched` and
/// `total_executed`.
pub fn multicore(cores: usize, per_core_n: i64) -> Design {
    let mut d = DesignBuilder::new("multicore");
    let total_fetched = d.output("total_fetched");
    let total_executed = d.output("total_executed");

    let mut tasks = Vec::new();
    let mut stat_fifos = Vec::new();
    for core in 0..cores {
        let prog = d.array(format!("prog_{core}"), program(per_core_n, core as i64));
        let stats_f = d.fifo(format!("stats_fetched_{core}"), 1);
        let stats_e = d.fifo(format!("stats_executed_{core}"), 1);
        let (fetcher, executor) = add_core(
            &mut d,
            core,
            prog,
            per_core_n,
            None,
            None,
            Some(stats_f),
            Some(stats_e),
            16,
        );
        tasks.push(fetcher);
        tasks.push(executor);
        stat_fifos.push((stats_f, stats_e));
    }

    let collector = d.function("collector", |m| {
        let fetched = m.var("fetched");
        let executed = m.var("executed");
        m.entry(|b| {
            b.assign(fetched, Expr::imm(0));
            b.assign(executed, Expr::imm(0));
        });
        for (stats_f, stats_e) in &stat_fifos {
            m.seq(|b| {
                let f = b.fifo_read(*stats_f);
                let e = b.fifo_read(*stats_e);
                b.assign(fetched, Expr::var(fetched).add(Expr::var(f)));
                b.assign(executed, Expr::var(executed).add(Expr::var(e)));
            });
        }
        m.exit(|b| {
            b.output(total_fetched, Expr::var(fetched));
            b.output(total_executed, Expr::var(executed));
        });
    });
    tasks.push(collector);
    d.dataflow_top("top", tasks);
    d.build().expect("multicore design is structurally valid")
}

/// A congestion-aware packet router, the kind of Type C design whose
/// C-level simulation the paper's introduction motivates: non-blocking
/// writes steer packets to the less-congested of two processing lanes
/// (drained at initiation intervals 5 and 11), and packets are dropped
/// when both lanes are saturated. Both lanes are terminated with a `-1`
/// sentinel written blockingly after the burst.
///
/// `examples/packet_router.rs` runs it cross-backend at depths (4, 4);
/// `examples/min_depth_search.rs` sizes its lanes from an
/// over-provisioned baseline.
pub fn packet_router(packets: i64, fast_depth: usize, slow_depth: usize) -> Design {
    let mut d = DesignBuilder::new("packet_router");
    let payloads = d.array(
        "payloads",
        (0..packets).map(|i| 1 + i % 97).collect::<Vec<i64>>(),
    );
    let fast_lane = d.fifo("fast_lane", fast_depth);
    let slow_lane = d.fifo("slow_lane", slow_depth);
    let routed_fast = d.output("routed_fast");
    let routed_slow = d.output("routed_slow");
    let dropped = d.output("dropped");
    let fast_work = d.output("fast_lane_work");
    let slow_work = d.output("slow_lane_work");

    let router = d.function("router", |m| {
        let i = m.var("i");
        let fast = m.var("fast");
        let slow = m.var("slow");
        let drop_count = m.var("drop_count");
        let payload = m.var("payload");
        let entry = m.new_block();
        let head = m.new_block();
        let try_fast = m.new_block();
        let fast_ok = m.new_block();
        let try_slow = m.new_block();
        let finish = m.new_block();
        m.fill_block(entry, |b| {
            b.assign(i, Expr::imm(0))
                .assign(fast, Expr::imm(0))
                .assign(slow, Expr::imm(0))
                .assign(drop_count, Expr::imm(0))
                .jump(head);
        });
        m.fill_block(head, |b| {
            b.branch(Expr::var(i).lt(Expr::imm(packets)), try_fast, finish);
        });
        m.fill_block(try_fast, |b| {
            b.array_load_into(payload, payloads, Expr::var(i));
            b.assign(i, Expr::var(i).add(Expr::imm(1)));
            let ok = b.fifo_nb_write(fast_lane, Expr::var(payload));
            b.branch(Expr::var(ok), fast_ok, try_slow);
        });
        m.fill_block(fast_ok, |b| {
            b.assign(fast, Expr::var(fast).add(Expr::imm(1))).jump(head);
        });
        m.fill_block(try_slow, |b| {
            let ok = b.fifo_nb_write(slow_lane, Expr::var(payload));
            b.assign(slow, Expr::var(slow).add(Expr::var(ok)));
            b.assign(
                drop_count,
                Expr::var(drop_count).add(Expr::var(ok).logical_not()),
            );
            b.jump(head);
        });
        m.fill_block(finish, |b| {
            b.fifo_write(fast_lane, Expr::imm(-1));
            b.fifo_write(slow_lane, Expr::imm(-1));
            b.output(routed_fast, Expr::var(fast));
            b.output(routed_slow, Expr::var(slow));
            b.output(dropped, Expr::var(drop_count));
            b.ret();
        });
    });

    let mut lane = |name: &'static str, fifo, out, ii: u64| {
        d.function(name, move |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.loop_block(ii, |b| {
                let v = b.fifo_read(fifo);
                let is_done = Expr::var(v).eq(Expr::imm(-1));
                b.assign(
                    acc,
                    is_done
                        .clone()
                        .select(Expr::var(acc), Expr::var(acc).add(Expr::var(v))),
                );
                b.exit_loop_if(is_done);
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        })
    };
    // Both lanes drain slower than the router can produce (roughly one
    // packet every 3 cycles), so the fast lane periodically backs up,
    // traffic spills onto the even-slower slow lane, and packets drop —
    // the congestion behaviour C simulation cannot see.
    let fast = lane("fast_lane_proc", fast_lane, fast_work, 5);
    let slow = lane("slow_lane_proc", slow_lane, slow_work, 11);
    d.dataflow_top("top", [router, fast, slow]);
    d.build().expect("packet_router design is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::{classify, DesignClass};

    #[test]
    fn deadlock_design_is_cyclic_type_b() {
        let report = classify(&deadlock());
        assert_eq!(report.class, DesignClass::TypeB);
        assert!(report.cyclic_dataflow);
        assert!(!report.uses_nonblocking);
    }

    #[test]
    fn branch_design_is_cyclic_type_c() {
        let report = classify(&branch(128));
        assert_eq!(report.class, DesignClass::TypeC);
        assert!(report.cyclic_dataflow);
        assert!(report.uses_nonblocking);
    }

    #[test]
    fn multicore_matches_table4_scale() {
        let design = multicore(16, 64);
        // 16 fetchers + 16 executors + collector + top region.
        assert_eq!(design.modules.len(), 34);
        // Per core: instruction FIFO, branch FIFO, two stats FIFOs.
        assert_eq!(design.fifos.len(), 64);
        let report = classify(&design);
        assert_eq!(report.class, DesignClass::TypeC);
    }

    #[test]
    fn packet_router_is_acyclic_type_c() {
        let report = classify(&packet_router(64, 4, 4));
        assert_eq!(report.class, DesignClass::TypeC);
        assert!(report.uses_nonblocking);
        assert!(!report.cyclic_dataflow);
    }

    #[test]
    fn program_mix_contains_branches() {
        let prog = program(256, 1);
        let branches = prog.iter().filter(|&&v| v % 8 == 0).count();
        assert!(branches > 10, "expected a reasonable share of branches");
        assert!(prog.iter().all(|&v| v > 0));
    }
}
