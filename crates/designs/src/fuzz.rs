//! Minimized regression designs found by the differential fuzzer
//! (`omnisim-gen` + `tests/fuzz_differential.rs`).
//!
//! Each design here is a shrunk witness of a real divergence the fuzzer
//! surfaced between two backends (or between the incremental DSE path and
//! ground truth). They are committed as permanent fixtures so the scenario
//! corpus only ever grows: the regression tests in
//! `tests/fuzz_differential.rs` re-assert cross-backend agreement on every
//! one of them.
//!
//! The designs are hand-lowered from the minimized `omnisim_gen::Blueprint`
//! the shrinker produced (quoted in each function's documentation), using
//! the same task protocol the generator emits: every task loops `n` times,
//! folds `i` plus its read values into an accumulator, and reports the
//! accumulator as a testbench output.

use omnisim_ir::{Design, DesignBuilder, Expr, FifoId, ModuleId, OutputId};

/// Deterministic DDR contents for the AXI fixtures.
fn ddr(n: i64) -> Vec<i64> {
    (0..n).map(|i| (i * 23 + 7) % 89).collect()
}

/// The generator's source-task body: `acc += i + (i + 1)` per iteration,
/// then one write of `acc + i` into `q` — blocking or lossy.
fn accumulating_producer(
    d: &mut DesignBuilder,
    name: &str,
    out: OutputId,
    q: FifoId,
    lossy: bool,
    n: i64,
) -> ModuleId {
    d.function(name, |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            b.assign(
                acc,
                Expr::var(acc)
                    .add(i.clone())
                    .add(i.clone().add(Expr::imm(1))),
            );
            let value = Expr::var(acc).add(i);
            if lossy {
                b.fifo_nb_write_ignored(q, value);
            } else {
                b.fifo_write(q, value);
            }
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    })
}

/// A two-task blocking chain over a depth-1 FIFO whose consumer folds each
/// read value and then spends `work` extra schedule cycles per iteration
/// (with `work > 0` the loop body is genuinely pipelined: latency
/// `work + 1`, II = 1).
fn blocking_chain(design_name: &str, n: i64, work: u64) -> Design {
    let mut d = DesignBuilder::new(design_name);
    let out_p = d.output("t0_acc");
    let out_c = d.output("t1_acc");
    let q = d.fifo("e0_0to1", 1);
    let producer = accumulating_producer(&mut d, "t0", out_p, q, false, n);
    let consumer = d.function("t1", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(i).add(Expr::var(v)));
            if work > 0 {
                b.step(work);
            }
        });
        m.exit(|b| {
            b.output(out_c, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fixture is well-formed")
}

/// Witness of the pipelined-iteration-overlap bug in the cycle-stepped
/// reference simulator (fixed in the same PR that added the fuzzer).
///
/// A 2-token producer feeds a depth-1 FIFO into a consumer whose loop body
/// is genuinely pipelined (latency 4, II = 1) with the FIFO read at offset 0
/// and the induction-variable increment at offset 3. The reference's op walk
/// serialized iteration 2's read behind iteration 1's offset-3 operation,
/// reporting 13 total cycles where real pipelined hardware (and the
/// graph-based engines) overlap the iterations: 12 cycles.
///
/// Shrunk from `GenConfig::type_a()` seed 0:
/// `Blueprint { tokens: 2, tasks: [minimal, minimal + work 3],
///   edges: [0 -> 1, depth 1, Blocking] }`.
pub fn pipelined_reader_overlap(n: i64) -> Design {
    blocking_chain("fuzz_pipelined_reader_overlap", n, 3)
}

/// Witness of the baked-in-baseline-stall bug in the engine's incremental
/// DSE state (fixed in the same PR that added the fuzzer).
///
/// The simplest possible producer/consumer over a depth-1 FIFO: the
/// baseline run write-after-read-stalls the second write, and the event
/// graph used to record that stall in the node base times and program-order
/// deltas — so `try_with_depths` could never *relax* latency for deeper
/// FIFOs (it certified 9 cycles at every depth where ground truth is 8 from
/// depth 2 up). Node bases are now schedule-intrinsic and the stall lives
/// only in the depth-parameterized WAR edge.
///
/// Shrunk from `GenConfig::type_a()` seed 0:
/// `Blueprint { tokens: 2, tasks: [minimal, minimal],
///   edges: [0 -> 1, depth 1, Blocking] }`.
pub fn depth_relaxation(n: i64) -> Design {
    blocking_chain("fuzz_depth_relaxation", n, 0)
}

/// Witness of the undecided-non-blocking-outcome race in the reference
/// simulator (fixed in the same PR that added the fuzzer).
///
/// A lossy producer non-blocking-writes a depth-1 FIFO into a pipelined
/// consumer (NB read at offset 0, blocking forward write at offset 3,
/// II = 1) that feeds a blocking sink. The consumer's retroactively
/// committed reads freed buffer space *earlier* than the reference's wall
/// clock observed, so NB writes evaluated against incomplete channel state
/// dropped tokens that real hardware accepts — wrong outputs on a Type C
/// design. The fix evaluates NB outcomes three-valued (with §7.1 forced
/// resolution), mirroring the engine's query pool.
///
/// Shrunk from `GenConfig::type_c()` seed 5:
/// `Blueprint { tokens: 3, tasks: [minimal, minimal + work 3, minimal],
///   edges: [0 -> 1 depth 1 NbDrop{ignored}, 1 -> 2 depth 1 Blocking] }`.
pub fn nb_undecided_race(n: i64) -> Design {
    let mut d = DesignBuilder::new("fuzz_nb_undecided_race");
    let out0 = d.output("t0_acc");
    let out1 = d.output("t1_acc");
    let out2 = d.output("t2_acc");
    let lossy = d.fifo("e0_0to1", 1);
    let fwd = d.fifo("e1_1to2", 1);
    let producer = accumulating_producer(&mut d, "t0", out0, lossy, true, n);
    let middle = d.function("t1", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let (v, ok) = b.fifo_nb_read(lossy);
            b.assign(
                acc,
                Expr::var(acc)
                    .add(i.clone())
                    .add(Expr::var(ok).select(Expr::var(v), Expr::imm(0))),
            );
            b.step(3);
            b.fifo_write(fwd, Expr::var(acc).add(i).add(Expr::imm(1)));
        });
        m.exit(|b| {
            b.output(out1, Expr::var(acc));
        });
    });
    let sink = d.function("t2", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.fifo_read(fwd);
            b.assign(acc, Expr::var(acc).add(i).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out2, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [producer, middle, sink]);
    d.build().expect("fixture is well-formed")
}

/// Witness of the outstanding-AXI-burst pacing bug in the OmniSim runtime
/// and the LightningSim trace backend (fixed in the same PR that taught the
/// fuzzer to generate AXI traffic).
///
/// A single DMA-style task issues *two* read-burst requests back to back
/// (the second two cycles after the first) and only then drains the beats.
/// Both engines used to keep one `next_beat_ready` per port, so the second
/// request *re-paced* the first burst's undelivered beats to its own later
/// ready cycle — while the cycle-stepped reference paces each burst from
/// its own request (`ready = request + latency + beat`). The fix mirrors
/// the reference's per-burst queue in both backends.
///
/// Shrunk from `GenConfig::axi()` seeds with `prefetch > 0`:
/// `Blueprint { tokens: 2·n, tasks: [rate n, AxiPlan { ReadSource
///   { prefetch: 1, .. }, latency 4 }], edges: [] }`.
pub fn axi_outstanding_bursts(n: i64) -> Design {
    let mut d = DesignBuilder::new("fuzz_axi_outstanding_bursts");
    let mem = d.array("ddr", ddr(2 * n));
    let axi = d.axi_port("gmem", mem, 4);
    let out = d.output("acc");
    d.function_top("dma", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
            b.axi_read_req(axi, Expr::imm(0), Expr::imm(n));
            b.at(2).axi_read_req(axi, Expr::imm(n), Expr::imm(n));
        });
        m.counted_loop("i", 2 * n, 1, |b| {
            let v = b.axi_read(axi);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.build().expect("fixture is well-formed")
}

/// Witness of the absolute-bus-anchor unsoundness in the incremental DSE
/// model and LightningSim's Phase 2 (fixed in the same PR).
///
/// An AXI read source interleaves each beat with a blocking write into a
/// depth-1 FIFO whose consumer is slow (3 extra cycles per iteration). In
/// the baseline the FIFO stalls dominate and the bus is never the
/// bottleneck; with a deeper FIFO the writes move earlier and the beats run
/// into the bus's absolute ready cycles (`request + latency + beat`). Both
/// graph-based paths froze the baseline's bus waits into program-order
/// distances, so re-finalization shifted the beats along with the writes —
/// under- or over-estimating the resized latency. The fix gives every
/// request an event node and anchors each beat to it with a
/// `latency + beat` edge, which re-finalization re-evaluates per point.
///
/// Shrunk from `GenConfig::axi()` seeds with `interleave: true`:
/// `Blueprint { tokens: 2·n, tasks: [rate n AXI ReadSource interleave,
///   rate 1 work 3], edges: [0 -> 1, depth 1, Blocking] }`.
pub fn axi_beat_stall_anchor(n: i64) -> Design {
    let mut d = DesignBuilder::new("fuzz_axi_beat_stall_anchor");
    let mem = d.array("ddr", ddr(2 * n));
    let axi = d.axi_port("gmem", mem, 6);
    let out0 = d.output("t0_acc");
    let out1 = d.output("t1_acc");
    let q = d.fifo("e0_0to1", 1);
    let source = d.function("t0", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", 2, n.max(2) as u64, |m_b| {
            let i = m_b.var_expr("i");
            m_b.axi_read_req(axi, i.clone().mul(Expr::imm(n)), Expr::imm(n));
            for j in 0..n {
                m_b.at(j as u64);
                let v = m_b.axi_read(axi);
                m_b.assign(
                    acc,
                    Expr::var(acc)
                        .add(i.clone().mul(Expr::imm(n)).add(Expr::imm(j)))
                        .add(Expr::var(v)),
                );
                m_b.fifo_write(q, Expr::var(acc).add(Expr::imm(j)));
            }
        });
        m.exit(|b| {
            b.output(out0, Expr::var(acc));
        });
    });
    let sink = d.function("t1", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", 2 * n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(i).add(Expr::var(v)));
            b.step(3);
        });
        m.exit(|b| {
            b.output(out1, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [source, sink]);
    d.build().expect("fixture is well-formed")
}

/// Witness of the missing-freeing-read soundness hole in incremental DSE
/// (fixed in the same PR): leftover data.
///
/// The producer writes `n + surplus` values; the consumer drains `n`. The
/// design is live at its declared depth (`depth ≥ surplus`), but any probe
/// shallower than the surplus could never commit the leftover writes — the
/// resized design deadlocks. `try_with_depths` and the compiled plan used
/// to skip the non-existent write-after-read edge and *certify a latency*
/// for those probes; they now report `DepthInfeasible`.
///
/// Shrunk from `GenConfig::multirate()` seeds:
/// `Blueprint { tokens: n, tasks: [minimal, minimal],
///   edges: [0 -> 1, depth, Blocking, surplus] }`.
pub fn multirate_leftover(n: i64, depth: usize, surplus: usize) -> Design {
    let mut d = DesignBuilder::new("fuzz_multirate_leftover");
    let out_p = d.output("t0_acc");
    let out_c = d.output("t1_acc");
    let q = d.fifo("e0_0to1", depth);
    let producer = d.function("t0", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            b.assign(acc, Expr::var(acc).add(i.clone()));
            b.fifo_write(q, Expr::var(acc).add(i));
        });
        m.seq(|b| {
            for s in 0..surplus {
                b.fifo_write(q, Expr::var(acc).add(Expr::imm(s as i64)));
            }
        });
        m.exit(|b| {
            b.output(out_p, Expr::var(acc));
        });
    });
    let consumer = d.function("t1", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(i).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out_c, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fixture is well-formed")
}

/// Witness of the over-strong compiled-plan skeleton (fixed in the same
/// PR): multi-rate reconvergence.
///
/// A diamond `t0 → t1 → t2 → t3` with a bypass `t0 → t3`, where `t1`
/// consumes two tokens per iteration and `t2` three. `t2` must buffer three
/// tokens before its first output, so `t3`'s early bypass reads outrun the
/// long path by more than one token — the depth-1 write-after-read overlay
/// is *cyclic* (the design genuinely deadlocks when `bypass_depth` is
/// small). The plan's one cached topological order used to bake the depth-1
/// anchors in unconditionally, so compilation failed on the *completed*
/// baseline; it now relaxes the skeleton per FIFO (recording the supported
/// minimum depth) and answers sub-threshold probes through a per-point
/// order that reports `DepthCyclic` exactly like `try_with_depths`.
///
/// Shrunk from `GenConfig::type_b()` seed 0 (the multi-rate dimension
/// riding along): `Blueprint { tokens: 6, tasks: [rate 1, rate 2, rate 3,
///   rate 1], edges: [0→1, 1→2, 0→3 (bypass_depth), 2→3, all Blocking] }`.
pub fn multirate_diamond(bypass_depth: usize) -> Design {
    let mut d = DesignBuilder::new("fuzz_multirate_diamond");
    let out = d.output("t3_acc");
    let f0 = d.fifo("e0_0to1", 1);
    let f1 = d.fifo("e1_1to2", 1);
    let f2 = d.fifo("e2_0to3", bypass_depth);
    let f3 = d.fifo("e3_2to3", 1);
    let t0 = d.function("t0", |m| {
        m.counted_loop("i", 6, 1, |b| {
            let i = b.var_expr("i");
            b.fifo_write(f0, i.clone().add(Expr::imm(1)));
            b.fifo_write(f2, i.mul(Expr::imm(2)).add(Expr::imm(1)));
        });
    });
    let t1 = d.function("t1", |m| {
        m.counted_loop("i", 3, 3, |b| {
            let a = b.at(0).fifo_read(f0);
            let c = b.at(1).fifo_read(f0);
            b.at(1).fifo_write(f1, Expr::var(a).add(Expr::imm(1)));
            b.at(2).fifo_write(f1, Expr::var(c).add(Expr::imm(2)));
        });
    });
    let t2 = d.function("t2", |m| {
        m.counted_loop("i", 2, 3, |b| {
            let a = b.at(0).fifo_read(f1);
            let c = b.at(1).fifo_read(f1);
            let e = b.at(2).fifo_read(f1);
            b.at(2).fifo_write(f3, Expr::var(a).add(Expr::var(c)));
            b.at(3).fifo_write(f3, Expr::var(c).add(Expr::var(e)));
            b.at(4).fifo_write(f3, Expr::var(e).add(Expr::imm(3)));
        });
    });
    let t3 = d.function("t3", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", 6, 1, |b| {
            let i = b.var_expr("i");
            let bypass = b.fifo_read(f2);
            let chain = b.fifo_read(f3);
            b.assign(
                acc,
                Expr::var(acc)
                    .add(i)
                    .add(Expr::var(bypass))
                    .add(Expr::var(chain)),
            );
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [t0, t1, t2, t3]);
    d.build().expect("fixture is well-formed")
}

/// Witness of the call-blind task ordering in LightningSim's Phase 1 and
/// the taxonomy's cycle analysis (fixed in the same PR).
///
/// The consumer's blocking read happens inside a two-deep private callee
/// chain, so the FIFO's reader *module* is the innermost callee while the
/// read runs on the consumer task's thread. Lightning's topological task
/// order only looked at direct endpoints, dropped the producer→consumer
/// edge, ran the consumer first and crashed on the empty FIFO. Endpoints
/// are now attributed through `Op::Call` closures.
///
/// Shrunk from `GenConfig::calls()` seed 0:
/// `Blueprint { tokens: n, tasks: [minimal, minimal + CallPlan { depth: 2,
///   private, wrap_reads }], edges: [0 -> 1, depth 1, Blocking] }`.
pub fn call_wrapped_reader(n: i64) -> Design {
    let mut d = DesignBuilder::new("fuzz_call_wrapped_reader");
    let out_p = d.output("t0_acc");
    let out_c = d.output("t1_acc");
    let q = d.fifo("e0_0to1", 1);
    let producer = accumulating_producer(&mut d, "t0", out_p, q, false, n);
    let inner = d.function("t1_mix1", |m| {
        let x = m.var("x");
        m.entry(|b| {
            let v = b.fifo_read(q);
            b.latency(3);
            b.ret_val(Expr::var(v).add(Expr::var(x)).add(Expr::imm(7)));
        });
    });
    let outer = d.function("t1_mix0", |m| {
        let x = m.var("x");
        m.entry(|b| {
            let r = b.call(inner, vec![Expr::var(x).add(Expr::imm(1))]);
            b.ret_val(Expr::var(r).add(Expr::imm(1)));
        });
    });
    let consumer = d.function("t1", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let r = b.call(outer, vec![i.clone()]);
            b.assign(acc, Expr::var(acc).add(i).add(Expr::var(r)));
        });
        m.exit(|b| {
            b.output(out_c, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fixture is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::classify;
    use omnisim_ir::DesignClass;

    #[test]
    fn fixtures_build_and_classify() {
        assert_eq!(
            classify(&pipelined_reader_overlap(2)).class,
            DesignClass::TypeA
        );
        assert_eq!(classify(&nb_undecided_race(3)).class, DesignClass::TypeC);
        assert_eq!(classify(&depth_relaxation(2)).class, DesignClass::TypeA);
        assert_eq!(
            classify(&axi_outstanding_bursts(4)).class,
            DesignClass::TypeA
        );
        assert_eq!(
            classify(&axi_beat_stall_anchor(3)).class,
            DesignClass::TypeA
        );
        assert_eq!(
            classify(&multirate_leftover(4, 2, 2)).class,
            DesignClass::TypeA
        );
        assert_eq!(classify(&multirate_diamond(5)).class, DesignClass::TypeA);
        assert_eq!(classify(&call_wrapped_reader(4)).class, DesignClass::TypeA);
    }

    #[test]
    fn overlap_fixture_has_a_genuinely_pipelined_consumer() {
        let design = pipelined_reader_overlap(2);
        let consumer = design.module(design.module_by_name("t1").unwrap());
        let pipelined = consumer
            .blocks
            .iter()
            .any(|b| b.schedule.ii.is_some() && b.schedule.latency > 1);
        assert!(pipelined, "the loop body must overlap iterations");
    }
}
