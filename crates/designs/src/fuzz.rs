//! Minimized regression designs found by the differential fuzzer
//! (`omnisim-gen` + `tests/fuzz_differential.rs`).
//!
//! Each design here is a shrunk witness of a real divergence the fuzzer
//! surfaced between two backends (or between the incremental DSE path and
//! ground truth). They are committed as permanent fixtures so the scenario
//! corpus only ever grows: the regression tests in
//! `tests/fuzz_differential.rs` re-assert cross-backend agreement on every
//! one of them.
//!
//! The designs are hand-lowered from the minimized `omnisim_gen::Blueprint`
//! the shrinker produced (quoted in each function's documentation), using
//! the same task protocol the generator emits: every task loops `n` times,
//! folds `i` plus its read values into an accumulator, and reports the
//! accumulator as a testbench output.

use omnisim_ir::{Design, DesignBuilder, Expr, FifoId, ModuleId, OutputId};

/// The generator's source-task body: `acc += i + (i + 1)` per iteration,
/// then one write of `acc + i` into `q` — blocking or lossy.
fn accumulating_producer(
    d: &mut DesignBuilder,
    name: &str,
    out: OutputId,
    q: FifoId,
    lossy: bool,
    n: i64,
) -> ModuleId {
    d.function(name, |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            b.assign(
                acc,
                Expr::var(acc)
                    .add(i.clone())
                    .add(i.clone().add(Expr::imm(1))),
            );
            let value = Expr::var(acc).add(i);
            if lossy {
                b.fifo_nb_write_ignored(q, value);
            } else {
                b.fifo_write(q, value);
            }
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    })
}

/// A two-task blocking chain over a depth-1 FIFO whose consumer folds each
/// read value and then spends `work` extra schedule cycles per iteration
/// (with `work > 0` the loop body is genuinely pipelined: latency
/// `work + 1`, II = 1).
fn blocking_chain(design_name: &str, n: i64, work: u64) -> Design {
    let mut d = DesignBuilder::new(design_name);
    let out_p = d.output("t0_acc");
    let out_c = d.output("t1_acc");
    let q = d.fifo("e0_0to1", 1);
    let producer = accumulating_producer(&mut d, "t0", out_p, q, false, n);
    let consumer = d.function("t1", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(i).add(Expr::var(v)));
            if work > 0 {
                b.step(work);
            }
        });
        m.exit(|b| {
            b.output(out_c, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fixture is well-formed")
}

/// Witness of the pipelined-iteration-overlap bug in the cycle-stepped
/// reference simulator (fixed in the same PR that added the fuzzer).
///
/// A 2-token producer feeds a depth-1 FIFO into a consumer whose loop body
/// is genuinely pipelined (latency 4, II = 1) with the FIFO read at offset 0
/// and the induction-variable increment at offset 3. The reference's op walk
/// serialized iteration 2's read behind iteration 1's offset-3 operation,
/// reporting 13 total cycles where real pipelined hardware (and the
/// graph-based engines) overlap the iterations: 12 cycles.
///
/// Shrunk from `GenConfig::type_a()` seed 0:
/// `Blueprint { tokens: 2, tasks: [minimal, minimal + work 3],
///   edges: [0 -> 1, depth 1, Blocking] }`.
pub fn pipelined_reader_overlap(n: i64) -> Design {
    blocking_chain("fuzz_pipelined_reader_overlap", n, 3)
}

/// Witness of the baked-in-baseline-stall bug in the engine's incremental
/// DSE state (fixed in the same PR that added the fuzzer).
///
/// The simplest possible producer/consumer over a depth-1 FIFO: the
/// baseline run write-after-read-stalls the second write, and the event
/// graph used to record that stall in the node base times and program-order
/// deltas — so `try_with_depths` could never *relax* latency for deeper
/// FIFOs (it certified 9 cycles at every depth where ground truth is 8 from
/// depth 2 up). Node bases are now schedule-intrinsic and the stall lives
/// only in the depth-parameterized WAR edge.
///
/// Shrunk from `GenConfig::type_a()` seed 0:
/// `Blueprint { tokens: 2, tasks: [minimal, minimal],
///   edges: [0 -> 1, depth 1, Blocking] }`.
pub fn depth_relaxation(n: i64) -> Design {
    blocking_chain("fuzz_depth_relaxation", n, 0)
}

/// Witness of the undecided-non-blocking-outcome race in the reference
/// simulator (fixed in the same PR that added the fuzzer).
///
/// A lossy producer non-blocking-writes a depth-1 FIFO into a pipelined
/// consumer (NB read at offset 0, blocking forward write at offset 3,
/// II = 1) that feeds a blocking sink. The consumer's retroactively
/// committed reads freed buffer space *earlier* than the reference's wall
/// clock observed, so NB writes evaluated against incomplete channel state
/// dropped tokens that real hardware accepts — wrong outputs on a Type C
/// design. The fix evaluates NB outcomes three-valued (with §7.1 forced
/// resolution), mirroring the engine's query pool.
///
/// Shrunk from `GenConfig::type_c()` seed 5:
/// `Blueprint { tokens: 3, tasks: [minimal, minimal + work 3, minimal],
///   edges: [0 -> 1 depth 1 NbDrop{ignored}, 1 -> 2 depth 1 Blocking] }`.
pub fn nb_undecided_race(n: i64) -> Design {
    let mut d = DesignBuilder::new("fuzz_nb_undecided_race");
    let out0 = d.output("t0_acc");
    let out1 = d.output("t1_acc");
    let out2 = d.output("t2_acc");
    let lossy = d.fifo("e0_0to1", 1);
    let fwd = d.fifo("e1_1to2", 1);
    let producer = accumulating_producer(&mut d, "t0", out0, lossy, true, n);
    let middle = d.function("t1", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let (v, ok) = b.fifo_nb_read(lossy);
            b.assign(
                acc,
                Expr::var(acc)
                    .add(i.clone())
                    .add(Expr::var(ok).select(Expr::var(v), Expr::imm(0))),
            );
            b.step(3);
            b.fifo_write(fwd, Expr::var(acc).add(i).add(Expr::imm(1)));
        });
        m.exit(|b| {
            b.output(out1, Expr::var(acc));
        });
    });
    let sink = d.function("t2", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.fifo_read(fwd);
            b.assign(acc, Expr::var(acc).add(i).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out2, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [producer, middle, sink]);
    d.build().expect("fixture is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::classify;
    use omnisim_ir::DesignClass;

    #[test]
    fn fixtures_build_and_classify() {
        assert_eq!(
            classify(&pipelined_reader_overlap(2)).class,
            DesignClass::TypeA
        );
        assert_eq!(classify(&nb_undecided_race(3)).class, DesignClass::TypeC);
        assert_eq!(classify(&depth_relaxation(2)).class, DesignClass::TypeA);
    }

    #[test]
    fn overlap_fixture_has_a_genuinely_pipelined_consumer() {
        let design = pipelined_reader_overlap(2);
        let consumer = design.module(design.module_by_name("t1").unwrap());
        let pipelined = consumer
            .blocks
            .iter()
            .any(|b| b.schedule.ii.is_some() && b.schedule.latency > 1);
        assert!(pipelined, "the loop body must overlap iterations");
    }
}
