//! The Type A suite mirroring Table 5: Vitis HLS basic examples, kernels
//! from Kastner et al.'s *Parallel Programming for FPGAs*, a streaming
//! vector-add, and large many-module dataflow graphs standing in for the
//! FlowGNN accelerators, INR-Arch and SkyNet.
//!
//! Every design here is Type A (blocking-only FIFO access, acyclic dataflow,
//! bounded loops), which is what the LightningSim baseline supports; the
//! Table 5 experiment compares OmniSim against LightningSim on exactly this
//! set. The kernels are re-authored at the IR level with the same loop
//! structure, array traffic and dataflow topology as their namesakes; the
//! arithmetic is integer/fixed-point (the IR's value type), which preserves
//! the schedule shape that drives simulation cost.

use omnisim_ir::{Design, DesignBuilder, Expr};

fn input(n: i64, seed: i64) -> Vec<i64> {
    (0..n)
        .map(|i| 1 + ((i * 1103515245 + seed * 12345 + 31) & 0xffff) % 251)
        .collect()
}

/// Fixed-point square root: per element, 16 iterations of a shift-and-check
/// loop inside a called sub-function.
pub fn fixed_point_sqrt(n: i64) -> Design {
    let mut d = DesignBuilder::new("fixed_point_sqrt");
    let data = d.array("data", input(n, 1));
    let out = d.output("checksum");
    let sqrt = d.function("isqrt", |m| {
        let x = m.var("x");
        let root = m.var("root");
        m.entry(|b| {
            b.assign(root, Expr::imm(0));
        });
        m.counted_loop("bit", 16, 1, |b| {
            let bit = b.var("bit");
            let cand = Expr::var(root).bitor(Expr::imm(1).shl(Expr::imm(15).sub(Expr::var(bit))));
            b.assign(
                root,
                cand.clone()
                    .mul(cand.clone())
                    .le(Expr::var(x))
                    .select(cand, Expr::var(root)),
            );
        });
        m.exit(|b| {
            b.ret_val(Expr::var(root));
        });
    });
    d.function_top("sqrt_top", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            let r = b.call(sqrt, vec![Expr::var(v).shl(Expr::imm(8))]);
            b.assign(acc, Expr::var(acc).add(Expr::var(r)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.build().expect("fixed_point_sqrt is valid")
}

/// FIR filter over `n` samples with `taps` coefficients.
pub fn fir_filter(n: i64, taps: i64) -> Design {
    let mut d = DesignBuilder::new("fir_filter");
    let samples = d.array("samples", input(n, 2));
    let coeffs = d.array("coeffs", (1..=taps).collect::<Vec<i64>>());
    let result = d.zero_array("result", n as usize);
    let out = d.output("checksum");
    d.function_top("fir", |m| {
        let acc = m.var("acc");
        let check = m.var("check");
        m.entry(|b| {
            b.assign(check, Expr::imm(0));
        });
        m.counted_loop("k", n * taps, 1, |b| {
            let k = b.var_expr("k");
            let i = k.clone().div(Expr::imm(taps));
            let t = k.clone().rem(Expr::imm(taps));
            let idx = i.clone().sub(t.clone()).max(Expr::imm(0));
            let s = b.array_load(samples, idx);
            let c = b.array_load(coeffs, t.clone());
            b.assign(
                acc,
                t.eq(Expr::imm(0))
                    .select(Expr::imm(0), Expr::var(acc))
                    .add(Expr::var(s).mul(Expr::var(c))),
            );
            b.array_store(result, i, Expr::var(acc));
            b.assign(check, Expr::var(check).add(Expr::var(acc)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(check));
        });
    });
    d.build().expect("fir_filter is valid")
}

/// Sliding-window convolution over `n` samples with window `w`.
pub fn window_conv(n: i64, w: i64) -> Design {
    let mut d = DesignBuilder::new("window_conv");
    let data = d.array("data", input(n, 3));
    let kernel = d.array(
        "kernel",
        (1..=w).map(|i| i * 3 % 7 + 1).collect::<Vec<i64>>(),
    );
    let out = d.output("checksum");
    d.function_top("conv", |m| {
        let acc = m.var("acc");
        let check = m.var("check");
        m.entry(|b| {
            b.assign(check, Expr::imm(0));
        });
        m.counted_loop("k", n * w, 1, |b| {
            let k = b.var_expr("k");
            let i = k.clone().div(Expr::imm(w));
            let j = k.rem(Expr::imm(w));
            let idx = i.add(j.clone()).min(Expr::imm(n - 1));
            let v = b.array_load(data, idx);
            let c = b.array_load(kernel, j.clone());
            b.assign(
                acc,
                j.eq(Expr::imm(0))
                    .select(Expr::imm(0), Expr::var(acc))
                    .add(Expr::var(v).mul(Expr::var(c))),
            );
            b.assign(check, Expr::var(check).add(Expr::var(acc)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(check));
        });
    });
    d.build().expect("window_conv is valid")
}

/// A small ALU interpreting an opcode stream (add/sub/mul/shift/compare).
pub fn alu(n: i64) -> Design {
    let mut d = DesignBuilder::new("arbitrary_precision_alu");
    let a = d.array("a", input(n, 4));
    let b_arr = d.array("b", input(n, 5));
    let ops = d.array("ops", (0..n).map(|i| i % 5).collect::<Vec<i64>>());
    let out = d.output("checksum");
    d.function_top("alu", |m| {
        let acc = m.var("acc");
        m.entry(|blk| {
            blk.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |blk| {
            let i = blk.var_expr("i");
            let x = blk.array_load(a, i.clone());
            let y = blk.array_load(b_arr, i.clone());
            let op = blk.array_load(ops, i);
            let x = Expr::var(x);
            let y = Expr::var(y);
            let op = Expr::var(op);
            let result = op.clone().eq(Expr::imm(0)).select(
                x.clone().add(y.clone()),
                op.clone().eq(Expr::imm(1)).select(
                    x.clone().sub(y.clone()),
                    op.clone().eq(Expr::imm(2)).select(
                        x.clone().mul(y.clone()),
                        op.eq(Expr::imm(3))
                            .select(x.clone().shr(Expr::imm(2)), x.max(y)),
                    ),
                ),
            );
            blk.assign(acc, Expr::var(acc).bitxor(result));
        });
        m.exit(|blk| {
            blk.output(out, Expr::var(acc));
        });
    });
    d.build().expect("alu is valid")
}

/// Two independent loops in a dataflow region.
pub fn parallel_loops(n: i64) -> Design {
    let mut d = DesignBuilder::new("parallel_loops");
    let a = d.array("a", input(n, 6));
    let b_arr = d.array("b", input(n, 7));
    let out_a = d.output("sum_a");
    let out_b = d.output("sum_b");
    let sum_loop = |name: &'static str, arr, out, ii| {
        move |m: &mut omnisim_ir::ModuleBuilder| {
            let _ = name;
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", n, ii, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(arr, i);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        }
    };
    let t1 = d.function("loop_a", sum_loop("loop_a", a, out_a, 1));
    let t2 = d.function("loop_b", sum_loop("loop_b", b_arr, out_b, 2));
    d.dataflow_top("top", [t1, t2]);
    d.build().expect("parallel_loops is valid")
}

/// An imperfect loop nest: the inner trip count depends on the outer index.
pub fn imperfect_loops(rows: i64, cols: i64) -> Design {
    let mut d = DesignBuilder::new("imperfect_loops");
    let data = d.array("data", input(rows * cols, 8));
    let out = d.output("checksum");
    d.function_top("imperfect", |m| {
        let acc = m.var("acc");
        let i = m.var("i");
        let j = m.var("j");
        let entry = m.new_block();
        let outer = m.new_block();
        let inner = m.new_block();
        let finish = m.new_block();
        m.fill_block(entry, |b| {
            b.assign(acc, Expr::imm(0))
                .assign(i, Expr::imm(0))
                .jump(outer);
        });
        m.fill_block(outer, |b| {
            b.assign(j, Expr::imm(0));
            b.branch(Expr::var(i).lt(Expr::imm(rows)), inner, finish);
        });
        m.fill_block(inner, |b| {
            b.pipeline(1);
            let v = b.array_load(data, Expr::var(i).mul(Expr::imm(cols)).add(Expr::var(j)));
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            b.assign(j, Expr::var(j).add(Expr::imm(1)));
            // Inner bound depends on the outer index: j < i % cols + 1.
            let bound = Expr::var(i).rem(Expr::imm(cols)).add(Expr::imm(1));
            let next_outer = Expr::var(j).ge(bound);
            let i_next = Expr::var(i).add(next_outer.clone());
            b.assign(i, i_next);
            b.branch(next_outer, outer, inner);
        });
        m.fill_block(finish, |b| {
            b.output(out, Expr::var(acc));
            b.ret();
        });
    });
    d.build().expect("imperfect_loops is valid")
}

/// A loop whose dynamic trip count (`actual`) is smaller than its static
/// maximum bound (`max_bound`) — static estimates get this wrong, dynamic
/// simulation does not.
pub fn loop_max_bound(actual: i64, max_bound: i64) -> Design {
    let mut d = DesignBuilder::new("loop_max_bound");
    let mut data = input(max_bound, 9);
    for slot in data.iter_mut().skip(actual as usize) {
        *slot = 0;
    }
    let arr = d.array("data", data);
    let out = d.output("sum");
    d.function_top("bounded", |m| {
        let acc = m.var("acc");
        let i = m.var("i");
        let entry = m.new_block();
        let head = m.new_block();
        let finish = m.new_block();
        m.fill_block(entry, |b| {
            b.assign(acc, Expr::imm(0))
                .assign(i, Expr::imm(0))
                .jump(head);
        });
        m.fill_block(head, |b| {
            b.pipeline(1);
            let v = b.array_load(arr, Expr::var(i));
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            b.assign(i, Expr::var(i).add(Expr::imm(1)));
            let stop = Expr::var(v)
                .eq(Expr::imm(0))
                .bitor(Expr::var(i).ge(Expr::imm(max_bound)));
            b.branch(stop, finish, head);
        });
        m.fill_block(finish, |b| {
            b.output(out, Expr::var(acc));
            b.ret();
        });
    });
    d.build().expect("loop_max_bound is valid")
}

/// A perfect two-level loop nest, optionally pipelined at II=1.
pub fn nested_loops(outer: i64, inner: i64, pipelined: bool) -> Design {
    let name = if pipelined {
        "pipelined_nested_loops"
    } else {
        "perfect_nested_loops"
    };
    let mut d = DesignBuilder::new(name);
    let data = d.array("data", input(outer * inner, 10));
    let out = d.output("checksum");
    let ii = if pipelined { 1 } else { 3 };
    d.function_top("nest", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("k", outer * inner, ii, |b| {
            if !pipelined {
                b.latency(3);
            }
            let k = b.var_expr("k");
            let v = b.array_load(data, k.clone());
            b.assign(
                acc,
                Expr::var(acc).add(Expr::var(v).mul(k.rem(Expr::imm(inner)).add(Expr::imm(1)))),
            );
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.build().expect("nested_loops is valid")
}

/// Two accumulators that run one after the other in the same function.
pub fn sequential_accumulators(n: i64) -> Design {
    let mut d = DesignBuilder::new("sequential_accumulators");
    let a = d.array("a", input(n, 11));
    let b_arr = d.array("b", input(n, 12));
    let out = d.output("total");
    d.function_top("accumulate", |m| {
        let sum_a = m.var("sum_a");
        let sum_b = m.var("sum_b");
        m.entry(|b| {
            b.assign(sum_a, Expr::imm(0));
            b.assign(sum_b, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(a, i);
            b.assign(sum_a, Expr::var(sum_a).add(Expr::var(v)));
        });
        m.counted_loop("j", n, 1, |b| {
            let j = b.var_expr("j");
            let v = b.array_load(b_arr, j);
            b.assign(sum_b, Expr::var(sum_b).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(sum_a).add(Expr::var(sum_b)));
        });
    });
    d.build().expect("sequential_accumulators is valid")
}

/// A chain of accumulator stages connected by FIFOs inside a dataflow region.
pub fn dataflow_accumulators(n: i64, stages: usize) -> Design {
    dataflow_graph("accumulators_dataflow", stages, n, 1)
}

/// Stores then reloads a scratch memory (URAM/static-memory style).
pub fn static_memory(n: i64) -> Design {
    let mut d = DesignBuilder::new("static_memory");
    let data = d.array("data", input(n, 13));
    let scratch = d.zero_array("scratch", n as usize);
    let out = d.output("checksum");
    d.function_top("memory", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i.clone());
            b.array_store(scratch, i, Expr::var(v).mul(Expr::imm(3)));
        });
        m.counted_loop("j", n, 1, |b| {
            let j = b.var_expr("j");
            let v = b.array_load(scratch, Expr::imm(n - 1).sub(j));
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.build().expect("static_memory is valid")
}

/// Packs pairs of values into a wide word and unpacks them again (the
/// pointer-casting / double-pointer examples).
pub fn pointer_casting(n: i64) -> Design {
    let mut d = DesignBuilder::new("pointer_casting");
    let data = d.array("data", input(n, 14));
    let out = d.output("checksum");
    d.function_top("cast", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n / 2, 1, |b| {
            let i = b.var_expr("i");
            let lo = b.array_load(data, i.clone().mul(Expr::imm(2)));
            let hi = b.array_load(data, i.mul(Expr::imm(2)).add(Expr::imm(1)));
            let packed = Expr::var(hi).shl(Expr::imm(16)).bitor(Expr::var(lo));
            let unpacked_lo = packed.clone().bitand(Expr::imm(0xffff));
            let unpacked_hi = packed.shr(Expr::imm(16));
            b.assign(acc, Expr::var(acc).add(unpacked_lo).add(unpacked_hi));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.build().expect("pointer_casting is valid")
}

/// Reads bursts from an AXI master port, processes them, writes them back.
pub fn axi4_master(n: i64, burst: i64) -> Design {
    let mut d = DesignBuilder::new("axi4_master");
    let mem = d.array("ddr", input(n, 15));
    let axi = d.axi_port("gmem", mem, 6);
    let out = d.output("checksum");
    d.function_top("axi_master", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("blk", n / burst, 1, |b| {
            let blk_idx = b.var_expr("blk");
            let base = blk_idx.mul(Expr::imm(burst));
            b.axi_read_req(axi, base.clone(), Expr::imm(burst));
            for _ in 0..burst {
                let v = b.axi_read(axi);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            }
            b.axi_write_req(axi, base, Expr::imm(burst));
            for k in 0..burst {
                b.axi_write(axi, Expr::var(acc).add(Expr::imm(k)));
            }
            b.axi_write_resp(axi);
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.build().expect("axi4_master is valid")
}

/// Streaming vector add: two loaders, an adder and a writer in a dataflow
/// region (the Vitis accel vadd example / AXIS example).
pub fn vecadd_stream(n: i64, depth: usize) -> Design {
    let mut d = DesignBuilder::new("vecadd_stream");
    let a = d.array("a", input(n, 16));
    let b_arr = d.array("b", input(n, 17));
    let c_arr = d.zero_array("c", n as usize);
    let out = d.output("checksum");
    let fa = d.fifo("stream_a", depth);
    let fb = d.fifo("stream_b", depth);
    let fc = d.fifo("stream_c", depth);

    let load_a = d.function("load_a", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(a, i);
            b.fifo_write(fa, Expr::var(v));
        });
    });
    let load_b = d.function("load_b", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(b_arr, i);
            b.fifo_write(fb, Expr::var(v));
        });
    });
    let adder = d.function("adder", |m| {
        m.counted_loop("i", n, 1, |b| {
            let x = b.fifo_read(fa);
            let y = b.fifo_read(fb);
            b.fifo_write(fc, Expr::var(x).add(Expr::var(y)));
        });
    });
    let writer = d.function("writer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.fifo_read(fc);
            b.array_store(c_arr, i, Expr::var(v));
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.dataflow_top("top", [load_a, load_b, adder, writer]);
    d.build().expect("vecadd_stream is valid")
}

/// Touches several arrays per iteration (multiple / resolved array access).
pub fn multiple_array_access(n: i64) -> Design {
    let mut d = DesignBuilder::new("multiple_array_access");
    let a = d.array("a", input(n, 18));
    let b_arr = d.array("b", input(n, 19));
    let c = d.array("c", input(n, 20));
    let out = d.output("checksum");
    d.function_top("access", |m| {
        let acc = m.var("acc");
        m.entry(|blk| {
            blk.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |blk| {
            let i = blk.var_expr("i");
            let x = blk.array_load(a, i.clone());
            let y = blk.array_load(b_arr, i.clone());
            let z = blk.array_load(c, i);
            blk.assign(
                acc,
                Expr::var(acc).add(Expr::var(x).mul(Expr::var(y)).sub(Expr::var(z))),
            );
        });
        m.exit(|blk| {
            blk.output(out, Expr::var(acc));
        });
    });
    d.build().expect("multiple_array_access is valid")
}

/// Fixed-point Hamming-window weighting of a sample buffer.
pub fn hamming_window(n: i64) -> Design {
    let mut d = DesignBuilder::new("fixed_point_hamming");
    let data = d.array("data", input(n, 21));
    let out = d.output("checksum");
    d.function_top("hamming", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i.clone());
            // 0.54 - 0.46 cos(2πi/N) approximated with a triangular profile
            // in Q8 fixed point.
            let phase = i.clone().rem(Expr::imm(n));
            let tri = Expr::imm(n / 2)
                .sub(phase.sub(Expr::imm(n / 2)))
                .max(Expr::imm(0));
            let coeff = Expr::imm(138).add(tri.mul(Expr::imm(118)).div(Expr::imm(n.max(1))));
            b.assign(
                acc,
                Expr::var(acc).add(Expr::var(v).mul(coeff).shr(Expr::imm(8))),
            );
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    d.build().expect("hamming_window is valid")
}

/// A chain of FFT-like butterfly stages connected by FIFOs. `stages == 1`
/// models the unoptimised version, larger values the multi-stage pipeline.
pub fn fft_stages(n: i64, stages: usize) -> Design {
    dataflow_graph("fft_stages", stages, n, 1)
}

/// Histogram construction followed by a code-length accumulation pass
/// (the Huffman encoding kernel's simulation-relevant structure).
pub fn huffman_encoding(n: i64) -> Design {
    let mut d = DesignBuilder::new("huffman_encoding");
    let symbols = d.array(
        "symbols",
        input(n, 22).iter().map(|v| v % 32).collect::<Vec<i64>>(),
    );
    let hist = d.zero_array("histogram", 32);
    let out = d.output("total_bits");
    d.function_top("huffman", |m| {
        let bits = m.var("bits");
        m.entry(|b| {
            b.assign(bits, Expr::imm(0));
        });
        m.counted_loop("i", n, 2, |b| {
            let i = b.var_expr("i");
            let s = b.array_load(symbols, i);
            let count = b.array_load(hist, Expr::var(s));
            b.array_store(hist, Expr::var(s), Expr::var(count).add(Expr::imm(1)));
        });
        m.counted_loop("s", 32, 1, |b| {
            let s = b.var_expr("s");
            let count = b.array_load(hist, s.clone());
            // Shorter codes for more frequent symbols: len = 1 + s % 6.
            let len = Expr::imm(1).add(s.rem(Expr::imm(6)));
            b.assign(bits, Expr::var(bits).add(Expr::var(count).mul(len)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(bits));
        });
    });
    d.build().expect("huffman_encoding is valid")
}

/// Dense matrix multiplication of two `size × size` matrices.
pub fn matmul(size: i64) -> Design {
    let mut d = DesignBuilder::new("matrix_multiplication");
    let a = d.array("a", input(size * size, 23));
    let b_arr = d.array("b", input(size * size, 24));
    let c = d.zero_array("c", (size * size) as usize);
    let out = d.output("checksum");
    d.function_top("matmul", |m| {
        let acc = m.var("acc");
        let check = m.var("check");
        m.entry(|blk| {
            blk.assign(check, Expr::imm(0));
        });
        m.counted_loop("k", size * size * size, 1, |blk| {
            let k = blk.var_expr("k");
            let i = k.clone().div(Expr::imm(size * size));
            let j = k.clone().div(Expr::imm(size)).rem(Expr::imm(size));
            let l = k.rem(Expr::imm(size));
            let x = blk.array_load(a, i.clone().mul(Expr::imm(size)).add(l.clone()));
            let y = blk.array_load(b_arr, l.clone().mul(Expr::imm(size)).add(j.clone()));
            blk.assign(
                acc,
                l.clone()
                    .eq(Expr::imm(0))
                    .select(Expr::imm(0), Expr::var(acc))
                    .add(Expr::var(x).mul(Expr::var(y))),
            );
            let is_last = l.eq(Expr::imm(size - 1));
            let c_idx = i.mul(Expr::imm(size)).add(j);
            blk.array_store(
                c,
                is_last.clone().select(c_idx, Expr::imm(0)),
                is_last.clone().select(Expr::var(acc), Expr::imm(0)),
            );
            blk.assign(
                check,
                Expr::var(check).add(is_last.select(Expr::var(acc), Expr::imm(0))),
            );
        });
        m.exit(|blk| {
            blk.output(out, Expr::var(check));
        });
    });
    d.build().expect("matmul is valid")
}

/// A compare-and-swap sorting network (odd–even transposition), standing in
/// for the parallelised merge sort of the original suite: same all-to-all
/// array traffic and nested-loop schedule shape.
pub fn merge_sort(n: i64) -> Design {
    let mut d = DesignBuilder::new("parallelized_merge_sort");
    let data = d.array("data", input(n, 25));
    let out = d.output("checksum");
    d.function_top("sort", |m| {
        let check = m.var("check");
        m.entry(|b| {
            b.assign(check, Expr::imm(0));
        });
        m.counted_loop("k", n * (n / 2), 1, |b| {
            let k = b.var_expr("k");
            let pass = k.clone().div(Expr::imm(n / 2));
            let pair = k.rem(Expr::imm(n / 2));
            // Odd passes compare (2i+1, 2i+2); even passes compare (2i, 2i+1).
            let base = pair.mul(Expr::imm(2)).add(pass.rem(Expr::imm(2)));
            let left_idx = base.clone().min(Expr::imm(n - 2));
            let right_idx = left_idx.clone().add(Expr::imm(1));
            let left = b.array_load(data, left_idx.clone());
            let right = b.array_load(data, right_idx.clone());
            let lo = Expr::var(left).min(Expr::var(right));
            let hi = Expr::var(left).max(Expr::var(right));
            b.array_store(data, left_idx, lo.clone());
            b.array_store(data, right_idx, hi);
            b.assign(check, Expr::var(check).add(lo));
        });
        m.exit(|b| {
            b.output(out, Expr::var(check));
        });
    });
    d.build().expect("merge_sort is valid")
}

/// A linear dataflow pipeline: one source, `stages` compute stages and one
/// sink, streaming `n` elements. This is the scalable skeleton behind the
/// FlowGNN-style designs and the dataflow accumulator example.
pub fn dataflow_graph(name: &str, stages: usize, n: i64, ii: u64) -> Design {
    let mut d = DesignBuilder::new(name.to_owned());
    let data = d.array("input", input(n, 26));
    let out = d.output("checksum");
    let mut fifos = Vec::new();
    for s in 0..=stages {
        fifos.push(d.fifo(format!("link_{s}"), 4));
    }

    let source = d.function("source", |m| {
        m.counted_loop("i", n, ii, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(fifos[0], Expr::var(v));
        });
    });
    let mut tasks = vec![source];
    for s in 0..stages {
        let input_fifo = fifos[s];
        let output_fifo = fifos[s + 1];
        let stage_const = (s as i64 % 13) + 1;
        let stage = d.function(format!("stage_{s}"), move |m| {
            m.counted_loop("i", n, ii, |b| {
                let v = b.fifo_read(input_fifo);
                let processed = Expr::var(v)
                    .mul(Expr::imm(3))
                    .add(Expr::imm(stage_const))
                    .shr(Expr::imm(1));
                b.fifo_write(output_fifo, processed);
            });
        });
        tasks.push(stage);
    }
    let sink_fifo = fifos[stages];
    let sink = d.function("sink", move |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, ii, |b| {
            let v = b.fifo_read(sink_fifo);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(out, Expr::var(acc));
        });
    });
    tasks.push(sink);
    d.dataflow_top("top", tasks);
    d.build().expect("dataflow_graph is valid")
}

/// A SkyNet-style detection pipeline: a deep backbone chain plus a slower
/// post-processing tail, the largest design in the suite.
pub fn skynet(stages: usize, n: i64) -> Design {
    dataflow_graph("skynet", stages, n, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::{classify, DesignClass};

    #[test]
    fn representative_kernels_are_type_a() {
        for design in [
            fixed_point_sqrt(16),
            fir_filter(32, 4),
            alu(32),
            parallel_loops(16),
            imperfect_loops(8, 8),
            loop_max_bound(10, 32),
            axi4_master(32, 4),
            vecadd_stream(32, 2),
            matmul(4),
            merge_sort(16),
            dataflow_graph("tiny", 3, 16, 1),
        ] {
            let report = classify(&design);
            assert_eq!(report.class, DesignClass::TypeA, "{}", design.name);
        }
    }

    #[test]
    fn dataflow_graph_scales_module_count() {
        let design = dataflow_graph("scale", 10, 8, 1);
        assert_eq!(design.dataflow_tasks().len(), 12);
        assert_eq!(design.fifos.len(), 11);
    }

    #[test]
    fn loop_max_bound_data_terminates_early() {
        let design = loop_max_bound(10, 64);
        // The zero terminator must be present inside the array.
        let arr = &design.arrays[0].init;
        assert_eq!(arr[10], 0);
        assert!(arr[..10].iter().all(|&v| v != 0));
    }
}
