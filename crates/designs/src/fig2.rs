//! The timer design of Fig. 2: a module that counts the number of cycles
//! another module takes to produce its result. Its functional output *is* a
//! cycle count, so naive C simulation cannot get it right (Table 3 reports
//! `0 cycles` under C-sim and the true hardware count under co-sim and
//! OmniSim).

use omnisim_ir::{Design, DesignBuilder, Expr};

/// Builds the `fig2_timer` design: a feeder streaming `n` values, a compute
/// module that consumes them all and emits one result, and a timer polling
/// the result FIFO with `empty()` every cycle.
pub fn timer(n: i64) -> Design {
    let mut d = DesignBuilder::new("fig2_timer");
    let data = d.array("d_in", (1..=n).collect::<Vec<i64>>());
    let cycles_out = d.output("timer_cycles");
    let result_out = d.output("compute_result");
    let d_in = d.fifo("d_in_stream", 2);
    let result = d.fifo("result", 2);

    let feeder = d.function("feeder", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(d_in, Expr::var(v));
        });
    });

    let compute = d.function("compute", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let v = b.fifo_read(d_in);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            // Three extra cycles of "work" before the result is published,
            // mirroring the compute module of Fig. 2.
            b.latency(4);
            b.at(3).fifo_write(result, Expr::var(acc).div(Expr::imm(2)));
            b.output(result_out, Expr::var(acc).div(Expr::imm(2)));
        });
    });

    let timer = d.function("timer", |m| {
        let cycles = m.var("cycles");
        m.entry(|b| {
            b.assign(cycles, Expr::imm(0));
        });
        m.loop_block(1, |b| {
            let empty = b.fifo_empty(result);
            b.assign(cycles, Expr::var(cycles).add(Expr::var(empty)));
            b.exit_loop_if(Expr::var(empty).logical_not());
        });
        m.exit(|b| {
            let v = b.fifo_read(result);
            let _ = v;
            b.output(cycles_out, Expr::var(cycles));
        });
    });

    d.dataflow_top("top", [feeder, compute, timer]);
    d.build().expect("fig2_timer is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::{classify, DesignClass};

    #[test]
    fn timer_is_type_c() {
        let report = classify(&timer(32));
        assert_eq!(report.class, DesignClass::TypeC);
        assert!(
            report.uses_nonblocking,
            "empty() checks are cycle-dependent"
        );
    }

    #[test]
    fn timer_has_three_tasks_and_two_fifos() {
        let design = timer(32);
        assert_eq!(design.dataflow_tasks().len(), 3);
        assert_eq!(design.fifos.len(), 2);
    }
}
