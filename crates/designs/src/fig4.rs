//! The dataflow examples of Fig. 4 of the paper (Ex. 2 – Ex. 5), as used in
//! Tables 3 and 4 of the evaluation.
//!
//! All producers read from an input array sized `4 × n` on purpose: a
//! correctly timed simulation only ever touches the first `n + O(1)`
//! elements, while naive sequential C simulation (where `write_nb` always
//! succeeds and the consumer never runs concurrently) walks off far enough to
//! hit an out-of-bounds access — reproducing the `SIGSEGV` rows of Table 3.

use omnisim_ir::{Design, DesignBuilder, Expr};

/// Input data used by every Fig. 4 design: values `1..=len`.
pub fn input_data(len: i64) -> Vec<i64> {
    (1..=len).collect()
}

/// Fig. 4 Ex. 2 (Type B): a producer retries non-blocking writes in an
/// infinite loop until a `done` signal arrives from the consumer.
pub fn ex2(n: i64) -> Design {
    let mut d = DesignBuilder::new("fig4_ex2");
    let data = d.array("data", input_data(4 * n));
    let sum_out = d.output("sum_out");
    let q = d.fifo("stream", 2);
    let done = d.fifo("done", 1);

    let producer = d.function("producer", |m| {
        let i = m.var("i");
        m.entry(|b| {
            b.assign(i, Expr::imm(0));
        });
        m.loop_block(1, |b| {
            let iv = Expr::var(b.var("i"));
            let v = b.array_load(data, iv.clone());
            let ok = b.fifo_nb_write(q, Expr::var(v));
            b.assign(i, Expr::var(ok).select(iv.clone().add(Expr::imm(1)), iv));
            let (_d, got_done) = b.fifo_nb_read(done);
            b.exit_loop_if(Expr::var(got_done));
        });
    });
    let consumer = d.function("consumer", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("k", n, 1, |b| {
            let v = b.fifo_read(q);
            b.assign(acc, Expr::var(acc).add(Expr::var(v)));
        });
        m.exit(|b| {
            b.output(sum_out, Expr::var(acc));
            b.fifo_write(done, Expr::imm(1));
        });
    });
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fig4_ex2 is structurally valid")
}

/// Fig. 4 Ex. 3 (Type B): controller and processor connected by blocking
/// FIFOs with a cyclic dependency.
pub fn ex3(n: i64) -> Design {
    let mut d = DesignBuilder::new("fig4_ex3");
    let data = d.array("data_in", input_data(n));
    let sum = d.output("sum");
    let req = d.fifo("fifo1", 2);
    let resp = d.fifo("fifo2", 2);

    let controller = d.function("controller", |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_write(req, Expr::var(v));
            let doubled = b.fifo_read(resp);
            b.assign(acc, Expr::var(acc).add(Expr::var(doubled)));
        });
        m.exit(|b| {
            b.output(sum, Expr::var(acc));
        });
    });
    let processor = d.function("processor", |m| {
        m.counted_loop("i", n, 1, |b| {
            let v = b.fifo_read(req);
            b.fifo_write(resp, Expr::var(v).mul(Expr::imm(2)));
        });
    });
    d.dataflow_top("top", [controller, processor]);
    d.build().expect("fig4_ex3 is structurally valid")
}

fn ex4_consumer_body(
    d: &mut DesignBuilder,
    q: omnisim_ir::FifoId,
    sum_out: omnisim_ir::OutputId,
    n: i64,
    consumer_ii: u64,
    done: Option<omnisim_ir::FifoId>,
) -> omnisim_ir::ModuleId {
    d.function("consumer", move |m| {
        let acc = m.var("acc");
        m.entry(|b| {
            b.assign(acc, Expr::imm(0));
        });
        m.counted_loop("k", n, consumer_ii, |b| {
            let (v, ok) = b.fifo_nb_read(q);
            b.assign(
                acc,
                Expr::var(ok).select(Expr::var(acc).add(Expr::var(v)), Expr::var(acc)),
            );
        });
        m.exit(|b| {
            b.output(sum_out, Expr::var(acc));
            if let Some(done) = done {
                b.fifo_write(done, Expr::imm(1));
            }
        });
    })
}

/// Fig. 4 Ex. 4a (Type C): the producer silently drops elements when the
/// FIFO is full (`write_nb` result ignored), bounded loop.
pub fn ex4a(n: i64) -> Design {
    let mut d = DesignBuilder::new("fig4_ex4a");
    let data = d.array("data", input_data(4 * n));
    let sum_out = d.output("sum_out");
    let q = d.fifo("stream", 1);

    let producer = d.function("producer", |m| {
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            b.fifo_nb_write_ignored(q, Expr::var(v));
        });
    });
    let consumer = ex4_consumer_body(&mut d, q, sum_out, n, 2, None);
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fig4_ex4a is structurally valid")
}

/// Fig. 4 Ex. 4a with a done signal (Type C, cyclic): the producer runs an
/// infinite loop terminated by the consumer.
pub fn ex4a_done(n: i64) -> Design {
    let mut d = DesignBuilder::new("fig4_ex4a_d");
    let data = d.array("data", input_data(4 * n));
    let sum_out = d.output("sum_out");
    let q = d.fifo("stream", 1);
    let done = d.fifo("done", 1);

    let producer = d.function("producer", |m| {
        let i = m.var("i");
        m.entry(|b| {
            b.assign(i, Expr::imm(0));
        });
        m.loop_block(1, |b| {
            let iv = Expr::var(b.var("i"));
            let v = b.array_load(data, iv.clone());
            b.fifo_nb_write_ignored(q, Expr::var(v));
            b.assign(i, iv.add(Expr::imm(1)));
            let (_d, got_done) = b.fifo_nb_read(done);
            b.exit_loop_if(Expr::var(got_done));
        });
    });
    let consumer = ex4_consumer_body(&mut d, q, sum_out, n, 2, Some(done));
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fig4_ex4a_d is structurally valid")
}

/// Fig. 4 Ex. 4b (Type C): like Ex. 4a but failed writes are counted in a
/// `Dropped` output.
pub fn ex4b(n: i64) -> Design {
    let mut d = DesignBuilder::new("fig4_ex4b");
    let data = d.array("data", input_data(4 * n));
    let sum_out = d.output("sum_out");
    let dropped = d.output("dropped");
    let q = d.fifo("stream", 1);

    let producer = d.function("producer", |m| {
        let drops = m.var("drops");
        m.entry(|b| {
            b.assign(drops, Expr::imm(0));
        });
        m.counted_loop("i", n, 1, |b| {
            let i = b.var_expr("i");
            let v = b.array_load(data, i);
            let ok = b.fifo_nb_write(q, Expr::var(v));
            b.assign(
                drops,
                Expr::var(ok).select(Expr::var(drops), Expr::var(drops).add(Expr::imm(1))),
            );
        });
        m.exit(|b| {
            b.output(dropped, Expr::var(drops));
        });
    });
    let consumer = ex4_consumer_body(&mut d, q, sum_out, n, 2, None);
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fig4_ex4b is structurally valid")
}

/// Fig. 4 Ex. 4b with a done signal (Type C, cyclic).
pub fn ex4b_done(n: i64) -> Design {
    let mut d = DesignBuilder::new("fig4_ex4b_d");
    let data = d.array("data", input_data(4 * n));
    let sum_out = d.output("sum_out");
    let dropped = d.output("dropped");
    let q = d.fifo("stream", 1);
    let done = d.fifo("done", 1);

    let producer = d.function("producer", |m| {
        let drops = m.var("drops");
        let i = m.var("i");
        m.entry(|b| {
            b.assign(drops, Expr::imm(0));
            b.assign(i, Expr::imm(0));
        });
        m.loop_block(1, |b| {
            let iv = Expr::var(b.var("i"));
            let v = b.array_load(data, iv.clone());
            let ok = b.fifo_nb_write(q, Expr::var(v));
            b.assign(
                drops,
                Expr::var(ok).select(Expr::var(drops), Expr::var(drops).add(Expr::imm(1))),
            );
            b.assign(i, iv.add(Expr::imm(1)));
            let (_d, got_done) = b.fifo_nb_read(done);
            b.exit_loop_if(Expr::var(got_done));
        });
        m.exit(|b| {
            b.output(dropped, Expr::var(drops));
        });
    });
    let consumer = ex4_consumer_body(&mut d, q, sum_out, n, 2, Some(done));
    d.dataflow_top("top", [producer, consumer]);
    d.build().expect("fig4_ex4b_d is structurally valid")
}

/// Fig. 4 Ex. 5 (Type C): a controller dispatches work to whichever of two
/// processors is less congested, tracked with non-blocking writes. This is
/// also the design used for the incremental-simulation case study (Table 6).
pub fn ex5(n: i64) -> Design {
    ex5_with_depths(n, 2, 2)
}

/// Fig. 4 Ex. 5 with explicit FIFO depths (used by the Table 6 experiment).
pub fn ex5_with_depths(n: i64, depth1: usize, depth2: usize) -> Design {
    let mut d = DesignBuilder::new("fig4_ex5");
    let data = d.array("ins", input_data(n));
    let p1_count = d.output("processed_by_p1");
    let p2_count = d.output("processed_by_p2");
    let sum_p1 = d.output("sum_out_p1");
    let sum_p2 = d.output("sum_out_p2");
    let f1 = d.fifo("fifo1", depth1);
    let f2 = d.fifo("fifo2", depth2);

    let controller = d.function("controller", |m| {
        let i = m.var("i");
        let p1 = m.var("p1");
        let p2 = m.var("p2");
        let v = m.var("v");
        let entry = m.new_block();
        let head = m.new_block();
        let try1 = m.new_block();
        let took1 = m.new_block();
        let try2 = m.new_block();
        let finish = m.new_block();
        m.fill_block(entry, |b| {
            b.assign(i, Expr::imm(0))
                .assign(p1, Expr::imm(0))
                .assign(p2, Expr::imm(0))
                .jump(head);
        });
        m.fill_block(head, |b| {
            b.branch(Expr::var(i).lt(Expr::imm(n)), try1, finish);
        });
        m.fill_block(try1, |b| {
            b.array_load_into(v, data, Expr::var(i));
            let ok1 = b.fifo_nb_write(f1, Expr::var(v));
            b.branch(Expr::var(ok1), took1, try2);
        });
        m.fill_block(took1, |b| {
            b.assign(p1, Expr::var(p1).add(Expr::imm(1)))
                .assign(i, Expr::var(i).add(Expr::imm(1)))
                .jump(head);
        });
        m.fill_block(try2, |b| {
            let ok2 = b.fifo_nb_write(f2, Expr::var(v));
            b.assign(p2, Expr::var(p2).add(Expr::var(ok2)))
                .assign(i, Expr::var(i).add(Expr::var(ok2)))
                .jump(head);
        });
        m.fill_block(finish, |b| {
            // Terminate both processors with a sentinel value.
            b.fifo_write(f1, Expr::imm(-1));
            b.fifo_write(f2, Expr::imm(-1));
            b.output(p1_count, Expr::var(p1));
            b.output(p2_count, Expr::var(p2));
            b.ret();
        });
    });

    let mut processor =
        |name: &'static str, fifo: omnisim_ir::FifoId, sum_out: omnisim_ir::OutputId, ii: u64| {
            d.function(name, move |m| {
                let acc = m.var("acc");
                m.entry(|b| {
                    b.assign(acc, Expr::imm(0));
                });
                m.loop_block(ii, |b| {
                    let v = b.fifo_read(fifo);
                    let is_done = Expr::var(v).eq(Expr::imm(-1));
                    b.assign(
                        acc,
                        is_done
                            .clone()
                            .select(Expr::var(acc), Expr::var(acc).add(Expr::var(v))),
                    );
                    b.exit_loop_if(is_done);
                });
                m.exit(|b| {
                    b.output(sum_out, Expr::var(acc));
                });
            })
        };
    let p1 = processor("processor1", f1, sum_p1, 5);
    let p2 = processor("processor2", f2, sum_p2, 2);
    d.dataflow_top("top", [controller, p1, p2]);
    d.build().expect("fig4_ex5 is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::{classify, DesignClass};

    #[test]
    fn all_fig4_designs_validate() {
        for design in [
            ex2(32),
            ex3(32),
            ex4a(32),
            ex4a_done(32),
            ex4b(32),
            ex4b_done(32),
            ex5(32),
        ] {
            assert!(design.modules.len() >= 3);
            assert!(!design.fifos.is_empty());
        }
    }

    #[test]
    fn classes_match_the_paper_labels() {
        assert_eq!(classify(&ex2(16)).class, DesignClass::TypeB);
        assert_eq!(classify(&ex3(16)).class, DesignClass::TypeB);
        assert_eq!(classify(&ex4a(16)).class, DesignClass::TypeC);
        assert_eq!(classify(&ex4a_done(16)).class, DesignClass::TypeC);
        assert_eq!(classify(&ex4b(16)).class, DesignClass::TypeC);
        assert_eq!(classify(&ex4b_done(16)).class, DesignClass::TypeC);
        assert_eq!(classify(&ex5(16)).class, DesignClass::TypeC);
    }

    #[test]
    fn ex3_is_cyclic_and_blocking_only() {
        let report = classify(&ex3(16));
        assert!(report.cyclic_dataflow);
        assert!(!report.uses_nonblocking);
        assert_eq!(report.access_style(), "B");
    }

    #[test]
    fn ex5_uses_two_fifos_and_four_outputs() {
        let design = ex5(16);
        assert_eq!(design.fifos.len(), 2);
        assert_eq!(design.outputs.len(), 4);
        assert_eq!(design.dataflow_tasks().len(), 3);
    }
}
