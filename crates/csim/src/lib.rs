//! # omnisim-csim
//!
//! A faithful model of what commercial HLS *C simulation* does with dataflow
//! designs: execute the tasks **sequentially, in declaration order**, with
//! unbounded FIFOs and no notion of hardware time.
//!
//! This is exactly the behaviour the paper's Table 3 documents and that the
//! Vitis / Catapult manuals warn about:
//!
//! * non-blocking writes always "succeed" (streams are infinite during C sim),
//! * non-blocking reads simply check the current software-visible contents,
//! * reading an empty stream returns a default value and prints a
//!   `read while empty` warning,
//! * streams holding data at the end of simulation produce a
//!   `leftover data` warning,
//! * producers that poll for a "done" signal written by a later task run off
//!   the end of their input arrays and crash (the `SIGSEGV` rows of Table 3),
//! * and no cycle counts are produced at all.
//!
//! The point of this crate is to *reproduce the failure modes*, so that the
//! Table 3 comparison (C-sim vs reference vs OmniSim) can be regenerated.
//!
//! ## Via the unified API
//!
//! [`CsimBackend`] exposes this crate through the workspace-wide
//! [`omnisim_api::Simulator`] trait; note the missing cycle count — C
//! simulation has no notion of hardware time:
//!
//! ```
//! use omnisim_api::Simulator;
//! use omnisim_csim::CsimBackend;
//! use omnisim_ir::{DesignBuilder, Expr};
//!
//! let mut d = DesignBuilder::new("pc");
//! let out = d.output("sum");
//! let q = d.fifo("q", 2);
//! let p = d.function("p", |m| {
//!     m.counted_loop("i", 4, 1, |b| {
//!         let i = b.var_expr("i");
//!         b.fifo_write(q, i.add(Expr::imm(1)));
//!     });
//! });
//! let c = d.function("c", |m| {
//!     let acc = m.var("acc");
//!     m.entry(|b| { b.assign(acc, Expr::imm(0)); });
//!     m.counted_loop("i", 4, 1, |b| {
//!         let v = b.fifo_read(q);
//!         b.assign(acc, Expr::var(acc).add(Expr::var(v)));
//!     });
//!     m.exit(|b| { b.output(out, Expr::var(acc)); });
//! });
//! d.dataflow_top("top", [p, c]);
//! let design = d.build().unwrap();
//!
//! let backend = CsimBackend::default();
//! assert!(!backend.capabilities().cycle_accurate);
//! let report = backend.simulate(&design).unwrap();
//! assert!(report.outcome.is_completed());
//! assert_eq!(report.output("sum"), Some(10));
//! assert_eq!(report.total_cycles, None, "C sim produces no cycle counts");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use omnisim_api::{
    Capabilities, CompiledSim, RunConfig, RunPath, SimFailure, SimOutcome, SimReport, SimTimings,
    Simulator,
};
use omnisim_codec::{frame, unframe, ByteReader, ByteWriter, CodecError};
use omnisim_interp::{Interpreter, SimBackend, SimError};
use omnisim_ir::design::OutputMap;
use omnisim_ir::schedule::BlockSchedule;
use omnisim_ir::{ArrayId, AxiId, BlockId, Design, FifoId, ModuleId, OutputId};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How a C simulation run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsimOutcome {
    /// All tasks ran to completion (which does **not** imply the results are
    /// hardware-accurate).
    Completed,
    /// The simulation crashed, e.g. with an out-of-bounds array access
    /// (reported as `SIGSEGV` in the paper) or a runaway loop.
    Crashed {
        /// The underlying error.
        error: SimError,
        /// Index of the task (in declaration order) that crashed.
        task_index: usize,
    },
}

impl CsimOutcome {
    /// True if the run completed without crashing.
    pub fn is_completed(&self) -> bool {
        matches!(self, CsimOutcome::Completed)
    }

    /// A short human-readable description, styled after the tool output
    /// quoted in Table 3.
    pub fn describe(&self) -> String {
        match self {
            CsimOutcome::Completed => "completed".to_owned(),
            CsimOutcome::Crashed { error, .. } => match error {
                SimError::ArrayOutOfBounds { .. } => "@E Simulation failed: SIGSEGV.".to_owned(),
                SimError::OutOfFuel { .. } => {
                    "@E Simulation failed: did not terminate (killed).".to_owned()
                }
                other => format!("@E Simulation failed: {other}."),
            },
        }
    }
}

/// Result of a C simulation run.
#[derive(Debug, Clone)]
pub struct CsimReport {
    /// How the run ended.
    pub outcome: CsimOutcome,
    /// Outputs written before the run ended.
    pub outputs: OutputMap,
    /// Warning messages and how often each occurred (`read while empty`,
    /// `leftover data`, …).
    pub warnings: BTreeMap<String, usize>,
    /// Host wall-clock time of the run.
    pub wall_time: Duration,
}

impl CsimReport {
    /// Convenience accessor: value of a named output, if written.
    pub fn output(&self, name: &str) -> Option<i64> {
        self.outputs.get(name).copied()
    }

    /// Total number of warnings emitted.
    pub fn warning_count(&self) -> usize {
        self.warnings.values().sum()
    }
}

/// Configuration for C simulation.
#[derive(Debug, Clone, Copy)]
pub struct CsimConfig {
    /// Operation budget before the run is declared non-terminating.
    pub fuel: u64,
}

impl Default for CsimConfig {
    fn default() -> Self {
        CsimConfig { fuel: 20_000_000 }
    }
}

/// Runs naive sequential C simulation of a design with default settings.
pub fn simulate(design: &Design) -> CsimReport {
    simulate_with_config(design, CsimConfig::default())
}

/// Runs naive sequential C simulation with an explicit configuration.
pub fn simulate_with_config(design: &Design, config: CsimConfig) -> CsimReport {
    let started = Instant::now();
    let mut backend = SeqBackend::new(design);
    let mut interp = Interpreter::with_fuel(design, config.fuel);
    let mut outcome = CsimOutcome::Completed;

    for (index, task) in design.dataflow_tasks().into_iter().enumerate() {
        if let Err(error) = interp.run_module(task, &[], &mut backend) {
            outcome = CsimOutcome::Crashed {
                error,
                task_index: index,
            };
            break;
        }
    }

    // Leftover-data warnings, mirroring `Hls::stream … contains leftover data`.
    for (idx, fifo) in backend.fifos.iter().enumerate() {
        if !fifo.is_empty() {
            let name = &design.fifos[idx].name;
            *backend
                .warnings
                .entry(format!("Hls::stream '{name}' contains leftover data"))
                .or_insert(0) += 1;
        }
    }

    CsimReport {
        outcome,
        outputs: backend.outputs,
        warnings: backend.warnings,
        wall_time: started.elapsed(),
    }
}

/// Naive sequential C simulation as a unified [`Simulator`] backend.
///
/// The capability matrix is all-false on purpose: the backend exists to
/// reproduce what commercial C simulation gets *wrong* on Type B/C designs,
/// so cross-backend harnesses must not trust its results there.
#[derive(Debug, Default, Clone, Copy)]
pub struct CsimBackend {
    /// Configuration used for every run.
    pub config: CsimConfig,
}

impl CsimBackend {
    /// Creates a backend with an explicit configuration.
    pub fn with_config(config: CsimConfig) -> Self {
        CsimBackend { config }
    }
}

impl Simulator for CsimBackend {
    fn name(&self) -> &'static str {
        "csim"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            cycle_accurate: false,
            handles_type_b: false,
            handles_type_c: false,
            produces_timings: false,
            incremental_dse: false,
            compiled_dse: false,
            compiled_run: true,
            serializable_artifact: true,
        }
    }

    fn compile(&self, design: &Design) -> Result<Box<dyn CompiledSim>, SimFailure> {
        let started = Instant::now();
        let cached = simulate_with_config(design, self.config);
        let execution = started.elapsed();
        Ok(Box::new(CompiledCsim {
            design: design.clone(),
            config: self.config,
            cached,
            compile_timings: SimTimings {
                execution,
                ..SimTimings::default()
            },
            replays: AtomicU64::new(0),
            reexecutions: AtomicU64::new(0),
        }))
    }

    fn simulate(&self, design: &Design) -> Result<SimReport, SimFailure> {
        Ok(simulate_with_config(design, self.config).into())
    }

    fn decode_artifact(
        &self,
        design: &Design,
        bytes: &[u8],
    ) -> Result<Box<dyn CompiledSim>, SimFailure> {
        decode_compiled(design, bytes)
            .map(|compiled| Box::new(compiled) as Box<dyn CompiledSim>)
            .map_err(|error| {
                SimFailure::internal("csim", format!("artifact decode failed: {error}"))
            })
    }
}

/// Magic bytes of an encoded C-simulation artifact.
pub const CSIM_MAGIC: [u8; 4] = *b"OSAC";
/// Current C-simulation artifact encoding version.
pub const CSIM_VERSION: u16 = 1;

/// Encodes a compiled C-simulation artifact: the configuration plus the
/// cached functional evaluation the runs replay. Host wall-clock times are
/// excluded; a decoded artifact reports zeroed timings.
///
/// Unknown future [`SimError`] variants (the enum is `non_exhaustive`)
/// degrade to [`SimError::Aborted`] carrying the display string, preserving
/// the user-visible diagnosis.
pub fn encode_compiled(compiled: &CompiledCsim) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(256);
    w.str(&compiled.design.name);
    w.u64(compiled.config.fuel);
    match &compiled.cached.outcome {
        CsimOutcome::Completed => w.u8(0),
        CsimOutcome::Crashed { error, task_index } => {
            w.u8(1);
            write_sim_error(&mut w, error);
            w.usize(*task_index);
        }
    }
    w.seq(compiled.cached.outputs.iter(), |w, (name, &value)| {
        w.str(name);
        w.i64(value);
    });
    w.seq(compiled.cached.warnings.iter(), |w, (message, &count)| {
        w.str(message);
        w.usize(count);
    });
    frame(CSIM_MAGIC, CSIM_VERSION, &w.into_bytes())
}

/// Decodes an artifact encoded by [`encode_compiled`] against the design it
/// was compiled from.
///
/// # Errors
///
/// Any [`CodecError`]; an artifact naming a different design surfaces as
/// [`CodecError::Invalid`].
pub fn decode_compiled(design: &Design, bytes: &[u8]) -> Result<CompiledCsim, CodecError> {
    let payload = unframe(CSIM_MAGIC, CSIM_VERSION, bytes)?;
    let mut r = ByteReader::new(payload);
    let design_name = r.str()?;
    if design_name != design.name {
        return Err(CodecError::Invalid(format!(
            "artifact belongs to design '{design_name}', not '{}'",
            design.name
        )));
    }
    let config = CsimConfig { fuel: r.u64()? };
    let outcome = match r.u8()? {
        0 => CsimOutcome::Completed,
        1 => {
            let error = read_sim_error(&mut r)?;
            let task_index = r.usize()?;
            CsimOutcome::Crashed { error, task_index }
        }
        tag => return Err(CodecError::Invalid(format!("outcome tag {tag}"))),
    };
    let mut outputs = OutputMap::new();
    for _ in 0..r.len()? {
        let name = r.str()?;
        let value = r.i64()?;
        outputs.insert(name, value);
    }
    let mut warnings = BTreeMap::new();
    for _ in 0..r.len()? {
        let message = r.str()?;
        let count = r.usize()?;
        warnings.insert(message, count);
    }
    r.finish()?;
    Ok(CompiledCsim {
        design: design.clone(),
        config,
        cached: CsimReport {
            outcome,
            outputs,
            warnings,
            wall_time: Duration::ZERO,
        },
        compile_timings: SimTimings::default(),
        replays: AtomicU64::new(0),
        reexecutions: AtomicU64::new(0),
    })
}

fn write_sim_error(w: &mut ByteWriter, error: &SimError) {
    match error {
        SimError::ArrayOutOfBounds { array, index, len } => {
            w.u8(0);
            w.u32(array.0);
            w.i64(*index);
            w.usize(*len);
        }
        SimError::OutOfFuel { module } => {
            w.u8(1);
            w.u32(module.0);
        }
        SimError::Deadlock { detail } => {
            w.u8(2);
            w.str(detail);
        }
        SimError::AxiProtocolViolation { detail } => {
            w.u8(3);
            w.str(detail);
        }
        SimError::ReadWhileEmpty { fifo } => {
            w.u8(4);
            w.u32(fifo.0);
        }
        SimError::Aborted { reason } => {
            w.u8(5);
            w.str(reason);
        }
        other => {
            w.u8(5);
            w.str(&other.to_string());
        }
    }
}

fn read_sim_error(r: &mut ByteReader<'_>) -> Result<SimError, CodecError> {
    Ok(match r.u8()? {
        0 => SimError::ArrayOutOfBounds {
            array: ArrayId(r.u32()?),
            index: r.i64()?,
            len: r.usize()?,
        },
        1 => SimError::OutOfFuel {
            module: ModuleId(r.u32()?),
        },
        2 => SimError::Deadlock { detail: r.str()? },
        3 => SimError::AxiProtocolViolation { detail: r.str()? },
        4 => SimError::ReadWhileEmpty {
            fifo: FifoId(r.u32()?),
        },
        5 => SimError::Aborted { reason: r.str()? },
        tag => return Err(CodecError::Invalid(format!("sim error tag {tag}"))),
    })
}

/// C simulation compiled for repeated runs.
///
/// C simulation is deterministic, untimed and depth-insensitive (streams
/// are unbounded), so the whole functional evaluation happens once at
/// compile time and every [`CompiledSim::run`] replays the cached
/// [`CsimReport`]. The only [`RunConfig`] knob that can change the result
/// is `fuel` (a smaller budget can turn a completing run into a
/// non-terminating one); a run with a different fuel budget re-executes.
#[derive(Debug)]
pub struct CompiledCsim {
    design: Design,
    config: CsimConfig,
    cached: CsimReport,
    compile_timings: SimTimings,
    // Which path answered each run — scraped by the serving tier through
    // `CompiledSim::counters`.
    replays: AtomicU64,
    reexecutions: AtomicU64,
}

impl CompiledCsim {
    /// The cached functional evaluation the runs replay.
    pub fn cached(&self) -> &CsimReport {
        &self.cached
    }
}

impl CompiledSim for CompiledCsim {
    fn backend(&self) -> &'static str {
        "csim"
    }

    fn design_name(&self) -> &str {
        &self.design.name
    }

    fn compile_timings(&self) -> SimTimings {
        self.compile_timings
    }

    fn run(&self, config: &RunConfig) -> Result<SimReport, SimFailure> {
        let started = Instant::now();
        let (mut unified, path): (SimReport, RunPath) = match config.fuel {
            Some(fuel) if fuel != self.config.fuel => {
                self.reexecutions.fetch_add(1, Ordering::Relaxed);
                (
                    simulate_with_config(&self.design, CsimConfig { fuel }).into(),
                    RunPath("reexecution"),
                )
            }
            _ => {
                self.replays.fetch_add(1, Ordering::Relaxed);
                (self.cached.clone().into(), RunPath("cached_replay"))
            }
        };
        unified.extras.insert(path);
        // The evaluation cost lives in the compile timings (or, for a
        // fuel-override re-execution, in the elapsed time measured here);
        // either way this run's report covers only its own work.
        unified.timings = SimTimings {
            execution: started.elapsed(),
            ..SimTimings::default()
        };
        Ok(unified)
    }

    fn encode(&self) -> Option<Vec<u8>> {
        Some(encode_compiled(self))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("cached_replays", self.replays.load(Ordering::Relaxed)),
            ("reexecutions", self.reexecutions.load(Ordering::Relaxed)),
        ]
    }
}

impl From<CsimOutcome> for SimOutcome {
    fn from(outcome: CsimOutcome) -> SimOutcome {
        match &outcome {
            CsimOutcome::Completed => SimOutcome::Completed,
            CsimOutcome::Crashed { .. } => SimOutcome::Crashed {
                reason: outcome.describe(),
            },
        }
    }
}

impl From<CsimReport> for SimReport {
    fn from(report: CsimReport) -> SimReport {
        let mut unified = SimReport::new("csim", report.outcome.clone().into());
        unified.outputs = report.outputs.clone();
        unified.warnings = report.warnings.clone();
        unified.timings.execution = report.wall_time;
        unified.extras.insert(report);
        unified
    }
}

/// The untimed, infinite-depth FIFO backend used by C simulation.
#[derive(Debug)]
struct SeqBackend<'d> {
    design: &'d Design,
    fifos: Vec<VecDeque<i64>>,
    arrays: Vec<Vec<i64>>,
    axi_read_queues: Vec<VecDeque<i64>>,
    axi_write_cursors: Vec<Option<(i64, i64)>>,
    outputs: OutputMap,
    warnings: BTreeMap<String, usize>,
}

impl<'d> SeqBackend<'d> {
    fn new(design: &'d Design) -> Self {
        SeqBackend {
            design,
            fifos: vec![VecDeque::new(); design.fifos.len()],
            arrays: design.arrays.iter().map(|a| a.init.clone()).collect(),
            axi_read_queues: vec![VecDeque::new(); design.axi_ports.len()],
            axi_write_cursors: vec![None; design.axi_ports.len()],
            outputs: OutputMap::new(),
            warnings: BTreeMap::new(),
        }
    }

    fn warn(&mut self, message: String) {
        *self.warnings.entry(message).or_insert(0) += 1;
    }
}

impl SimBackend for SeqBackend<'_> {
    fn block_start(
        &mut self,
        _module: ModuleId,
        _block: BlockId,
        _schedule: BlockSchedule,
        _back_edge: bool,
    ) -> Result<(), SimError> {
        Ok(())
    }

    fn fifo_read(&mut self, fifo: FifoId, _offset: u64) -> Result<i64, SimError> {
        match self.fifos[fifo.index()].pop_front() {
            Some(v) => Ok(v),
            None => {
                let name = &self.design.fifos[fifo.index()].name;
                self.warn(format!("Hls::stream '{name}' is read while empty"));
                Ok(0)
            }
        }
    }

    fn fifo_write(&mut self, fifo: FifoId, value: i64, _offset: u64) -> Result<(), SimError> {
        self.fifos[fifo.index()].push_back(value);
        Ok(())
    }

    fn fifo_nb_read(&mut self, fifo: FifoId, _offset: u64) -> Result<Option<i64>, SimError> {
        Ok(self.fifos[fifo.index()].pop_front())
    }

    fn fifo_nb_write(&mut self, fifo: FifoId, value: i64, _offset: u64) -> Result<bool, SimError> {
        // During C simulation streams are infinite, so a non-blocking write
        // can never observe a full FIFO — the root cause of the wrong
        // results in Table 3.
        self.fifos[fifo.index()].push_back(value);
        Ok(true)
    }

    fn fifo_empty(&mut self, fifo: FifoId, _offset: u64) -> Result<bool, SimError> {
        Ok(self.fifos[fifo.index()].is_empty())
    }

    fn fifo_full(&mut self, _fifo: FifoId, _offset: u64) -> Result<bool, SimError> {
        Ok(false)
    }

    fn array_load(&mut self, array: ArrayId, index: i64) -> Result<i64, SimError> {
        let data = &self.arrays[array.index()];
        usize::try_from(index)
            .ok()
            .and_then(|i| data.get(i).copied())
            .ok_or(SimError::ArrayOutOfBounds {
                array,
                index,
                len: data.len(),
            })
    }

    fn array_store(&mut self, array: ArrayId, index: i64, value: i64) -> Result<(), SimError> {
        let data = &mut self.arrays[array.index()];
        let len = data.len();
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| data.get_mut(i))
            .ok_or(SimError::ArrayOutOfBounds { array, index, len })?;
        *slot = value;
        Ok(())
    }

    fn axi_read_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        len: i64,
        _offset: u64,
    ) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let data = &self.arrays[port.array.index()];
        for beat in 0..len {
            let idx = addr + beat;
            let value = usize::try_from(idx)
                .ok()
                .and_then(|i| data.get(i).copied())
                .ok_or(SimError::ArrayOutOfBounds {
                    array: port.array,
                    index: idx,
                    len: data.len(),
                })?;
            self.axi_read_queues[bus.index()].push_back(value);
        }
        Ok(())
    }

    fn axi_read(&mut self, bus: AxiId, _offset: u64) -> Result<i64, SimError> {
        self.axi_read_queues[bus.index()]
            .pop_front()
            .ok_or_else(|| SimError::AxiProtocolViolation {
                detail: "axi read beat without outstanding request".to_owned(),
            })
    }

    fn axi_write_req(
        &mut self,
        bus: AxiId,
        addr: i64,
        _len: i64,
        _offset: u64,
    ) -> Result<(), SimError> {
        self.axi_write_cursors[bus.index()] = Some((addr, 0));
        Ok(())
    }

    fn axi_write(&mut self, bus: AxiId, value: i64, _offset: u64) -> Result<(), SimError> {
        let port = self.design.axi_port(bus);
        let (addr, done) =
            self.axi_write_cursors[bus.index()].ok_or_else(|| SimError::AxiProtocolViolation {
                detail: "axi write beat without outstanding request".to_owned(),
            })?;
        let idx = addr + done;
        let data = &mut self.arrays[port.array.index()];
        let len = data.len();
        let slot = usize::try_from(idx)
            .ok()
            .and_then(|i| data.get_mut(i))
            .ok_or(SimError::ArrayOutOfBounds {
                array: port.array,
                index: idx,
                len,
            })?;
        *slot = value;
        self.axi_write_cursors[bus.index()] = Some((addr, done + 1));
        Ok(())
    }

    fn axi_write_resp(&mut self, _bus: AxiId, _offset: u64) -> Result<(), SimError> {
        Ok(())
    }

    fn output(&mut self, output: OutputId, value: i64) -> Result<(), SimError> {
        self.outputs
            .insert(self.design.output_name(output).to_owned(), value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::{DesignBuilder, Expr};

    #[test]
    fn type_a_design_completes_with_correct_outputs() {
        let mut d = DesignBuilder::new("pc");
        let data = d.array("data", (1..=10).collect::<Vec<i64>>());
        let out = d.output("sum");
        let q = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.counted_loop("i", 10, 1, |b| {
                let i = b.var_expr("i");
                let v = b.array_load(data, i);
                b.fifo_write(q, Expr::var(v));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 10, 1, |b| {
                let v = b.fifo_read(q);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().unwrap();
        let report = simulate(&design);
        assert!(report.outcome.is_completed());
        assert_eq!(report.output("sum"), Some(55));
        assert_eq!(report.warning_count(), 0);
    }

    #[test]
    fn consumer_declared_first_warns_and_reads_zero() {
        // Cyclic-looking declaration order: the consumer runs before the
        // producer, so every read hits an empty stream.
        let mut d = DesignBuilder::new("warn");
        let out = d.output("sum");
        let q = d.fifo("q", 2);
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 5, 1, |b| {
                let v = b.fifo_read(q);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        let p = d.function("p", |m| {
            m.counted_loop("i", 5, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(q, i.add(Expr::imm(1)));
            });
        });
        d.dataflow_top("top", [c, p]);
        let design = d.build().unwrap();
        let report = simulate(&design);
        assert!(report.outcome.is_completed());
        assert_eq!(report.output("sum"), Some(0), "reads returned zero");
        // 5 read-while-empty warnings plus one leftover-data warning.
        assert_eq!(report.warning_count(), 6);
        assert!(report
            .warnings
            .keys()
            .any(|w| w.contains("read while empty")));
        assert!(report.warnings.keys().any(|w| w.contains("leftover data")));
    }

    #[test]
    fn done_signal_polling_producer_crashes_with_sigsegv() {
        // Fig. 4 Ex. 2-style: producer loops forever writing data[i] until a
        // done signal arrives; under sequential C sim the consumer never runs
        // so the producer runs off the end of `data`.
        let mut d = DesignBuilder::new("crash");
        let data = d.array("data", (0..16).collect::<Vec<i64>>());
        let out = d.output("sum");
        let q = d.fifo("q", 2);
        let done = d.fifo("done", 1);
        let p = d.function("p", |m| {
            let i = m.var("i");
            m.entry(|b| {
                b.assign(i, Expr::imm(0));
            });
            m.loop_block(1, |b| {
                let iv = Expr::var(b.var("i"));
                let v = b.array_load(data, iv.clone());
                let ok = b.fifo_nb_write(q, Expr::var(v));
                b.assign(i, Expr::var(ok).select(iv.clone().add(Expr::imm(1)), iv));
                let (_d, got_done) = b.fifo_nb_read(done);
                b.exit_loop_if(Expr::var(got_done));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 16, 1, |b| {
                let v = b.fifo_read(q);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
                b.fifo_write(done, Expr::imm(1));
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().unwrap();
        let report = simulate(&design);
        assert!(!report.outcome.is_completed());
        assert!(report.outcome.describe().contains("SIGSEGV"));
        assert_eq!(report.output("sum"), None, "consumer never ran");
    }

    #[test]
    fn compiled_sessions_replay_the_cached_evaluation() {
        let mut d = DesignBuilder::new("pc");
        let out = d.output("sum");
        let q = d.fifo("q", 2);
        let p = d.function("p", |m| {
            m.counted_loop("i", 6, 1, |b| {
                let i = b.var_expr("i");
                b.fifo_write(q, i.add(Expr::imm(1)));
            });
        });
        let c = d.function("c", |m| {
            let acc = m.var("acc");
            m.entry(|b| {
                b.assign(acc, Expr::imm(0));
            });
            m.counted_loop("i", 6, 1, |b| {
                let v = b.fifo_read(q);
                b.assign(acc, Expr::var(acc).add(Expr::var(v)));
            });
            m.exit(|b| {
                b.output(out, Expr::var(acc));
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().unwrap();

        let backend = CsimBackend::default();
        let one_shot = backend.simulate(&design).unwrap();
        let compiled = backend.compile(&design).unwrap();
        for _ in 0..2 {
            let run = compiled.run(&RunConfig::default()).unwrap();
            assert_eq!(run.outcome, one_shot.outcome);
            assert_eq!(run.outputs, one_shot.outputs);
            assert_eq!(run.warnings, one_shot.warnings);
            assert_eq!(run.total_cycles, None, "C sim stays untimed in sessions");
        }
        // Depth overrides cannot change C-sim results; they are ignored.
        let overridden = compiled
            .run(&RunConfig::new().with_fifo_depths([1usize]))
            .unwrap();
        assert_eq!(overridden.outputs, one_shot.outputs);
        // A starving fuel budget re-executes and kills the run.
        let starved = compiled.run(&RunConfig::new().with_fuel(3)).unwrap();
        assert!(starved.outcome.is_crashed());
    }

    #[test]
    fn nb_writes_always_succeed_giving_wrong_drop_counts() {
        // Fig. 4 Ex. 4b-style: the drop counter should be non-zero in real
        // hardware, but C sim reports zero because streams are infinite.
        let mut d = DesignBuilder::new("drops");
        let q = d.fifo("q", 1);
        let dropped = d.output("dropped");
        let p = d.function("p", |m| {
            let n = m.var("n");
            m.entry(|b| {
                b.assign(n, Expr::imm(0));
            });
            m.counted_loop("i", 32, 1, |b| {
                let i = b.var_expr("i");
                let ok = b.fifo_nb_write(q, i);
                b.assign(
                    n,
                    Expr::var(ok).select(Expr::var(n), Expr::var(n).add(Expr::imm(1))),
                );
            });
            m.exit(|b| {
                b.output(dropped, Expr::var(n));
            });
        });
        let c = d.function("c", |m| {
            m.counted_loop("i", 32, 4, |b| {
                let (_v, _ok) = b.fifo_nb_read(q);
            });
        });
        d.dataflow_top("top", [p, c]);
        let design = d.build().unwrap();
        let report = simulate(&design);
        assert!(report.outcome.is_completed());
        assert_eq!(
            report.output("dropped"),
            Some(0),
            "C sim believes nothing was dropped"
        );
    }
}
