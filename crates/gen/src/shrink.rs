//! Greedy test-case shrinking over [`Blueprint`]s.
//!
//! Given a failing blueprint and a predicate that reproduces the failure,
//! [`shrink`] repeatedly tries structural simplifications — drop a task,
//! drop an edge, reduce the token count, flatten depths, downgrade access
//! kinds, strip scheduling noise, and peel the orthogonal dimensions (drop
//! an AXI plan, shorten or unwrap a call chain, flatten a rate, zero a
//! surplus) — keeping a candidate only when the predicate still holds on
//! it. Each dimension shrinks independently, so a failure that needs only
//! one of them minimizes to a witness carrying exactly that one. Every
//! accepted candidate strictly decreases [`Blueprint::size`], so shrinking
//! always terminates, and because the predicate is re-evaluated on the
//! *lowered design* of every candidate, the result is sound by
//! construction: the minimized blueprint still fails.

use crate::blueprint::{AxiRole, Blueprint, EdgeKind};

/// Minimizes `blueprint` while `interesting` keeps returning true.
///
/// `interesting` receives candidate blueprints (all well-formed) and must
/// return true when the candidate still reproduces the failure being
/// investigated. The input blueprint itself must be interesting; if it is
/// not, it is returned unchanged.
pub fn shrink(blueprint: &Blueprint, mut interesting: impl FnMut(&Blueprint) -> bool) -> Blueprint {
    if !interesting(blueprint) {
        return blueprint.clone();
    }
    let mut current = blueprint.clone();
    // `size` strictly decreases on every accepted step, so the loop is
    // bounded by the initial size; the explicit cap is belt and braces.
    for _round in 0..100_000 {
        let before = current.size();
        let next = candidates(&current).into_iter().find(|c| {
            debug_assert_eq!(c.well_formed(), Ok(()));
            debug_assert!(c.size() < before, "shrink candidates must shrink");
            interesting(c)
        });
        match next {
            Some(c) => current = c,
            None => break,
        }
    }
    current
}

/// Every one-step simplification of `blueprint`, smallest-impact candidates
/// last so the greedy search takes big structural steps first.
fn candidates(bp: &Blueprint) -> Vec<Blueprint> {
    let mut out = Vec::new();

    // 1. Drop a task (and every edge touching it).
    if bp.tasks.len() > 1 {
        for t in 0..bp.tasks.len() {
            let mut c = bp.clone();
            c.tasks.remove(t);
            c.edges.retain(|e| e.src != t && e.dst != t);
            for e in &mut c.edges {
                if e.src > t {
                    e.src -= 1;
                }
                if e.dst > t {
                    e.dst -= 1;
                }
            }
            out.push(c);
        }
    }

    // 2. Drop an edge.
    for i in 0..bp.edges.len() {
        let mut c = bp.clone();
        c.edges.remove(i);
        out.push(c);
    }

    // 3. Reduce the token count.
    if bp.tokens > 1 {
        let mut one = bp.clone();
        one.tokens = 1;
        out.push(one);
        if bp.tokens > 2 {
            let mut half = bp.clone();
            half.tokens = bp.tokens / 2;
            out.push(half);
        }
        let mut minus = bp.clone();
        minus.tokens = bp.tokens - 1;
        out.push(minus);
    }

    // 3b. Flatten every rate at once (response cycles require equal rates
    // on both endpoints, so per-task flattening alone cannot cross them;
    // this also unblocks the token-count shrinks above).
    if bp.tasks.iter().any(|t| t.rate > 1) {
        let mut c = bp.clone();
        for t in &mut c.tasks {
            t.rate = 1;
        }
        out.push(c);
    }

    // 4. Downgrade an edge kind (strictly lighter kinds only).
    for i in 0..bp.edges.len() {
        let kind = bp.edges[i].kind;
        let mut downgrades: Vec<EdgeKind> = Vec::new();
        match kind {
            EdgeKind::NbDrop { counted: true } => {
                downgrades.push(EdgeKind::NbDrop { counted: false });
                downgrades.push(EdgeKind::Blocking);
            }
            EdgeKind::NbDrop { counted: false } => downgrades.push(EdgeKind::Blocking),
            EdgeKind::Response { deadlock: true } => {
                downgrades.push(EdgeKind::Response { deadlock: false })
            }
            // NbRetry sources sit *after* their consumer in declaration
            // order, so the edge cannot become a forward Blocking edge;
            // dropping it (step 2) is the only simplification.
            EdgeKind::NbRetry | EdgeKind::Response { deadlock: false } | EdgeKind::Blocking => {}
        }
        for kind in downgrades {
            let mut c = bp.clone();
            c.edges[i].kind = kind;
            out.push(c);
        }
    }

    // 5. Flatten a FIFO depth (keeping any surplus writable) or shed the
    // surplus itself.
    for i in 0..bp.edges.len() {
        let surplus = bp.edges[i].surplus;
        if bp.edges[i].depth > 1.max(surplus) {
            let mut c = bp.clone();
            c.edges[i].depth = 1.max(surplus);
            out.push(c);
        }
        if surplus > 0 {
            let mut c = bp.clone();
            c.edges[i].surplus = 0;
            out.push(c);
            if surplus > 1 {
                let mut c = bp.clone();
                c.edges[i].surplus = surplus - 1;
                out.push(c);
            }
        }
    }

    // 6. Strip per-task scheduling and data noise.
    for t in 0..bp.tasks.len() {
        let plan = bp.tasks[t];
        let mut simplify = |f: fn(&mut crate::blueprint::TaskPlan)| {
            let mut c = bp.clone();
            f(&mut c.tasks[t]);
            out.push(c);
        };
        if plan.dynamic_loop {
            simplify(|p| p.dynamic_loop = false);
        }
        if plan.array_source {
            simplify(|p| p.array_source = false);
        }
        if plan.ii > 1 {
            simplify(|p| p.ii = 1);
        }
        if plan.work > 0 {
            simplify(|p| p.work = 0);
        }
        if plan.start != 0 {
            simplify(|p| p.start = 0);
        }
        if plan.coef > 1 {
            simplify(|p| p.coef = 1);
        }

        // 7. Peel the orthogonal dimensions, one knob at a time.
        if plan.rate > 1 {
            simplify(|p| p.rate = 1);
        }
        if plan.call.is_some() {
            simplify(|p| p.call = None);
        }
        if plan.axi.is_some() {
            simplify(|p| p.axi = None);
        }
        if let Some(call) = plan.call {
            if call.depth > 1 {
                let mut c = bp.clone();
                c.tasks[t].call = Some(crate::blueprint::CallPlan {
                    depth: call.depth - 1,
                    ..call
                });
                out.push(c);
            }
            if call.wrap_reads {
                let mut c = bp.clone();
                c.tasks[t].call = Some(crate::blueprint::CallPlan {
                    wrap_reads: false,
                    ..call
                });
                out.push(c);
            }
        }
        if let Some(axi) = plan.axi {
            if axi.latency > 1 {
                let mut c = bp.clone();
                c.tasks[t].axi = Some(crate::blueprint::AxiPlan { latency: 1, ..axi });
                out.push(c);
            }
            if let AxiRole::ReadSource {
                prefetch,
                interleave,
            } = axi.role
            {
                if prefetch > 0 {
                    let mut c = bp.clone();
                    c.tasks[t].axi = Some(crate::blueprint::AxiPlan {
                        role: AxiRole::ReadSource {
                            prefetch: 0,
                            interleave,
                        },
                        ..axi
                    });
                    out.push(c);
                }
                if interleave {
                    let mut c = bp.clone();
                    c.tasks[t].axi = Some(crate::blueprint::AxiPlan {
                        role: AxiRole::ReadSource {
                            prefetch,
                            interleave: false,
                        },
                        ..axi
                    });
                    out.push(c);
                }
            }
        }
    }

    out.retain(|c| c.well_formed().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use crate::generate::generate;
    use omnisim_ir::taxonomy::classify;
    use omnisim_ir::DesignClass;

    #[test]
    fn shrinks_to_a_minimal_type_c_witness() {
        let g = generate(&GenConfig::type_c().with_tasks(4, 6), 7);
        // "Interesting" = the design still classifies as Type C.
        let minimal = shrink(&g.blueprint, |bp| {
            classify(&bp.lower()).class == DesignClass::TypeC
        });
        // Soundness: the shrunk blueprint still satisfies the predicate.
        assert_eq!(classify(&minimal.lower()).class, DesignClass::TypeC);
        // Minimality: nothing bigger than the smallest lossy witness
        // survives: one producer, one consumer, one token, one NB edge.
        assert!(minimal.size() <= g.blueprint.size());
        assert_eq!(minimal.tasks.len(), 2);
        assert_eq!(minimal.edges.len(), 1);
        assert_eq!(minimal.tokens, 1);
        assert!(minimal.edges[0].kind.is_nonblocking());
    }

    #[test]
    fn uninteresting_input_is_returned_unchanged() {
        let g = generate(&GenConfig::type_a(), 3);
        let same = shrink(&g.blueprint, |_| false);
        assert_eq!(same, g.blueprint);
    }

    #[test]
    fn every_candidate_is_well_formed_and_smaller() {
        for seed in 0..24 {
            let g = generate(&GenConfig::mixed(), seed);
            for c in candidates(&g.blueprint) {
                assert_eq!(c.well_formed(), Ok(()), "seed {seed}");
                assert!(c.size() < g.blueprint.size(), "seed {seed}");
            }
        }
    }

    #[test]
    fn shrinking_preserves_a_failing_cycle_structure() {
        let cfg = GenConfig {
            back_edge_percent: 100,
            ..GenConfig::type_b()
        };
        let g = generate(&cfg, 11);
        let minimal = shrink(&g.blueprint, |bp| classify(&bp.lower()).cyclic_dataflow);
        assert!(classify(&minimal.lower()).cyclic_dataflow);
        // A cycle needs two tasks and two edges; the shrinker must reach
        // exactly that skeleton.
        assert_eq!(minimal.tasks.len(), 2);
        assert_eq!(minimal.edges.len(), 2);
    }
}
