//! The shrinkable intermediate form of a generated design.
//!
//! The generator does not emit `omnisim-ir` directly: it first builds a
//! [`Blueprint`] — a compact, structural description of a dataflow design
//! (worker tasks plus typed edges) — and *lowers* it deterministically to a
//! validated [`Design`]. Everything downstream benefits:
//!
//! * **shrinking** operates on the blueprint (drop a task, drop an edge,
//!   halve the token count, simplify an access kind, strip a call chain,
//!   flatten a burst) and re-lowers, so every shrink candidate is
//!   well-formed by construction;
//! * **reproduction** is trivial: a failing case is its blueprint, which is
//!   tiny, printable and committable as a regression fixture;
//! * **taxonomy targeting** is compositional: each [`EdgeKind`] maps onto a
//!   known row of the paper's Type A/B/C taxonomy, and the orthogonal
//!   dimensions (AXI bursts, call chains, multi-rate edges) never change the
//!   class.
//!
//! ## The task protocol
//!
//! Every pipeline edge carries exactly [`Blueprint::tokens`] values. A
//! worker task with rate `r` loops `tokens / r` times; one iteration reads
//! `r` values from every forward in-edge (sub-token `j` at schedule offset
//! `j`), folds them into an accumulator, then writes `r` values to every
//! out-edge. Two tasks with different rates joined by an edge form a
//! *multi-rate* boundary: the totals balance but the pipelines do not,
//! exercising transient backlog on the FIFO. A *surplus* on an edge makes
//! the producer emit `surplus` extra values after its main loop — leftover
//! data that the consumer never drains, which is live exactly when the FIFO
//! is at least `surplus` deep (and makes shallower DSE probes infeasible).
//!
//! Response edges ([`EdgeKind::Response`]) are read at the *end* of an
//! iteration — after the requests have been written — which closes
//! request/response cycles without deadlocking (the controller always
//! leads). Setting the `deadlock` flag moves that read *before* the writes,
//! producing a guaranteed design-level deadlock that both cycle-accurate
//! backends must diagnose identically.
//!
//! [`AxiPlan`] replaces a task's local value source/sink with AXI master
//! bursts (the `axi4_master` shapes): a read source issues one `rate`-beat
//! burst per iteration (optionally prefetching bursts ahead so several
//! transactions are outstanding, optionally interleaving beats with its
//! FIFO writes), a write sink streams its folded values back to memory and
//! awaits the write response, and an isolated read/write task does both.
//! [`CallPlan`] wraps a task's fold (and optionally its blocking reads) in
//! a chain of `Op::Call` sub-functions, exercising the call-timing contract
//! (callee enters one cycle after the call, caller resumes one cycle after
//! the callee's exit) under FIFO and bus stalls.

use crate::rng::Rng;
use omnisim_ir::builder::{BlockBuilder, DesignBuilder};
use omnisim_ir::{ArrayId, AxiId, Design, Expr, FifoId, ModuleId, OutputId};

/// How a dataflow edge accesses its FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Blocking write, blocking read: one token per iteration on both sides
    /// (Type A behaviour).
    Blocking,
    /// The producer is a dedicated source task that retries a non-blocking
    /// write until it succeeds (Fig. 4 Ex. 2). The value sequence does not
    /// depend on the outcomes, so this is a Type B feature. The consumer
    /// side reads blocking.
    NbRetry,
    /// Lossy non-blocking edge: the producer drops the token when the FIFO
    /// is full, the consumer folds only successfully read values. Outcomes
    /// are observable (Fig. 4 Ex. 4), so this is a Type C feature.
    NbDrop {
        /// True: the producer counts its drops (Ex. 4b) and reports them as
        /// an output; false: the success flag is ignored entirely (Ex. 4a).
        counted: bool,
    },
    /// A response edge closing a request/response cycle over an existing
    /// forward edge (Fig. 4 Ex. 3): the controller (`dst`) reads it at the
    /// end of each iteration, after writing its requests. Cyclic dataflow is
    /// a Type B feature.
    Response {
        /// True: the controller reads the response *before* writing the
        /// request, deadlocking the cycle on purpose.
        deadlock: bool,
    },
}

impl EdgeKind {
    /// Structural weight used by the shrinker: simpler kinds weigh less.
    pub(crate) fn weight(self) -> u64 {
        match self {
            EdgeKind::Blocking => 0,
            EdgeKind::Response { deadlock: false } => 1,
            EdgeKind::Response { deadlock: true } | EdgeKind::NbRetry => 2,
            EdgeKind::NbDrop { counted: false } => 2,
            EdgeKind::NbDrop { counted: true } => 3,
        }
    }

    /// True for the non-blocking kinds.
    pub fn is_nonblocking(self) -> bool {
        matches!(self, EdgeKind::NbRetry | EdgeKind::NbDrop { .. })
    }
}

/// One FIFO-backed dataflow edge between two tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePlan {
    /// Producer task index.
    pub src: usize,
    /// Consumer task index.
    pub dst: usize,
    /// FIFO depth (≥ 1).
    pub depth: usize,
    /// Access style.
    pub kind: EdgeKind,
    /// Extra values the producer writes after its main loop (leftover data
    /// the consumer never reads). Blocking edges only; must not exceed
    /// `depth` or the design deadlocks on its own declared sizes.
    pub surplus: usize,
}

impl EdgePlan {
    /// A plain blocking edge with no surplus.
    pub fn blocking(src: usize, dst: usize, depth: usize) -> Self {
        EdgePlan {
            src,
            dst,
            depth,
            kind: EdgeKind::Blocking,
            surplus: 0,
        }
    }
}

/// A chain of `Op::Call` sub-functions wrapped around a task's fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallPlan {
    /// Nesting depth of the chain (1–3 nested calls per invocation).
    pub depth: u8,
    /// True: the task calls into the design's one shared (pure) callee
    /// chain; false: the task gets its own private chain.
    pub shared: bool,
    /// True (private chains only): the innermost callee performs the task's
    /// blocking forward-edge reads, so FIFO stalls surface *inside* the
    /// callee and propagate out through the call-timing contract.
    pub wrap_reads: bool,
}

/// What an AXI-backed task does with its private master port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxiRole {
    /// A source with no forward in-edges: per iteration it issues one
    /// `rate`-beat read burst and streams the beats into its out-edges.
    ReadSource {
        /// Bursts requested ahead of consumption (0–2). With `prefetch > 0`
        /// several transactions are outstanding at once, exercising
        /// per-burst beat pacing.
        prefetch: u8,
        /// True: each beat is consumed and immediately written to the
        /// out-edges (beat, write, beat, write, …) so bus stalls and FIFO
        /// stalls interleave; false: the whole burst is drained first.
        interleave: bool,
    },
    /// A sink with no out-edges: per iteration it issues one `rate`-beat
    /// write burst, fills it with the folded in-edge values, and waits for
    /// the write response.
    WriteSink,
    /// An isolated task (no dataflow edges at all): reads a burst, folds
    /// it, writes the transformed burst back to a disjoint region of the
    /// same port — the `axi4_master` shape.
    ReadWrite,
}

/// An AXI master port attached to one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiPlan {
    /// What the task does with the port.
    pub role: AxiRole,
    /// Request latency of the port (first beat ready `latency` cycles after
    /// the burst request; the write response arrives `latency` cycles after
    /// the last write beat).
    pub latency: u64,
}

/// One worker task of the generated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskPlan {
    /// Loop initiation interval (1..=3 in generated designs, raised to at
    /// least `rate` so same-FIFO accesses of consecutive iterations keep
    /// nondecreasing commit cycles).
    pub ii: u64,
    /// Extra schedule cycles between the reads and the writes of one
    /// iteration (models computation latency).
    pub work: u64,
    /// Accumulator start value.
    pub start: i64,
    /// Mixing coefficient applied to read values and the induction variable.
    pub coef: i64,
    /// True: `while`-style loop with a data-dependent exit; false: counted
    /// `for` loop.
    pub dynamic_loop: bool,
    /// True: a source task streams values from a pre-initialised input array
    /// instead of computing them from the induction variable.
    pub array_source: bool,
    /// True: the task reports its final accumulator as a testbench output.
    pub emits_output: bool,
    /// Tokens consumed from every in-edge (and produced to every out-edge)
    /// per loop iteration. Must divide [`Blueprint::tokens`]; the loop trips
    /// `tokens / rate` times. Doubles as the AXI burst length.
    pub rate: i64,
    /// Optional `Op::Call` chain wrapped around the fold.
    pub call: Option<CallPlan>,
    /// Optional AXI master port replacing the task's value source/sink.
    pub axi: Option<AxiPlan>,
}

impl TaskPlan {
    /// The simplest possible task: counted loop, II = 1, no extra work.
    pub fn minimal() -> Self {
        TaskPlan {
            ii: 1,
            work: 0,
            start: 0,
            coef: 1,
            dynamic_loop: false,
            array_source: false,
            emits_output: true,
            rate: 1,
            call: None,
            axi: None,
        }
    }

    pub(crate) fn weight(&self) -> u64 {
        let call_weight = match self.call {
            Some(c) => 3 + 2 * u64::from(c.depth) + 2 * u64::from(c.wrap_reads),
            None => 0,
        };
        let axi_weight = match self.axi {
            Some(a) => {
                let role = match a.role {
                    AxiRole::ReadSource {
                        prefetch,
                        interleave,
                    } => 2 * u64::from(prefetch) + u64::from(interleave),
                    AxiRole::WriteSink => 1,
                    AxiRole::ReadWrite => 2,
                };
                4 + a.latency + role
            }
            None => 0,
        };
        self.ii
            + self.work
            + self.start.unsigned_abs()
            + self.coef.unsigned_abs()
            + u64::from(self.dynamic_loop)
            + u64::from(self.array_source)
            + 2 * (self.rate.unsigned_abs().saturating_sub(1))
            + call_weight
            + axi_weight
    }
}

/// A complete structural description of one generated design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blueprint {
    /// Design name (carries the generating seed for reproduction).
    pub name: String,
    /// Tokens carried by every pipeline edge (total, across all loop
    /// iterations of both endpoints).
    pub tokens: i64,
    /// Worker tasks; retry sources are ordinary entries whose single edge is
    /// [`EdgeKind::NbRetry`].
    pub tasks: Vec<TaskPlan>,
    /// Dataflow edges; each lowers to its own point-to-point FIFO.
    pub edges: Vec<EdgePlan>,
}

impl Blueprint {
    /// Checks the structural invariants the lowering relies on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn well_formed(&self) -> Result<(), String> {
        if self.tasks.is_empty() {
            return Err("blueprint has no tasks".into());
        }
        if self.tokens < 1 {
            return Err(format!("token count {} must be at least 1", self.tokens));
        }
        for (t, plan) in self.tasks.iter().enumerate() {
            if plan.rate < 1 || plan.rate > 8 {
                return Err(format!("task {t} rate {} out of range 1..=8", plan.rate));
            }
            if self.tokens % plan.rate != 0 {
                return Err(format!(
                    "task {t} rate {} does not divide token count {}",
                    plan.rate, self.tokens
                ));
            }
            if plan.rate > 1 && plan.ii < plan.rate as u64 {
                return Err(format!(
                    "task {t} ii {} below its rate {}: same-FIFO accesses of \
                     consecutive iterations could commit out of order",
                    plan.ii, plan.rate
                ));
            }
            if let Some(call) = plan.call {
                if call.depth == 0 || call.depth > 3 {
                    return Err(format!("task {t} call depth {} out of 1..=3", call.depth));
                }
                if call.wrap_reads && call.shared {
                    return Err(format!(
                        "task {t} wraps reads in a shared callee chain (shared chains are pure)"
                    ));
                }
                if plan.axi.is_some() {
                    return Err(format!("task {t} combines a call chain with an AXI plan"));
                }
                if call.wrap_reads {
                    if !self.edges.iter().any(|e| {
                        e.dst == t && matches!(e.kind, EdgeKind::Blocking | EdgeKind::NbRetry)
                    }) {
                        return Err(format!(
                            "task {t} wraps reads but has no blocking forward in-edge"
                        ));
                    }
                    // A wrapped read moves the FIFO endpoint into the callee
                    // module; the module-level cycle analysis (and the
                    // classifier) would no longer see a response cycle
                    // through this task, so cycle membership is forbidden.
                    if self.edges.iter().any(|e| {
                        matches!(e.kind, EdgeKind::Response { .. }) && (e.src == t || e.dst == t)
                    }) {
                        return Err(format!(
                            "task {t} wraps reads while part of a request/response cycle"
                        ));
                    }
                }
            }
            if let Some(axi) = plan.axi {
                if axi.latency == 0 || axi.latency > 16 {
                    return Err(format!(
                        "task {t} AXI latency {} out of 1..=16",
                        axi.latency
                    ));
                }
                let has_in_fwd = self
                    .edges
                    .iter()
                    .any(|e| e.dst == t && !matches!(e.kind, EdgeKind::Response { .. }));
                let has_out = self.edges.iter().any(|e| e.src == t);
                match axi.role {
                    AxiRole::ReadSource { prefetch, .. } => {
                        if prefetch > 2 {
                            return Err(format!("task {t} AXI prefetch {prefetch} out of 0..=2"));
                        }
                        if has_in_fwd {
                            return Err(format!(
                                "task {t} is an AXI read source but has forward in-edges"
                            ));
                        }
                    }
                    AxiRole::WriteSink => {
                        if has_out {
                            return Err(format!("task {t} is an AXI write sink but has out-edges"));
                        }
                    }
                    AxiRole::ReadWrite => {
                        if has_in_fwd || has_out || self.edges.iter().any(|e| e.dst == t) {
                            return Err(format!(
                                "task {t} is an AXI read/write task but has dataflow edges"
                            ));
                        }
                    }
                }
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.src >= self.tasks.len() || e.dst >= self.tasks.len() {
                return Err(format!("edge {i} references a missing task"));
            }
            if e.src == e.dst {
                return Err(format!("edge {i} is a self-loop"));
            }
            if e.depth == 0 {
                return Err(format!("edge {i} has zero depth"));
            }
            if e.surplus > 0 {
                if e.kind != EdgeKind::Blocking {
                    return Err(format!("edge {i} has surplus on a non-blocking kind"));
                }
                if e.surplus > e.depth {
                    return Err(format!(
                        "edge {i} surplus {} exceeds its depth {}: the leftover data \
                         could never be written",
                        e.surplus, e.depth
                    ));
                }
            }
            match e.kind {
                EdgeKind::Blocking | EdgeKind::NbDrop { .. } => {
                    if e.src > e.dst {
                        return Err(format!(
                            "forward edge {i} must flow from a lower to a higher task index"
                        ));
                    }
                }
                EdgeKind::NbRetry => {
                    let incident = self
                        .edges
                        .iter()
                        .filter(|o| o.src == e.src || o.dst == e.src)
                        .count();
                    if incident != 1 {
                        return Err(format!(
                            "retry source of edge {i} must have exactly one incident edge"
                        ));
                    }
                    if self.tasks[e.src].emits_output {
                        return Err(format!(
                            "retry source of edge {i} must not emit an output \
                             (its state is taint-reachable from the NB outcome)"
                        ));
                    }
                    let src = &self.tasks[e.src];
                    if src.rate != 1 || src.call.is_some() || src.axi.is_some() {
                        return Err(format!(
                            "retry source of edge {i} must stay rate-1 with no call/AXI plan"
                        ));
                    }
                    // Multi-rate reconvergence can deadlock on undersized
                    // FIFOs (a legitimate, diagnosable behaviour) — but a
                    // retry source feeding a deadlocked pipeline spins
                    // forever, a livelock neither backend can diagnose.
                    if self.tasks.iter().any(|t| t.rate > 1) {
                        return Err(format!(
                            "retry source of edge {i} cannot coexist with multi-rate tasks \
                             (an emergent buffering deadlock would starve it into a livelock)"
                        ));
                    }
                }
                EdgeKind::Response { .. } => {
                    // A response edge without its forward partner is just a
                    // backward blocking edge: the design would classify as
                    // Type A (acyclic) while sequential C simulation, which
                    // runs tasks in declaration order, reads it before it is
                    // written — breaking the oracle's "csim exact on Type A"
                    // claim on a design no HLS front end would emit.
                    if !self.edges.iter().any(|f| {
                        f.src == e.dst
                            && f.dst == e.src
                            && f.src < f.dst
                            && !matches!(f.kind, EdgeKind::Response { .. })
                    }) {
                        return Err(format!("response edge {i} has no forward partner edge"));
                    }
                    // Unequal rates across a request/response cycle starve
                    // the slower side mid-iteration: the controller blocks
                    // on responses the responder will only produce after
                    // requests the controller has not issued yet.
                    if self.tasks[e.src].rate != self.tasks[e.dst].rate {
                        return Err(format!(
                            "response edge {i} joins tasks with different rates \
                             ({} vs {}), which deadlocks the cycle",
                            self.tasks[e.src].rate, self.tasks[e.dst].rate
                        ));
                    }
                }
            }
        }
        // A forced deadlock starves every downstream consumer; a retry
        // source feeding such a consumer would spin forever — a livelock
        // that neither cycle-accurate backend can diagnose as a deadlock
        // (OmniSim would burn its fuel, the reference its cycle budget).
        // Keep the two features mutually exclusive.
        if self.has_forced_deadlock() && self.edges.iter().any(|e| e.kind == EdgeKind::NbRetry) {
            return Err(
                "a forced-deadlock response edge cannot coexist with a retry source".into(),
            );
        }
        Ok(())
    }

    /// Total size metric used by the greedy shrinker; every shrink step
    /// strictly decreases it, so shrinking terminates.
    pub fn size(&self) -> u64 {
        let task_weight: u64 = self.tasks.iter().map(TaskPlan::weight).sum();
        let edge_weight: u64 = self
            .edges
            .iter()
            .map(|e| e.depth as u64 + e.kind.weight() + 2 * e.surplus as u64)
            .sum();
        self.tasks.len() as u64 * 1_000
            + self.edges.len() as u64 * 200
            + self.tokens as u64 * 4
            + task_weight
            + edge_weight
    }

    /// True if the blueprint contains a deliberately deadlocked response
    /// cycle.
    pub fn has_forced_deadlock(&self) -> bool {
        self.edges
            .iter()
            .any(|e| e.kind == EdgeKind::Response { deadlock: true })
    }

    /// True if any task carries an [`AxiPlan`].
    pub fn uses_axi(&self) -> bool {
        self.tasks.iter().any(|t| t.axi.is_some())
    }

    /// True if any task carries a [`CallPlan`].
    pub fn uses_calls(&self) -> bool {
        self.tasks.iter().any(|t| t.call.is_some())
    }

    /// True if any edge joins tasks with different rates, any task has a
    /// rate above 1, or any edge carries surplus tokens.
    pub fn is_multirate(&self) -> bool {
        self.tasks.iter().any(|t| t.rate > 1) || self.edges.iter().any(|e| e.surplus > 0)
    }

    /// Lowers the blueprint to a validated design.
    ///
    /// Lowering is deterministic: the same blueprint always produces the
    /// same design, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the blueprint is not [well-formed](Blueprint::well_formed);
    /// the generator and the shrinker only ever construct well-formed
    /// blueprints.
    pub fn lower(&self) -> Design {
        if let Err(e) = self.well_formed() {
            panic!("cannot lower a malformed blueprint: {e}");
        }
        let mut d = DesignBuilder::new(self.name.clone());
        let n = self.tokens;

        let fifos: Vec<FifoId> = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| d.fifo(format!("e{i}_{}to{}", e.src, e.dst), e.depth))
            .collect();

        // A task is a retry source iff its single edge is an NbRetry edge it
        // produces.
        let retry_out = |t: usize| {
            self.edges
                .iter()
                .position(|e| e.kind == EdgeKind::NbRetry && e.src == t)
        };

        // Source arrays for array-streaming tasks (deterministic contents).
        let arrays: Vec<Option<ArrayId>> = (0..self.tasks.len())
            .map(|t| {
                let is_source = !self
                    .edges
                    .iter()
                    .any(|e| e.dst == t && !matches!(e.kind, EdgeKind::Response { .. }));
                (is_source && self.tasks[t].array_source && self.tasks[t].axi.is_none()).then(
                    || {
                        let init: Vec<i64> =
                            (0..n).map(|i| (i * 31 + t as i64 * 17 + 5) % 97).collect();
                        d.array(format!("src{t}"), init)
                    },
                )
            })
            .collect();

        // One private AXI port (plus backing memory) per AXI task.
        let axi_ports: Vec<Option<AxiId>> = (0..self.tasks.len())
            .map(|t| {
                self.tasks[t].axi.map(|axi| {
                    let rate = self.tasks[t].rate;
                    let init: Vec<i64> = match axi.role {
                        AxiRole::ReadSource { prefetch, .. } => {
                            // Prefetched bursts run `prefetch * rate` beats
                            // past the consumed window; the tail is junk the
                            // task never folds, but the request still
                            // snapshots it.
                            (0..n + i64::from(prefetch) * rate)
                                .map(|i| (i * 23 + t as i64 * 13 + 7) % 89)
                                .collect()
                        }
                        AxiRole::WriteSink => vec![0; n as usize],
                        AxiRole::ReadWrite => {
                            // Read region [0, n), disjoint write-back region
                            // [n, 2n) — keeps the value stream independent
                            // of the write-back order on every backend.
                            let mut init: Vec<i64> =
                                (0..n).map(|i| (i * 23 + t as i64 * 13 + 7) % 89).collect();
                            init.resize(2 * n as usize, 0);
                            init
                        }
                    };
                    let mem = d.array(format!("ddr{t}"), init);
                    d.axi_port(format!("gmem{t}"), mem, axi.latency)
                })
            })
            .collect();

        let acc_outs: Vec<Option<OutputId>> = (0..self.tasks.len())
            .map(|t| {
                (self.tasks[t].emits_output && retry_out(t).is_none())
                    .then(|| d.output(format!("t{t}_acc")))
            })
            .collect();
        let drop_outs: Vec<Option<OutputId>> = (0..self.tasks.len())
            .map(|t| {
                let counts_drops = self
                    .edges
                    .iter()
                    .any(|e| e.src == t && e.kind == (EdgeKind::NbDrop { counted: true }));
                (counts_drops && self.tasks[t].emits_output)
                    .then(|| d.output(format!("t{t}_drops")))
            })
            .collect();

        // The one shared (pure) callee chain, if any task calls into it.
        let shared_chain = self
            .tasks
            .iter()
            .any(|t| t.call.is_some_and(|c| c.shared))
            .then(|| Self::lower_shared_chain(&mut d));

        let mut children = Vec::with_capacity(self.tasks.len());
        for t in 0..self.tasks.len() {
            let module = if let Some(edge_idx) = retry_out(t) {
                self.lower_retry_task(&mut d, t, edge_idx, fifos[edge_idx], arrays[t])
            } else {
                self.lower_worker_task(
                    &mut d,
                    t,
                    &fifos,
                    arrays[t],
                    axi_ports[t],
                    shared_chain.as_deref(),
                    acc_outs[t],
                    drop_outs[t],
                )
            };
            children.push(module);
        }
        d.dataflow_top("top", children);
        d.build()
            .expect("well-formed blueprints always lower to valid designs")
    }

    /// The design-wide shared callee chain: three nested pure functions
    /// `shared_0 → shared_1 → shared_2`. A task with call depth `d` enters
    /// at `shared_{3 - d}`, so every depth reuses the same modules.
    fn lower_shared_chain(d: &mut DesignBuilder) -> Vec<ModuleId> {
        let innermost = d.function("shared_2", |m| {
            let x = m.var("x");
            let y = m.var("y");
            m.entry(|b| {
                b.latency(3);
                b.ret_val(
                    Expr::var(x)
                        .mul(Expr::imm(2))
                        .add(Expr::var(y))
                        .add(Expr::imm(11)),
                );
            });
        });
        let mid = d.function("shared_1", |m| {
            let x = m.var("x");
            let y = m.var("y");
            m.entry(|b| {
                let r = b.call(
                    innermost,
                    vec![Expr::var(x).add(Expr::imm(3)), Expr::var(y)],
                );
                b.ret_val(Expr::var(r).add(Expr::imm(1)));
            });
        });
        let outer = d.function("shared_0", |m| {
            let x = m.var("x");
            let y = m.var("y");
            m.entry(|b| {
                let r = b.call(mid, vec![Expr::var(x).add(Expr::imm(5)), Expr::var(y)]);
                b.ret_val(Expr::var(r).add(Expr::imm(2)));
            });
        });
        vec![outer, mid, innermost]
    }

    /// A task-private callee chain of the given depth. When `wrapped` is
    /// non-empty the innermost callee performs the blocking reads of those
    /// FIFOs (one value each per call) and folds them into its result.
    fn lower_private_chain(
        d: &mut DesignBuilder,
        t: usize,
        depth: u8,
        coef: i64,
        wrapped: &[FifoId],
    ) -> ModuleId {
        let wrapped = wrapped.to_vec();
        let mut callee = d.function(format!("t{t}_mix{}", depth - 1), move |m| {
            let x = m.var("x");
            let y = m.var("y");
            m.entry(|b| {
                let mut value = Expr::var(x).mul(Expr::imm(coef)).add(Expr::var(y));
                for (k, &fifo) in wrapped.iter().enumerate() {
                    let v = b.at(k as u64).fifo_read(fifo);
                    value = value.add(Expr::var(v).mul(Expr::imm(coef)));
                }
                b.latency(wrapped.len() as u64 + 2);
                b.ret_val(value.add(Expr::imm(7)));
            });
        });
        for level in (0..depth - 1).rev() {
            let inner = callee;
            callee = d.function(format!("t{t}_mix{level}"), move |m| {
                let x = m.var("x");
                let y = m.var("y");
                m.entry(|b| {
                    let r = b.call(
                        inner,
                        vec![
                            Expr::var(x).add(Expr::imm(i64::from(level) + 1)),
                            Expr::var(y),
                        ],
                    );
                    b.ret_val(Expr::var(r).add(Expr::imm(1)));
                });
            });
        }
        callee
    }

    /// Fig. 4 Ex. 2-style source: retry a non-blocking write until it
    /// succeeds, advancing the token index only on success.
    fn lower_retry_task(
        &self,
        d: &mut DesignBuilder,
        t: usize,
        edge_idx: usize,
        fifo: FifoId,
        array: Option<ArrayId>,
    ) -> omnisim_ir::ModuleId {
        let plan = self.tasks[t];
        let n = self.tokens;
        d.function(format!("t{t}_retry"), |m| {
            let i = m.var("i");
            m.entry(|b| {
                b.assign(i, Expr::imm(0));
            });
            m.loop_block(plan.ii, |b| {
                let iv = Expr::var(i);
                let value = match array {
                    Some(a) => {
                        let v = b.array_load(a, iv.clone());
                        Expr::var(v)
                    }
                    None => iv
                        .clone()
                        .mul(Expr::imm(plan.coef))
                        .add(Expr::imm(plan.start + edge_idx as i64 + 1)),
                };
                let ok = b.fifo_nb_write(fifo, value);
                b.assign(i, Expr::var(ok).select(iv.clone().add(Expr::imm(1)), iv));
                b.exit_loop_if(Expr::var(i).ge(Expr::imm(n)));
            });
        })
    }

    /// An ordinary worker: read `rate` values from every forward in-edge,
    /// fold, write `rate` values to every out-edge, then collect responses.
    /// AXI roles replace the local value source/sink with burst traffic;
    /// call plans route the fold (and optionally the blocking reads)
    /// through a callee chain.
    #[allow(clippy::too_many_arguments)]
    fn lower_worker_task(
        &self,
        d: &mut DesignBuilder,
        t: usize,
        fifos: &[FifoId],
        array: Option<ArrayId>,
        axi_port: Option<AxiId>,
        shared_chain: Option<&[ModuleId]>,
        acc_out: Option<OutputId>,
        drop_out: Option<OutputId>,
    ) -> omnisim_ir::ModuleId {
        let plan = self.tasks[t];
        let n = self.tokens;
        let rate = plan.rate;
        let trip = n / rate;
        let in_fwd: Vec<usize> = (0..self.edges.len())
            .filter(|&i| {
                self.edges[i].dst == t && !matches!(self.edges[i].kind, EdgeKind::Response { .. })
            })
            .collect();
        let in_resp: Vec<usize> = (0..self.edges.len())
            .filter(|&i| {
                self.edges[i].dst == t && matches!(self.edges[i].kind, EdgeKind::Response { .. })
            })
            .collect();
        let outs: Vec<usize> = (0..self.edges.len())
            .filter(|&i| self.edges[i].src == t)
            .collect();
        let counts_drops = outs
            .iter()
            .any(|&i| self.edges[i].kind == EdgeKind::NbDrop { counted: true });

        // Which in-edges the innermost callee reads (blocking kinds only;
        // lossy NB reads stay in the task body so the taint analysis sees
        // them next to the observable accumulator).
        let wrap = plan.call.is_some_and(|c| c.wrap_reads);
        let wrapped: Vec<usize> = if wrap {
            in_fwd
                .iter()
                .copied()
                .filter(|&i| matches!(self.edges[i].kind, EdgeKind::Blocking | EdgeKind::NbRetry))
                .collect()
        } else {
            Vec::new()
        };

        // The call-chain entry module for this task, if any.
        let chain: Option<ModuleId> = plan.call.map(|c| {
            if c.shared {
                let chain = shared_chain.expect("shared chain built when requested");
                chain[chain.len() - usize::from(c.depth)]
            } else {
                let wrapped_fifos: Vec<FifoId> = wrapped.iter().map(|&i| fifos[i]).collect();
                Self::lower_private_chain(d, t, c.depth, plan.coef, &wrapped_fifos)
            }
        });

        let axi = plan.axi;
        d.function(format!("t{t}"), |m| {
            let acc = m.var("acc");
            let drops = counts_drops.then(|| m.var("drops"));
            m.entry(|b| {
                b.assign(acc, Expr::imm(plan.start));
                if let Some(drops) = drops {
                    b.assign(drops, Expr::imm(0));
                }
                // Prefetched read bursts: several transactions outstanding
                // before the first beat is consumed.
                if let (
                    Some(AxiPlan {
                        role: AxiRole::ReadSource { prefetch, .. },
                        ..
                    }),
                    Some(port),
                ) = (axi, axi_port)
                {
                    for q in 0..i64::from(prefetch) {
                        b.axi_read_req(port, Expr::imm(q * rate), Expr::imm(rate));
                    }
                }
            });

            let body = |b: &mut BlockBuilder, iv: Expr| {
                // 0a. A deliberately deadlocked controller reads its
                // response before doing *anything* else — in particular
                // before any interleaved out-edge write could feed the
                // cycle.
                for &i in &in_resp {
                    if self.edges[i].kind == (EdgeKind::Response { deadlock: true }) {
                        for _ in 0..rate {
                            let r = b.fifo_read(fifos[i]);
                            b.assign(acc, Expr::var(acc).add(Expr::var(r)));
                        }
                    }
                }

                // 0b. Issue this iteration's AXI burst request(s).
                let interleave_axi = match (axi, axi_port) {
                    (
                        Some(AxiPlan {
                            role:
                                AxiRole::ReadSource {
                                    prefetch,
                                    interleave,
                                },
                            ..
                        }),
                        Some(port),
                    ) => {
                        let base = iv
                            .clone()
                            .add(Expr::imm(i64::from(prefetch)))
                            .mul(Expr::imm(rate));
                        b.axi_read_req(port, base, Expr::imm(rate));
                        interleave
                    }
                    (
                        Some(AxiPlan {
                            role: AxiRole::ReadWrite,
                            ..
                        }),
                        Some(port),
                    ) => {
                        b.axi_read_req(port, iv.clone().mul(Expr::imm(rate)), Expr::imm(rate));
                        false
                    }
                    (
                        Some(AxiPlan {
                            role: AxiRole::WriteSink,
                            ..
                        }),
                        Some(port),
                    ) => {
                        b.axi_write_req(port, iv.clone().mul(Expr::imm(rate)), Expr::imm(rate));
                        false
                    }
                    _ => false,
                };

                // 1. Read the forward inputs, `rate` sub-tokens per
                // iteration, sub-token j at schedule offset j.
                for j in 0..rate {
                    b.at(j as u64);
                    let token_iv = iv.clone().mul(Expr::imm(rate)).add(Expr::imm(j));
                    let mut terms: Vec<Expr> = Vec::new();
                    for &i in &in_fwd {
                        if wrapped.contains(&i) {
                            continue; // read inside the callee chain below
                        }
                        let f = fifos[i];
                        match self.edges[i].kind {
                            EdgeKind::NbDrop { .. } => {
                                let (v, ok) = b.fifo_nb_read(f);
                                // Mask the value so a failed read contributes
                                // nothing (the dst register's stale content
                                // must never become observable).
                                terms.push(Expr::var(ok).select(Expr::var(v), Expr::imm(0)));
                            }
                            _ => {
                                let v = b.fifo_read(f);
                                terms.push(Expr::var(v).mul(Expr::imm(plan.coef)));
                            }
                        }
                    }
                    if wrap {
                        // The innermost callee reads one value from every
                        // wrapped FIFO and folds them with its argument.
                        let chain = chain.expect("wrapping requires a chain");
                        let r = b.call(chain, vec![token_iv.clone(), Expr::imm(plan.start)]);
                        terms.push(Expr::var(r));
                    }
                    if in_fwd.is_empty() {
                        match (axi, axi_port) {
                            (
                                Some(AxiPlan {
                                    role: AxiRole::ReadSource { .. } | AxiRole::ReadWrite,
                                    ..
                                }),
                                Some(port),
                            ) => {
                                let v = b.axi_read(port);
                                terms.push(Expr::var(v).mul(Expr::imm(plan.coef)));
                            }
                            _ => {
                                terms.push(match array {
                                    Some(a) => {
                                        let v = b.array_load(a, token_iv.clone());
                                        Expr::var(v)
                                    }
                                    None => {
                                        token_iv.clone().mul(Expr::imm(plan.coef)).add(Expr::imm(1))
                                    }
                                });
                            }
                        }
                    }

                    // 2. Fold sub-token j into the accumulator.
                    let mut update = Expr::var(acc).add(token_iv.clone());
                    for term in &terms {
                        update = update.add(term.clone());
                    }
                    if let (Some(chain), false) = (chain, wrap) {
                        let r = b.call(chain, vec![update, token_iv.clone()]);
                        b.assign(acc, Expr::var(r));
                    } else {
                        b.assign(acc, update);
                    }

                    // AXI sinks stream the running fold back out, one beat
                    // per sub-token; interleaved sources emit their FIFO
                    // writes right between the beats.
                    if let (
                        Some(AxiPlan {
                            role: AxiRole::WriteSink,
                            ..
                        }),
                        Some(port),
                    ) = (axi, axi_port)
                    {
                        b.axi_write(port, Expr::var(acc).add(Expr::imm(j)));
                    }
                    if interleave_axi {
                        self.write_outs(b, fifos, &outs, drops, acc, &iv, j);
                    }
                }

                let wbase = (rate - 1) as u64 + plan.work;
                if plan.work > 0 {
                    b.at(wbase);
                }

                // 3. Write the outputs (already emitted per beat when the
                // AXI source interleaves). Skipped when there is nothing to
                // write so the schedule cursor stays put for the AXI
                // write-back below.
                if !interleave_axi && !outs.is_empty() {
                    for j in 0..rate {
                        b.at(wbase + j as u64);
                        self.write_outs(b, fifos, &outs, drops, acc, &iv, j);
                    }
                }

                // 3b. AXI write-backs of the read/write shape, then the
                // write response (sinks await theirs too).
                match (axi, axi_port) {
                    (
                        Some(AxiPlan {
                            role: AxiRole::ReadWrite,
                            ..
                        }),
                        Some(port),
                    ) => {
                        b.axi_write_req(
                            port,
                            Expr::imm(n).add(iv.clone().mul(Expr::imm(rate))),
                            Expr::imm(rate),
                        );
                        for j in 0..rate {
                            b.at(wbase + j as u64);
                            b.axi_write(port, Expr::var(acc).add(Expr::imm(j)));
                        }
                        b.axi_write_resp(port);
                    }
                    (
                        Some(AxiPlan {
                            role: AxiRole::WriteSink,
                            ..
                        }),
                        Some(port),
                    ) => {
                        b.at(wbase);
                        b.axi_write_resp(port);
                    }
                    _ => {}
                }

                // 4. Collect well-ordered responses (controller leads, so
                // the cycle stays live).
                for &i in &in_resp {
                    if self.edges[i].kind == (EdgeKind::Response { deadlock: false }) {
                        for _ in 0..rate {
                            let r = b.fifo_read(fifos[i]);
                            b.assign(acc, Expr::var(acc).add(Expr::var(r)));
                        }
                    }
                }
            };

            if plan.dynamic_loop {
                let i = m.var("i");
                m.seq(|b| {
                    b.assign(i, Expr::imm(0));
                });
                m.loop_block(plan.ii, |b| {
                    body(b, Expr::var(i));
                    b.assign(i, Expr::var(i).add(Expr::imm(1)));
                    b.exit_loop_if(Expr::var(i).ge(Expr::imm(trip)));
                });
            } else {
                m.counted_loop("i", trip, plan.ii, |b| {
                    let iv = b.var_expr("i");
                    body(b, iv);
                });
            }

            // Surplus: leftover data the consumer never drains, written
            // after the main loop. Live because every surplus fits its
            // FIFO's remaining capacity (well-formedness).
            let surplus_edges: Vec<usize> = outs
                .iter()
                .copied()
                .filter(|&i| self.edges[i].surplus > 0)
                .collect();
            if !surplus_edges.is_empty() {
                m.seq(|b| {
                    for &i in &surplus_edges {
                        for s in 0..self.edges[i].surplus {
                            b.fifo_write(
                                fifos[i],
                                Expr::var(acc).add(Expr::imm(s as i64 + i as i64)),
                            );
                        }
                    }
                });
            }

            if acc_out.is_some() || drop_out.is_some() {
                m.exit(|b| {
                    if let Some(out) = acc_out {
                        b.output(out, Expr::var(acc));
                    }
                    if let (Some(out), Some(drops)) = (drop_out, drops) {
                        b.output(out, Expr::var(drops));
                    }
                });
            }
        })
    }

    /// Emits sub-token `j`'s write to every out-edge at the current offset.
    #[allow(clippy::too_many_arguments)]
    fn write_outs(
        &self,
        b: &mut BlockBuilder,
        fifos: &[FifoId],
        outs: &[usize],
        drops: Option<omnisim_ir::VarId>,
        acc: omnisim_ir::VarId,
        iv: &Expr,
        j: i64,
    ) {
        for &i in outs {
            let value = Expr::var(acc).add(iv.clone()).add(Expr::imm(i as i64 + j));
            match self.edges[i].kind {
                EdgeKind::NbDrop { counted: true } => {
                    let ok = b.fifo_nb_write(fifos[i], value);
                    let drops = drops.expect("counted drop edge declares the counter");
                    b.assign(
                        drops,
                        Expr::var(ok).select(Expr::var(drops), Expr::var(drops).add(Expr::imm(1))),
                    );
                }
                EdgeKind::NbDrop { counted: false } => {
                    b.fifo_nb_write_ignored(fifos[i], value);
                }
                _ => {
                    b.fifo_write(fifos[i], value);
                }
            }
        }
    }

    /// A random FIFO-depth vector for this blueprint's edge count, used by
    /// the DSE consistency checks.
    pub fn random_depths(&self, rng: &mut Rng, max_depth: usize) -> Vec<usize> {
        (0..self.edges.len())
            .map(|_| rng.depth(max_depth))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::classify;
    use omnisim_ir::DesignClass;

    fn two_task_chain() -> Blueprint {
        Blueprint {
            name: "chain".into(),
            tokens: 4,
            tasks: vec![TaskPlan::minimal(), TaskPlan::minimal()],
            edges: vec![EdgePlan::blocking(0, 1, 2)],
        }
    }

    #[test]
    fn blocking_chain_lowers_to_type_a() {
        let bp = two_task_chain();
        assert!(bp.well_formed().is_ok());
        let design = bp.lower();
        assert_eq!(design.fifos.len(), 1);
        assert_eq!(design.modules.len(), 3, "two tasks + dataflow top");
        assert_eq!(classify(&design).class, DesignClass::TypeA);
    }

    #[test]
    fn response_edge_makes_type_b() {
        let mut bp = two_task_chain();
        bp.edges.push(EdgePlan {
            src: 1,
            dst: 0,
            depth: 1,
            kind: EdgeKind::Response { deadlock: false },
            surplus: 0,
        });
        let design = bp.lower();
        let report = classify(&design);
        assert!(report.cyclic_dataflow);
        assert_eq!(report.class, DesignClass::TypeB);
    }

    #[test]
    fn retry_source_makes_type_b() {
        let mut bp = two_task_chain();
        bp.tasks.push(TaskPlan {
            emits_output: false,
            ..TaskPlan::minimal()
        });
        bp.edges.push(EdgePlan {
            src: 2,
            dst: 1,
            depth: 1,
            kind: EdgeKind::NbRetry,
            surplus: 0,
        });
        let design = bp.lower();
        let report = classify(&design);
        assert!(report.uses_nonblocking);
        assert_eq!(report.class, DesignClass::TypeB);
    }

    #[test]
    fn lossy_edge_makes_type_c() {
        let mut bp = two_task_chain();
        bp.edges[0].kind = EdgeKind::NbDrop { counted: true };
        let design = bp.lower();
        assert_eq!(classify(&design).class, DesignClass::TypeC);
        assert!(design.outputs.iter().any(|o| o.ends_with("_drops")));
    }

    #[test]
    fn lowering_is_deterministic() {
        let bp = two_task_chain();
        assert_eq!(bp.lower(), bp.lower());
    }

    #[test]
    fn axi_source_and_sink_stay_type_a() {
        let mut bp = two_task_chain();
        bp.tokens = 12;
        bp.tasks[0].rate = 3;
        bp.tasks[0].ii = 3;
        bp.tasks[0].axi = Some(AxiPlan {
            role: AxiRole::ReadSource {
                prefetch: 1,
                interleave: true,
            },
            latency: 4,
        });
        bp.tasks[1].axi = Some(AxiPlan {
            role: AxiRole::WriteSink,
            latency: 2,
        });
        assert_eq!(bp.well_formed(), Ok(()));
        let design = bp.lower();
        assert_eq!(design.axi_ports.len(), 2);
        assert_eq!(classify(&design).class, DesignClass::TypeA);
    }

    #[test]
    fn isolated_read_write_task_lowers_like_axi4_master() {
        let bp = Blueprint {
            name: "rw".into(),
            tokens: 8,
            tasks: vec![TaskPlan {
                rate: 4,
                ii: 4,
                axi: Some(AxiPlan {
                    role: AxiRole::ReadWrite,
                    latency: 6,
                }),
                ..TaskPlan::minimal()
            }],
            edges: vec![],
        };
        assert_eq!(bp.well_formed(), Ok(()));
        let design = bp.lower();
        assert_eq!(design.fifos.len(), 0);
        assert_eq!(design.axi_ports.len(), 1);
        assert_eq!(
            design.arrays[0].init.len(),
            16,
            "read region plus disjoint write-back region"
        );
        assert_eq!(classify(&design).class, DesignClass::TypeA);
    }

    #[test]
    fn call_chains_stay_type_a_and_add_callee_modules() {
        let mut bp = two_task_chain();
        bp.tasks[1].call = Some(CallPlan {
            depth: 2,
            shared: false,
            wrap_reads: true,
        });
        assert_eq!(bp.well_formed(), Ok(()));
        let design = bp.lower();
        // 2 tasks + 2 private callees + top.
        assert_eq!(design.modules.len(), 5);
        assert_eq!(classify(&design).class, DesignClass::TypeA);

        let mut shared = two_task_chain();
        shared.tasks[0].call = Some(CallPlan {
            depth: 3,
            shared: true,
            wrap_reads: false,
        });
        shared.tasks[1].call = Some(CallPlan {
            depth: 1,
            shared: true,
            wrap_reads: false,
        });
        let design = shared.lower();
        // 2 tasks + 3 shared chain modules + top.
        assert_eq!(design.modules.len(), 6);
        assert_eq!(classify(&design).class, DesignClass::TypeA);
    }

    #[test]
    fn multirate_and_surplus_are_well_formed() {
        let mut bp = two_task_chain();
        bp.tokens = 12;
        bp.tasks[0].rate = 3;
        bp.tasks[0].ii = 3;
        bp.tasks[1].rate = 2;
        bp.tasks[1].ii = 2;
        bp.edges[0].surplus = 2;
        assert_eq!(bp.well_formed(), Ok(()));
        assert!(bp.is_multirate());
        let design = bp.lower();
        assert_eq!(classify(&design).class, DesignClass::TypeA);
    }

    #[test]
    fn malformed_blueprints_are_rejected() {
        let mut bp = two_task_chain();
        bp.edges[0].dst = 0;
        assert!(bp.well_formed().is_err());

        let mut bp = two_task_chain();
        bp.edges[0].depth = 0;
        assert!(bp.well_formed().is_err());

        let mut bp = two_task_chain();
        bp.tokens = 0;
        assert!(bp.well_formed().is_err());

        let mut bp = two_task_chain();
        // A backwards Blocking edge breaks the C-sim-friendly forward order.
        bp.edges[0] = EdgePlan::blocking(1, 0, 1);
        assert!(bp.well_formed().is_err());

        // Rate must divide the token count.
        let mut bp = two_task_chain();
        bp.tasks[0].rate = 3;
        bp.tasks[0].ii = 3;
        assert!(bp.well_formed().is_err());

        // II below the rate risks out-of-order same-FIFO commits.
        let mut bp = two_task_chain();
        bp.tasks[0].rate = 2;
        bp.tasks[0].ii = 1;
        assert!(bp.well_formed().is_err());

        // Surplus above the FIFO depth could never be written.
        let mut bp = two_task_chain();
        bp.edges[0].surplus = 3;
        assert!(bp.well_formed().is_err());

        // Surplus on a lossy edge is meaningless.
        let mut bp = two_task_chain();
        bp.edges[0].kind = EdgeKind::NbDrop { counted: false };
        bp.edges[0].surplus = 1;
        assert!(bp.well_formed().is_err());

        // An AXI read source cannot have forward in-edges.
        let mut bp = two_task_chain();
        bp.tasks[1].axi = Some(AxiPlan {
            role: AxiRole::ReadSource {
                prefetch: 0,
                interleave: false,
            },
            latency: 4,
        });
        assert!(bp.well_formed().is_err());

        // Wrapped reads require a blocking forward in-edge.
        let mut bp = two_task_chain();
        bp.tasks[0].call = Some(CallPlan {
            depth: 1,
            shared: false,
            wrap_reads: true,
        });
        assert!(bp.well_formed().is_err());

        // Response cycles need equal rates on both endpoints.
        let mut bp = two_task_chain();
        bp.tokens = 12;
        bp.tasks[0].rate = 2;
        bp.tasks[0].ii = 2;
        bp.edges.push(EdgePlan {
            src: 1,
            dst: 0,
            depth: 1,
            kind: EdgeKind::Response { deadlock: false },
            surplus: 0,
        });
        assert!(bp.well_formed().is_err());
    }

    #[test]
    fn size_counts_structure() {
        let small = two_task_chain();
        let mut bigger = small.clone();
        bigger.tasks.push(TaskPlan::minimal());
        bigger.edges.push(EdgePlan {
            src: 0,
            dst: 2,
            depth: 4,
            kind: EdgeKind::NbDrop { counted: true },
            surplus: 0,
        });
        assert!(bigger.size() > small.size());

        // Every new dimension adds weight, so the shrinker can remove it.
        let mut with_axi = small.clone();
        with_axi.tasks[0].axi = Some(AxiPlan {
            role: AxiRole::ReadSource {
                prefetch: 2,
                interleave: true,
            },
            latency: 4,
        });
        assert!(with_axi.size() > small.size());

        let mut with_call = small.clone();
        with_call.tasks[0].call = Some(CallPlan {
            depth: 2,
            shared: false,
            wrap_reads: false,
        });
        assert!(with_call.size() > small.size());

        let mut with_rate = small.clone();
        with_rate.tokens = 4;
        with_rate.tasks[0].rate = 2;
        with_rate.tasks[0].ii = 2;
        assert!(with_rate.size() > small.size());

        let mut with_surplus = small.clone();
        with_surplus.edges[0].surplus = 1;
        assert!(with_surplus.size() > small.size());
    }
}
