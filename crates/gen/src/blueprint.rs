//! The shrinkable intermediate form of a generated design.
//!
//! The generator does not emit `omnisim-ir` directly: it first builds a
//! [`Blueprint`] — a compact, structural description of a dataflow design
//! (worker tasks plus typed edges) — and *lowers* it deterministically to a
//! validated [`Design`]. Everything downstream benefits:
//!
//! * **shrinking** operates on the blueprint (drop a task, drop an edge,
//!   halve the token count, simplify an access kind) and re-lowers, so every
//!   shrink candidate is well-formed by construction;
//! * **reproduction** is trivial: a failing case is its blueprint, which is
//!   tiny, printable and committable as a regression fixture;
//! * **taxonomy targeting** is compositional: each [`EdgeKind`] maps onto a
//!   known row of the paper's Type A/B/C taxonomy.
//!
//! ## The task protocol
//!
//! Every pipeline edge carries exactly [`Blueprint::tokens`] values. Each
//! worker task loops `tokens` times; one iteration reads one value from
//! every forward in-edge, folds the values into an accumulator, then writes
//! one value to every out-edge. Response edges ([`EdgeKind::Response`]) are
//! read at the *end* of an iteration — after the requests have been written
//! — which closes request/response cycles without deadlocking (the
//! controller always leads). Setting the `deadlock` flag moves that read
//! *before* the writes, producing a guaranteed design-level deadlock that
//! both cycle-accurate backends must diagnose identically.

use crate::rng::Rng;
use omnisim_ir::builder::{BlockBuilder, DesignBuilder};
use omnisim_ir::{ArrayId, Design, Expr, FifoId, OutputId};

/// How a dataflow edge accesses its FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Blocking write, blocking read: one token per iteration on both sides
    /// (Type A behaviour).
    Blocking,
    /// The producer is a dedicated source task that retries a non-blocking
    /// write until it succeeds (Fig. 4 Ex. 2). The value sequence does not
    /// depend on the outcomes, so this is a Type B feature. The consumer
    /// side reads blocking.
    NbRetry,
    /// Lossy non-blocking edge: the producer drops the token when the FIFO
    /// is full, the consumer folds only successfully read values. Outcomes
    /// are observable (Fig. 4 Ex. 4), so this is a Type C feature.
    NbDrop {
        /// True: the producer counts its drops (Ex. 4b) and reports them as
        /// an output; false: the success flag is ignored entirely (Ex. 4a).
        counted: bool,
    },
    /// A response edge closing a request/response cycle over an existing
    /// forward edge (Fig. 4 Ex. 3): the controller (`dst`) reads it at the
    /// end of each iteration, after writing its requests. Cyclic dataflow is
    /// a Type B feature.
    Response {
        /// True: the controller reads the response *before* writing the
        /// request, deadlocking the cycle on purpose.
        deadlock: bool,
    },
}

impl EdgeKind {
    /// Structural weight used by the shrinker: simpler kinds weigh less.
    pub(crate) fn weight(self) -> u64 {
        match self {
            EdgeKind::Blocking => 0,
            EdgeKind::Response { deadlock: false } => 1,
            EdgeKind::Response { deadlock: true } | EdgeKind::NbRetry => 2,
            EdgeKind::NbDrop { counted: false } => 2,
            EdgeKind::NbDrop { counted: true } => 3,
        }
    }

    /// True for the non-blocking kinds.
    pub fn is_nonblocking(self) -> bool {
        matches!(self, EdgeKind::NbRetry | EdgeKind::NbDrop { .. })
    }
}

/// One FIFO-backed dataflow edge between two tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePlan {
    /// Producer task index.
    pub src: usize,
    /// Consumer task index.
    pub dst: usize,
    /// FIFO depth (≥ 1).
    pub depth: usize,
    /// Access style.
    pub kind: EdgeKind,
}

/// One worker task of the generated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskPlan {
    /// Loop initiation interval (1..=3 in generated designs).
    pub ii: u64,
    /// Extra schedule cycles between the reads and the writes of one
    /// iteration (models computation latency).
    pub work: u64,
    /// Accumulator start value.
    pub start: i64,
    /// Mixing coefficient applied to read values and the induction variable.
    pub coef: i64,
    /// True: `while`-style loop with a data-dependent exit; false: counted
    /// `for` loop.
    pub dynamic_loop: bool,
    /// True: a source task streams values from a pre-initialised input array
    /// instead of computing them from the induction variable.
    pub array_source: bool,
    /// True: the task reports its final accumulator as a testbench output.
    pub emits_output: bool,
}

impl TaskPlan {
    /// The simplest possible task: counted loop, II = 1, no extra work.
    pub fn minimal() -> Self {
        TaskPlan {
            ii: 1,
            work: 0,
            start: 0,
            coef: 1,
            dynamic_loop: false,
            array_source: false,
            emits_output: true,
        }
    }

    pub(crate) fn weight(&self) -> u64 {
        self.ii
            + self.work
            + self.start.unsigned_abs()
            + self.coef.unsigned_abs()
            + u64::from(self.dynamic_loop)
            + u64::from(self.array_source)
    }
}

/// A complete structural description of one generated design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Blueprint {
    /// Design name (carries the generating seed for reproduction).
    pub name: String,
    /// Tokens carried by every pipeline edge (loop trip count).
    pub tokens: i64,
    /// Worker tasks; retry sources are ordinary entries whose single edge is
    /// [`EdgeKind::NbRetry`].
    pub tasks: Vec<TaskPlan>,
    /// Dataflow edges; each lowers to its own point-to-point FIFO.
    pub edges: Vec<EdgePlan>,
}

impl Blueprint {
    /// Checks the structural invariants the lowering relies on.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn well_formed(&self) -> Result<(), String> {
        if self.tasks.is_empty() {
            return Err("blueprint has no tasks".into());
        }
        if self.tokens < 1 {
            return Err(format!("token count {} must be at least 1", self.tokens));
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.src >= self.tasks.len() || e.dst >= self.tasks.len() {
                return Err(format!("edge {i} references a missing task"));
            }
            if e.src == e.dst {
                return Err(format!("edge {i} is a self-loop"));
            }
            if e.depth == 0 {
                return Err(format!("edge {i} has zero depth"));
            }
            match e.kind {
                EdgeKind::Blocking | EdgeKind::NbDrop { .. } => {
                    if e.src > e.dst {
                        return Err(format!(
                            "forward edge {i} must flow from a lower to a higher task index"
                        ));
                    }
                }
                EdgeKind::NbRetry => {
                    let incident = self
                        .edges
                        .iter()
                        .filter(|o| o.src == e.src || o.dst == e.src)
                        .count();
                    if incident != 1 {
                        return Err(format!(
                            "retry source of edge {i} must have exactly one incident edge"
                        ));
                    }
                    if self.tasks[e.src].emits_output {
                        return Err(format!(
                            "retry source of edge {i} must not emit an output \
                             (its state is taint-reachable from the NB outcome)"
                        ));
                    }
                }
                EdgeKind::Response { .. } => {}
            }
        }
        // A forced deadlock starves every downstream consumer; a retry
        // source feeding such a consumer would spin forever — a livelock
        // that neither cycle-accurate backend can diagnose as a deadlock
        // (OmniSim would burn its fuel, the reference its cycle budget).
        // Keep the two features mutually exclusive.
        if self.has_forced_deadlock() && self.edges.iter().any(|e| e.kind == EdgeKind::NbRetry) {
            return Err(
                "a forced-deadlock response edge cannot coexist with a retry source".into(),
            );
        }
        Ok(())
    }

    /// Total size metric used by the greedy shrinker; every shrink step
    /// strictly decreases it, so shrinking terminates.
    pub fn size(&self) -> u64 {
        let task_weight: u64 = self.tasks.iter().map(TaskPlan::weight).sum();
        let edge_weight: u64 = self
            .edges
            .iter()
            .map(|e| e.depth as u64 + e.kind.weight())
            .sum();
        self.tasks.len() as u64 * 1_000
            + self.edges.len() as u64 * 200
            + self.tokens as u64 * 4
            + task_weight
            + edge_weight
    }

    /// True if the blueprint contains a deliberately deadlocked response
    /// cycle.
    pub fn has_forced_deadlock(&self) -> bool {
        self.edges
            .iter()
            .any(|e| e.kind == EdgeKind::Response { deadlock: true })
    }

    /// Lowers the blueprint to a validated design.
    ///
    /// Lowering is deterministic: the same blueprint always produces the
    /// same design, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the blueprint is not [well-formed](Blueprint::well_formed);
    /// the generator and the shrinker only ever construct well-formed
    /// blueprints.
    pub fn lower(&self) -> Design {
        if let Err(e) = self.well_formed() {
            panic!("cannot lower a malformed blueprint: {e}");
        }
        let mut d = DesignBuilder::new(self.name.clone());
        let n = self.tokens;

        let fifos: Vec<FifoId> = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| d.fifo(format!("e{i}_{}to{}", e.src, e.dst), e.depth))
            .collect();

        // A task is a retry source iff its single edge is an NbRetry edge it
        // produces.
        let retry_out = |t: usize| {
            self.edges
                .iter()
                .position(|e| e.kind == EdgeKind::NbRetry && e.src == t)
        };

        // Source arrays for array-streaming tasks (deterministic contents).
        let arrays: Vec<Option<ArrayId>> = (0..self.tasks.len())
            .map(|t| {
                let is_source = !self
                    .edges
                    .iter()
                    .any(|e| e.dst == t && !matches!(e.kind, EdgeKind::Response { .. }));
                (is_source && self.tasks[t].array_source).then(|| {
                    let init: Vec<i64> =
                        (0..n).map(|i| (i * 31 + t as i64 * 17 + 5) % 97).collect();
                    d.array(format!("src{t}"), init)
                })
            })
            .collect();

        let acc_outs: Vec<Option<OutputId>> = (0..self.tasks.len())
            .map(|t| {
                (self.tasks[t].emits_output && retry_out(t).is_none())
                    .then(|| d.output(format!("t{t}_acc")))
            })
            .collect();
        let drop_outs: Vec<Option<OutputId>> = (0..self.tasks.len())
            .map(|t| {
                let counts_drops = self
                    .edges
                    .iter()
                    .any(|e| e.src == t && e.kind == (EdgeKind::NbDrop { counted: true }));
                (counts_drops && self.tasks[t].emits_output)
                    .then(|| d.output(format!("t{t}_drops")))
            })
            .collect();

        let mut children = Vec::with_capacity(self.tasks.len());
        for t in 0..self.tasks.len() {
            let module = if let Some(edge_idx) = retry_out(t) {
                self.lower_retry_task(&mut d, t, edge_idx, fifos[edge_idx], arrays[t])
            } else {
                self.lower_worker_task(&mut d, t, &fifos, arrays[t], acc_outs[t], drop_outs[t])
            };
            children.push(module);
        }
        d.dataflow_top("top", children);
        d.build()
            .expect("well-formed blueprints always lower to valid designs")
    }

    /// Fig. 4 Ex. 2-style source: retry a non-blocking write until it
    /// succeeds, advancing the token index only on success.
    fn lower_retry_task(
        &self,
        d: &mut DesignBuilder,
        t: usize,
        edge_idx: usize,
        fifo: FifoId,
        array: Option<ArrayId>,
    ) -> omnisim_ir::ModuleId {
        let plan = self.tasks[t];
        let n = self.tokens;
        d.function(format!("t{t}_retry"), |m| {
            let i = m.var("i");
            m.entry(|b| {
                b.assign(i, Expr::imm(0));
            });
            m.loop_block(plan.ii, |b| {
                let iv = Expr::var(i);
                let value = match array {
                    Some(a) => {
                        let v = b.array_load(a, iv.clone());
                        Expr::var(v)
                    }
                    None => iv
                        .clone()
                        .mul(Expr::imm(plan.coef))
                        .add(Expr::imm(plan.start + edge_idx as i64 + 1)),
                };
                let ok = b.fifo_nb_write(fifo, value);
                b.assign(i, Expr::var(ok).select(iv.clone().add(Expr::imm(1)), iv));
                b.exit_loop_if(Expr::var(i).ge(Expr::imm(n)));
            });
        })
    }

    /// An ordinary worker: read every forward in-edge, fold, write every
    /// out-edge, then collect responses.
    fn lower_worker_task(
        &self,
        d: &mut DesignBuilder,
        t: usize,
        fifos: &[FifoId],
        array: Option<ArrayId>,
        acc_out: Option<OutputId>,
        drop_out: Option<OutputId>,
    ) -> omnisim_ir::ModuleId {
        let plan = self.tasks[t];
        let n = self.tokens;
        let in_fwd: Vec<usize> = (0..self.edges.len())
            .filter(|&i| {
                self.edges[i].dst == t && !matches!(self.edges[i].kind, EdgeKind::Response { .. })
            })
            .collect();
        let in_resp: Vec<usize> = (0..self.edges.len())
            .filter(|&i| {
                self.edges[i].dst == t && matches!(self.edges[i].kind, EdgeKind::Response { .. })
            })
            .collect();
        let outs: Vec<usize> = (0..self.edges.len())
            .filter(|&i| self.edges[i].src == t)
            .collect();
        let counts_drops = outs
            .iter()
            .any(|&i| self.edges[i].kind == EdgeKind::NbDrop { counted: true });

        d.function(format!("t{t}"), |m| {
            let acc = m.var("acc");
            let drops = counts_drops.then(|| m.var("drops"));
            m.entry(|b| {
                b.assign(acc, Expr::imm(plan.start));
                if let Some(drops) = drops {
                    b.assign(drops, Expr::imm(0));
                }
            });

            let body = |b: &mut BlockBuilder, iv: Expr| {
                // 1. Read the forward inputs.
                let mut terms: Vec<Expr> = Vec::new();
                for &i in &in_fwd {
                    let f = fifos[i];
                    match self.edges[i].kind {
                        EdgeKind::NbDrop { .. } => {
                            let (v, ok) = b.fifo_nb_read(f);
                            // Mask the value so a failed read contributes
                            // nothing (the dst register's stale content must
                            // never become observable).
                            terms.push(Expr::var(ok).select(Expr::var(v), Expr::imm(0)));
                        }
                        _ => {
                            let v = b.fifo_read(f);
                            terms.push(Expr::var(v).mul(Expr::imm(plan.coef)));
                        }
                    }
                }
                if in_fwd.is_empty() {
                    terms.push(match array {
                        Some(a) => {
                            let v = b.array_load(a, iv.clone());
                            Expr::var(v)
                        }
                        None => iv.clone().mul(Expr::imm(plan.coef)).add(Expr::imm(1)),
                    });
                }

                // 2. Fold into the accumulator.
                let mut update = Expr::var(acc).add(iv.clone());
                for term in terms {
                    update = update.add(term);
                }
                b.assign(acc, update);
                if plan.work > 0 {
                    b.step(plan.work);
                }

                // 3a. A deliberately deadlocked controller reads its
                // response *before* issuing the request.
                for &i in &in_resp {
                    if self.edges[i].kind == (EdgeKind::Response { deadlock: true }) {
                        let r = b.fifo_read(fifos[i]);
                        b.assign(acc, Expr::var(acc).add(Expr::var(r)));
                    }
                }

                // 3b. Write the outputs.
                for &i in &outs {
                    let value = Expr::var(acc).add(iv.clone()).add(Expr::imm(i as i64));
                    match self.edges[i].kind {
                        EdgeKind::NbDrop { counted: true } => {
                            let ok = b.fifo_nb_write(fifos[i], value);
                            let drops = drops.expect("counted drop edge declares the counter");
                            b.assign(
                                drops,
                                Expr::var(ok)
                                    .select(Expr::var(drops), Expr::var(drops).add(Expr::imm(1))),
                            );
                        }
                        EdgeKind::NbDrop { counted: false } => {
                            b.fifo_nb_write_ignored(fifos[i], value);
                        }
                        _ => {
                            b.fifo_write(fifos[i], value);
                        }
                    }
                }

                // 4. Collect well-ordered responses (controller leads, so
                // the cycle stays live).
                for &i in &in_resp {
                    if self.edges[i].kind == (EdgeKind::Response { deadlock: false }) {
                        let r = b.fifo_read(fifos[i]);
                        b.assign(acc, Expr::var(acc).add(Expr::var(r)));
                    }
                }
            };

            if plan.dynamic_loop {
                let i = m.var("i");
                m.seq(|b| {
                    b.assign(i, Expr::imm(0));
                });
                m.loop_block(plan.ii, |b| {
                    body(b, Expr::var(i));
                    b.assign(i, Expr::var(i).add(Expr::imm(1)));
                    b.exit_loop_if(Expr::var(i).ge(Expr::imm(n)));
                });
            } else {
                m.counted_loop("i", n, plan.ii, |b| {
                    let iv = b.var_expr("i");
                    body(b, iv);
                });
            }

            if acc_out.is_some() || drop_out.is_some() {
                m.exit(|b| {
                    if let Some(out) = acc_out {
                        b.output(out, Expr::var(acc));
                    }
                    if let (Some(out), Some(drops)) = (drop_out, drops) {
                        b.output(out, Expr::var(drops));
                    }
                });
            }
        })
    }

    /// A random FIFO-depth vector for this blueprint's edge count, used by
    /// the DSE consistency checks.
    pub fn random_depths(&self, rng: &mut Rng, max_depth: usize) -> Vec<usize> {
        (0..self.edges.len())
            .map(|_| rng.depth(max_depth))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omnisim_ir::taxonomy::classify;
    use omnisim_ir::DesignClass;

    fn two_task_chain() -> Blueprint {
        Blueprint {
            name: "chain".into(),
            tokens: 4,
            tasks: vec![TaskPlan::minimal(), TaskPlan::minimal()],
            edges: vec![EdgePlan {
                src: 0,
                dst: 1,
                depth: 2,
                kind: EdgeKind::Blocking,
            }],
        }
    }

    #[test]
    fn blocking_chain_lowers_to_type_a() {
        let bp = two_task_chain();
        assert!(bp.well_formed().is_ok());
        let design = bp.lower();
        assert_eq!(design.fifos.len(), 1);
        assert_eq!(design.modules.len(), 3, "two tasks + dataflow top");
        assert_eq!(classify(&design).class, DesignClass::TypeA);
    }

    #[test]
    fn response_edge_makes_type_b() {
        let mut bp = two_task_chain();
        bp.edges.push(EdgePlan {
            src: 1,
            dst: 0,
            depth: 1,
            kind: EdgeKind::Response { deadlock: false },
        });
        let design = bp.lower();
        let report = classify(&design);
        assert!(report.cyclic_dataflow);
        assert_eq!(report.class, DesignClass::TypeB);
    }

    #[test]
    fn retry_source_makes_type_b() {
        let mut bp = two_task_chain();
        bp.tasks.push(TaskPlan {
            emits_output: false,
            ..TaskPlan::minimal()
        });
        bp.edges.push(EdgePlan {
            src: 2,
            dst: 1,
            depth: 1,
            kind: EdgeKind::NbRetry,
        });
        let design = bp.lower();
        let report = classify(&design);
        assert!(report.uses_nonblocking);
        assert_eq!(report.class, DesignClass::TypeB);
    }

    #[test]
    fn lossy_edge_makes_type_c() {
        let mut bp = two_task_chain();
        bp.edges[0].kind = EdgeKind::NbDrop { counted: true };
        let design = bp.lower();
        assert_eq!(classify(&design).class, DesignClass::TypeC);
        assert!(design.outputs.iter().any(|o| o.ends_with("_drops")));
    }

    #[test]
    fn lowering_is_deterministic() {
        let bp = two_task_chain();
        assert_eq!(bp.lower(), bp.lower());
    }

    #[test]
    fn malformed_blueprints_are_rejected() {
        let mut bp = two_task_chain();
        bp.edges[0].dst = 0;
        assert!(bp.well_formed().is_err());

        let mut bp = two_task_chain();
        bp.edges[0].depth = 0;
        assert!(bp.well_formed().is_err());

        let mut bp = two_task_chain();
        bp.tokens = 0;
        assert!(bp.well_formed().is_err());

        let mut bp = two_task_chain();
        // A backwards Blocking edge breaks the C-sim-friendly forward order.
        bp.edges[0] = EdgePlan {
            src: 1,
            dst: 0,
            depth: 1,
            kind: EdgeKind::Blocking,
        };
        assert!(bp.well_formed().is_err());
    }

    #[test]
    fn size_counts_structure() {
        let small = two_task_chain();
        let mut bigger = small.clone();
        bigger.tasks.push(TaskPlan::minimal());
        bigger.edges.push(EdgePlan {
            src: 0,
            dst: 2,
            depth: 4,
            kind: EdgeKind::NbDrop { counted: true },
        });
        assert!(bigger.size() > small.size());
    }
}
