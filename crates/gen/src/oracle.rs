//! The cross-backend differential oracle.
//!
//! One generated design, every claim the workspace makes about it:
//!
//! * **omnisim == rtl, bit for bit** — same outcome kind, same outputs, and
//!   (for completed runs) the same total cycle count. This is the paper's
//!   headline claim, checked on an unbounded design population instead of a
//!   dozen hand-written fixtures.
//! * **lightning is right on Type A and honest elsewhere** — on Type A it
//!   must complete with the reference's outputs and cycle count; on Type B/C
//!   it must reject the design as unsupported (accepting one would silently
//!   produce wrong numbers, the exact failure mode of the paper's Table 5
//!   comparison).
//! * **csim diverges exactly where the paper says it does** — correct on
//!   Type A, wrong or crashing on most Type B/C designs; the oracle records
//!   the expected-divergence bookkeeping instead of asserting equality.
//! * **the DSE tower is self-consistent** — bytecode-VM answers ==
//!   compiled `SweepPlan` answers == uncompiled `try_with_depths` answers
//!   on random depth vectors (the VM running a codec-roundtripped
//!   program), and certified answers == a full re-simulation of the
//!   resized design.
//!
//! [`differential_check`] returns a [`DiffReport`]; an empty
//! [`DiffReport::failures`] means every claim held.

use crate::rng::Rng;
use omnisim::{CompiledOmni, IncrementalOutcome, OmniSimulator, SimConfig};
use omnisim_analyze::DeadlockVerdict;
use omnisim_api::{RunConfig, Simulator};
use omnisim_csim::CsimBackend;
use omnisim_dse::{MinDepthsReport, PlanEvaluator, SweepPlan};
use omnisim_ir::taxonomy::classify;
use omnisim_ir::{Design, DesignClass};
use omnisim_lightning::{LightningError, LightningSimulator};
use omnisim_rtlsim::{RtlConfig, RtlOutcome, RtlSimulator};

/// Knobs of the differential check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffConfig {
    /// Random FIFO-depth vectors evaluated per design by the DSE
    /// consistency check.
    pub dse_points: usize,
    /// Maximum depth of those vectors.
    pub dse_max_depth: usize,
    /// Verify certified DSE answers against a full re-simulation.
    pub dse_resim: bool,
    /// Run the `min_depths` inverse query on every completed baseline (with
    /// the baseline latency as target) and cross-check its combined verdict
    /// against `try_with_depths`.
    pub min_depths: bool,
    /// Search bound of that query.
    pub min_depths_bound: usize,
    /// Tightness oracle: ground-truth the `min_depths` certificate with
    /// full re-simulations — each certified per-FIFO minimum must simulate
    /// within the target, and one depth shallower must certifiably fail
    /// (higher latency, matched by re-simulation, or an infeasible depth
    /// that deadlocks). Costs up to two extra full runs per FIFO, so it is
    /// off by default and enabled by the dedicated tightness suite and the
    /// fuzz CLI's `--min-depths`.
    pub min_depths_resim: bool,
    /// Lower the plan to register-allocated bytecode and pin the VM's
    /// answer against the interpreted plan on every DSE depth vector
    /// (including one codec roundtrip of the program per design). On by
    /// default — the VM is the serving tier's fast path, so it fuzzes
    /// wherever the plan does; the fuzz CLI's `--no-bytecode` disables it.
    pub bytecode: bool,
    /// Run the static analyzer on every design and check its certificates
    /// against the reference outcome: a `CertifiedFree` design must
    /// complete, a `CertifiedDeadlock` design must not, and the static
    /// depth lower bound must never exceed a declared depth the design
    /// completes at, nor a certified `min_depths` minimum. On by default —
    /// the analyzer is pure CPU work, orders of magnitude cheaper than the
    /// simulations around it; the fuzz CLI's `--no-analyze` disables it.
    pub analyze: bool,
    /// Cycle budget for the cycle-stepped reference (a generated design
    /// exceeding it counts as a hang, which is itself a failure).
    pub rtl_max_cycles: u64,
    /// Per-thread operation budget for the OmniSim engine — a backstop so a
    /// runaway generated design aborts with an error instead of hanging the
    /// fuzzer.
    pub omni_fuel: u64,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            dse_points: 3,
            dse_max_depth: 16,
            dse_resim: true,
            min_depths: true,
            min_depths_bound: 12,
            min_depths_resim: false,
            bytecode: true,
            analyze: true,
            rtl_max_cycles: 500_000,
            omni_fuel: 10_000_000,
        }
    }
}

/// How naive C simulation fared against the reference, for the
/// expected-divergence bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsimAgreement {
    /// Completed with exactly the reference's outputs.
    Agreed,
    /// Completed with different outputs (wrong drop counts, zero-cycle
    /// timers, …).
    Diverged,
    /// Crashed (the paper's `SIGSEGV` rows).
    Crashed,
}

/// The outcome of one differential check.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Taxonomy class of the checked design.
    pub class: DesignClass,
    /// True if both cycle-accurate backends completed the run (as opposed
    /// to agreeing on a deadlock).
    pub completed: bool,
    /// Agreed total cycle count, when completed.
    pub total_cycles: Option<u64>,
    /// C-simulation bookkeeping (`None` when the check aborted before csim
    /// ran).
    pub csim: Option<CsimAgreement>,
    /// Number of DSE depth vectors checked.
    pub dse_points_checked: usize,
    /// Number of compile-once session `run()`s cross-checked against the
    /// incremental ground truth.
    pub session_runs_checked: usize,
    /// Number of compiled evaluations the `min_depths` search spent
    /// (0 when the leg was skipped).
    pub min_depths_probes: usize,
    /// Static analyzer verdict (`None` when the leg was skipped or the
    /// check aborted before it ran).
    pub analysis: Option<DeadlockVerdict>,
    /// Every violated claim, human-readable. Empty means the design passed.
    pub failures: Vec<String>,
}

impl DiffReport {
    /// True if every differential claim held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Salt mixed into a fuzz seed to derive the DSE depth-vector generator, so
/// that a failing seed reproduces bit-identically in the test harness, the
/// `fuzz` CLI and CI.
pub const DSE_RNG_SALT: u64 = 0x0d5e_5eed_f022_ce00;

/// Generates the design for `seed` and differential-checks it, deriving the
/// DSE depth vectors deterministically from the same seed.
pub fn fuzz_seed(
    gen_cfg: &crate::config::GenConfig,
    diff: &DiffConfig,
    seed: u64,
) -> (crate::generate::Generated, DiffReport) {
    let generated = crate::generate::generate(gen_cfg, seed);
    let report = check_seeded(&generated.design, diff, seed);
    (generated, report)
}

/// Differential-checks one design with the deterministic DSE vectors for
/// `seed` — the reproduction (and shrinking) entry point behind
/// [`fuzz_seed`].
pub fn check_seeded(design: &Design, diff: &DiffConfig, seed: u64) -> DiffReport {
    differential_check(design, diff, &mut Rng::new(seed ^ DSE_RNG_SALT))
}

/// Runs every backend on `design` and cross-checks the results.
///
/// The `rng` drives only the DSE depth vectors; pass a freshly seeded
/// generator for reproducible checks.
pub fn differential_check(design: &Design, cfg: &DiffConfig, rng: &mut Rng) -> DiffReport {
    let class = classify(design).class;
    let mut failures = Vec::new();

    // --- omnisim vs the cycle-stepped reference --------------------------
    // The engine runs through the compile-once session API: the baseline
    // run is the compile phase, and the DSE legs below double as session
    // `run()` coverage.
    let omni_config = SimConfig::default().with_fuel(cfg.omni_fuel);
    let session = match CompiledOmni::compile(design, omni_config) {
        Ok(session) => session,
        Err(e) => {
            return DiffReport {
                class,
                completed: false,
                total_cycles: None,
                csim: None,
                dse_points_checked: 0,
                session_runs_checked: 0,
                min_depths_probes: 0,
                analysis: None,
                failures: vec![format!("omnisim failed to run: {e}")],
            };
        }
    };
    let omni = session.baseline();
    let rtl = match RtlSimulator::with_config(
        design,
        RtlConfig {
            max_cycles: cfg.rtl_max_cycles,
        },
    )
    .run()
    {
        Ok(report) => report,
        Err(e) => {
            return DiffReport {
                class,
                completed: false,
                total_cycles: None,
                csim: None,
                dse_points_checked: 0,
                session_runs_checked: 0,
                min_depths_probes: 0,
                analysis: None,
                failures: vec![format!("reference simulator failed to run: {e}")],
            };
        }
    };

    if let RtlOutcome::CycleLimit { limit } = rtl.outcome {
        failures.push(format!(
            "reference hit its {limit}-cycle budget: generated design does not terminate"
        ));
    }
    match (omni.outcome.is_completed(), rtl.outcome.is_completed()) {
        (true, true) | (false, false) => {}
        (o, _) => failures.push(format!(
            "outcome mismatch: omnisim {} but reference {:?}",
            if o { "completed" } else { "deadlocked" },
            rtl.outcome
        )),
    }
    let completed = omni.outcome.is_completed() && rtl.outcome.is_completed();
    // Outputs are compared only for completed runs: on a deadlock, OmniSim's
    // optimistic functional threads (blocking writes never pause, §7.1) may
    // have run tasks to completion that real hardware leaves stalled, so the
    // partial output sets are incomparable by design.
    if completed && omni.outputs != rtl.outputs {
        failures.push(format!(
            "output mismatch: omnisim {:?} vs reference {:?}",
            omni.outputs, rtl.outputs
        ));
    }
    if completed && omni.total_cycles != rtl.total_cycles {
        failures.push(format!(
            "cycle mismatch: omnisim {} vs reference {}",
            omni.total_cycles, rtl.total_cycles
        ));
    }

    // --- static analyzer certificates vs the reference -------------------
    // The analyzer's claims are schedule-independent, so the cycle-stepped
    // reference is a ground truth for them: a `CertifiedFree` design must
    // complete (a hung reference is inconclusive — that failure is already
    // recorded above), a `CertifiedDeadlock` design must never complete,
    // and the necessity depth bound must be satisfied by any depth vector
    // the design completes at — in particular the declared one.
    let analysis = cfg.analyze.then(|| omnisim_analyze::analyze(design));
    if let Some(report) = &analysis {
        let rtl_definitive = !matches!(rtl.outcome, RtlOutcome::CycleLimit { .. });
        match report.verdict {
            DeadlockVerdict::CertifiedFree => {
                if rtl_definitive && !rtl.outcome.is_completed() {
                    failures.push(format!(
                        "analyzer certified the design deadlock-free, but the reference \
                         reports {:?}",
                        rtl.outcome
                    ));
                }
            }
            DeadlockVerdict::CertifiedDeadlock => {
                if rtl.outcome.is_completed() {
                    failures
                        .push("analyzer certified a deadlock, but the reference completed".into());
                }
            }
            DeadlockVerdict::Unknown => {}
        }
        if rtl.outcome.is_completed() {
            for (f, b) in report.depth_bounds.iter().enumerate() {
                if b.bound > design.fifos[f].depth {
                    failures.push(format!(
                        "static depth bound {} for fifo {f} exceeds the declared depth {} \
                         of a completing design",
                        b.bound, design.fifos[f].depth
                    ));
                }
            }
        }
    }

    // --- lightning: correct on Type A, honest rejection on B/C -----------
    match class {
        DesignClass::TypeA => {
            match LightningSimulator::new(design).and_then(|mut s| s.simulate()) {
                Ok(light) => {
                    if !completed {
                        // A blocking-only design deadlocks exactly when the
                        // depth overlay is cyclic, so a successful analysis
                        // of a deadlocked design is a wrong answer (this is
                        // how multi-rate reconvergence with undersized
                        // FIFOs would silently mis-simulate on a decoupled
                        // two-phase tool).
                        failures.push(format!(
                            "lightning reported {} cycles for a Type A design that \
                             deadlocks in hardware",
                            light.total_cycles
                        ));
                    } else {
                        if light.outputs != rtl.outputs {
                            failures.push(format!(
                                "lightning output mismatch on Type A: {:?} vs {:?}",
                                light.outputs, rtl.outputs
                            ));
                        }
                        if light.total_cycles != rtl.total_cycles {
                            failures.push(format!(
                                "lightning cycle mismatch on Type A: {} vs {}",
                                light.total_cycles, rtl.total_cycles
                            ));
                        }
                    }
                }
                Err(e) => {
                    // On a deadlocked Type A design, lightning's Phase 2
                    // overlay is cyclic; the graph error *is* its honest
                    // deadlock diagnosis.
                    if completed {
                        failures.push(format!("lightning failed on a Type A design: {e}"));
                    }
                }
            }
        }
        DesignClass::TypeB | DesignClass::TypeC => {
            match LightningSimulator::new(design).and_then(|mut s| s.simulate()) {
                Ok(_) => failures.push(format!(
                    "lightning accepted a Type {class} design instead of rejecting it"
                )),
                Err(LightningError::Unsupported { .. }) => {}
                Err(e) => failures.push(format!(
                    "lightning rejected a Type {class} design with the wrong error: {e}"
                )),
            }
        }
    }

    // --- csim bookkeeping -------------------------------------------------
    let csim = match CsimBackend::default().simulate(design) {
        Ok(report) if report.outcome.is_crashed() => Some(CsimAgreement::Crashed),
        Ok(report) if report.outcome.is_completed() && report.outputs == rtl.outputs => {
            Some(CsimAgreement::Agreed)
        }
        Ok(_) => Some(CsimAgreement::Diverged),
        Err(e) => {
            failures.push(format!("csim refused to run: {e}"));
            None
        }
    };
    // C simulation has unbounded FIFOs and no hardware time, so it cannot
    // see a deadlock: its exactness claim only covers completed runs (on a
    // deadlocked design its full outputs against the reference's partial
    // ones are a *documented* divergence, Table 3).
    if class == DesignClass::TypeA && completed && csim != Some(CsimAgreement::Agreed) {
        failures.push(format!(
            "csim must reproduce Type A behaviour exactly, got {csim:?}"
        ));
    }

    // --- compiled DSE == incremental == full re-simulation ---------------
    let mut dse_points_checked = 0;
    let mut session_runs_checked = 0;
    let mut min_depths_probes = 0;
    if !design.fifos.is_empty() && (cfg.dse_points > 0 || cfg.min_depths) {
        match SweepPlan::compile(&omni.incremental) {
            Ok(plan) => {
                let mut evaluator = plan.evaluator();
                // The bytecode leg reuses one warm VM across the design's
                // depth vectors, so the delta/worklist paths fuzz too —
                // and the program it runs has been through one codec
                // roundtrip, pinning the persisted form as well.
                let program = (cfg.bytecode && cfg.dse_points > 0).then(|| {
                    let lowered = plan.compile_bytecode();
                    match omnisim_dse::CompiledPlan::decode(&lowered.encode()) {
                        Ok(decoded) => decoded,
                        Err(e) => {
                            failures.push(format!("bytecode program failed to roundtrip: {e}"));
                            lowered
                        }
                    }
                });
                let mut vm = program.as_ref().map(|p| p.vm());
                for _ in 0..cfg.dse_points {
                    let depths: Vec<usize> = (0..design.fifos.len())
                        .map(|_| rng.depth(cfg.dse_max_depth))
                        .collect();
                    let compiled = match evaluator.evaluate(&depths) {
                        Ok(o) => o,
                        Err(e) => {
                            failures.push(format!("plan evaluation failed at {depths:?}: {e}"));
                            continue;
                        }
                    };
                    let incremental = match omni.incremental.try_with_depths(&depths) {
                        Ok(o) => o,
                        Err(e) => {
                            failures.push(format!("incremental pass failed at {depths:?}: {e}"));
                            continue;
                        }
                    };
                    dse_points_checked += 1;
                    if compiled != incremental {
                        failures.push(format!(
                            "compiled DSE disagrees with try_with_depths at {depths:?}: \
                             {compiled:?} vs {incremental:?}"
                        ));
                        continue;
                    }
                    if let Some(vm) = vm.as_mut() {
                        match vm.evaluate(&depths) {
                            Ok(outcome) => {
                                if outcome != compiled {
                                    failures.push(format!(
                                        "bytecode VM disagrees with the interpreted plan at \
                                         {depths:?}: {outcome:?} vs {compiled:?}"
                                    ));
                                }
                            }
                            Err(e) => failures
                                .push(format!("bytecode VM evaluation failed at {depths:?}: {e}")),
                        }
                    }
                    // Session leg: a compile-once `run()` with these depth
                    // overrides must report the certified latency through
                    // the unified report — the wiring from incremental
                    // verdict to `SimReport`. (Its outputs are the
                    // baseline's by construction, so only the resim leg
                    // below can check outputs against reality.)
                    if let IncrementalOutcome::Valid { total_cycles } = compiled {
                        match session.run_native(&RunConfig::new().with_fifo_depths(depths.clone()))
                        {
                            Ok(run) => {
                                session_runs_checked += 1;
                                if run.total_cycles != Some(total_cycles) {
                                    failures.push(format!(
                                        "session run at {depths:?} reports {:?} cycles, but \
                                         the incremental path certifies {total_cycles}",
                                        run.total_cycles
                                    ));
                                }
                            }
                            Err(e) => {
                                failures.push(format!("session run failed at {depths:?}: {e}"))
                            }
                        }
                    }
                    if cfg.dse_resim && completed {
                        if let IncrementalOutcome::Valid { total_cycles } = compiled {
                            match OmniSimulator::with_config(
                                &design.with_fifo_depths(&depths),
                                omni_config,
                            )
                            .run()
                            {
                                Ok(full) => {
                                    if full.total_cycles != total_cycles {
                                        failures.push(format!(
                                            "certified DSE answer {total_cycles} diverges from \
                                             full re-simulation {} at {depths:?}",
                                            full.total_cycles
                                        ));
                                    }
                                    // Constraints holding is the §7.2 claim
                                    // that behaviour is unchanged, so the
                                    // resized design's *real* outputs must
                                    // equal the baseline's — exactly what a
                                    // certified session run replays.
                                    if full.outputs != omni.outputs {
                                        failures.push(format!(
                                            "certified point {depths:?} changes functional \
                                             outputs: {:?} vs baseline {:?}",
                                            full.outputs, omni.outputs
                                        ));
                                    }
                                }
                                Err(e) => failures
                                    .push(format!("full re-simulation failed at {depths:?}: {e}")),
                            }
                        }
                    }
                }

                // --- min_depths: the inverse DSE query, searched on every
                // completed baseline with the baseline latency as target,
                // its combined verdict cross-checked against the uncompiled
                // path and (optionally) its certificate ground-truthed for
                // tightness against full re-simulations.
                if cfg.min_depths && completed {
                    let target = omni.total_cycles;
                    match plan.min_depths(target, cfg.min_depths_bound) {
                        Ok(md) => {
                            min_depths_probes = md.probes;
                            // The static bound is necessary for completion
                            // while the certified minimum is sufficient for
                            // the latency target, so bound <= minimum.
                            if let Some(analysis) = &analysis {
                                for (f, (b, m)) in analysis
                                    .depth_bounds
                                    .iter()
                                    .zip(md.per_fifo.iter())
                                    .enumerate()
                                {
                                    if let Some(m) = m {
                                        if b.bound > *m {
                                            failures.push(format!(
                                                "static depth bound {} for fifo {f} exceeds \
                                                 the certified min_depths minimum {m}",
                                                b.bound
                                            ));
                                        }
                                    }
                                }
                            }
                            match omni.incremental.try_with_depths(&md.depths) {
                                Ok(outcome) if outcome == md.combined => {}
                                Ok(outcome) => failures.push(format!(
                                    "min_depths combined verdict diverges from try_with_depths \
                                     at {:?}: {:?} vs {outcome:?}",
                                    md.depths, md.combined
                                )),
                                Err(e) => failures.push(format!(
                                    "try_with_depths failed on the min_depths vector {:?}: {e}",
                                    md.depths
                                )),
                            }
                            if cfg.min_depths_resim {
                                check_min_depths_tightness(
                                    design,
                                    omni_config,
                                    target,
                                    &plan,
                                    cfg.min_depths_bound,
                                    &md,
                                    &mut evaluator,
                                    &mut failures,
                                );
                            }
                        }
                        Err(e) => failures.push(format!("min_depths search failed: {e}")),
                    }
                }
            }
            Err(e) => {
                // A deadlocked baseline's partial event graph need not
                // admit a depth-independent topological order; completed
                // runs always must.
                if completed {
                    failures.push(format!("sweep plan failed to compile: {e}"));
                }
            }
        }
    }

    DiffReport {
        class,
        completed,
        total_cycles: completed.then_some(omni.total_cycles),
        csim,
        dse_points_checked,
        session_runs_checked,
        min_depths_probes,
        analysis: analysis.map(|a| a.verdict),
        failures,
    }
}

/// The tightness oracle behind [`DiffConfig::min_depths_resim`]: every
/// certified per-FIFO minimum must actually simulate within the target
/// (holding the other FIFOs at their anchors), and one depth shallower must
/// certifiably fail — either the plan certifies a latency above the target
/// (which full re-simulation must reproduce exactly), or the depth is
/// infeasible (which full re-simulation must confirm as a non-completion).
/// A constraint flip one depth shallower proves nothing either way (validity
/// is not monotone), so it is skipped.
#[allow(clippy::too_many_arguments)]
fn check_min_depths_tightness(
    design: &Design,
    omni_config: SimConfig,
    target: u64,
    plan: &SweepPlan,
    bound: usize,
    md: &MinDepthsReport,
    evaluator: &mut PlanEvaluator<'_>,
    failures: &mut Vec<String>,
) {
    let anchors: Vec<usize> = plan
        .original_depths()
        .iter()
        .map(|&d| d.clamp(1, bound))
        .collect();
    let resim = |depths: &[usize]| {
        OmniSimulator::with_config(&design.with_fifo_depths(depths), omni_config).run()
    };
    for (f, min) in md.per_fifo.iter().enumerate() {
        let Some(min) = *min else { continue };
        let mut probe = anchors.clone();
        probe[f] = min;
        match resim(&probe) {
            Ok(full) if full.outcome.is_completed() && full.total_cycles <= target => {}
            Ok(full) => failures.push(format!(
                "min_depths certified fifo {f} at depth {min}, but full re-simulation \
                 gives {} cycles (completed: {}) against target {target} at {probe:?}",
                full.total_cycles,
                full.outcome.is_completed()
            )),
            Err(e) => failures.push(format!("full re-simulation failed at {probe:?}: {e}")),
        }
        if min == 1 {
            continue;
        }
        probe[f] = min - 1;
        match evaluator.evaluate(&probe) {
            Ok(IncrementalOutcome::Valid { total_cycles }) => {
                if total_cycles <= target {
                    failures.push(format!(
                        "min_depths reported {min} for fifo {f}, but the plan certifies \
                         {total_cycles} <= {target} one depth shallower"
                    ));
                } else {
                    match resim(&probe) {
                        Ok(full)
                            if full.outcome.is_completed() && full.total_cycles == total_cycles => {
                        }
                        Ok(full) => failures.push(format!(
                            "certified min_depths boundary {total_cycles} diverges from full \
                             re-simulation {} (completed: {}) at {probe:?}",
                            full.total_cycles,
                            full.outcome.is_completed()
                        )),
                        Err(e) => {
                            failures.push(format!("full re-simulation failed at {probe:?}: {e}"))
                        }
                    }
                }
            }
            Ok(IncrementalOutcome::DepthInfeasible { .. } | IncrementalOutcome::DepthCyclic) => {
                match resim(&probe) {
                    Ok(full) if !full.outcome.is_completed() => {}
                    Ok(_) => failures.push(format!(
                        "plan calls {probe:?} infeasible, but the resized design completes"
                    )),
                    Err(e) => failures.push(format!("full re-simulation failed at {probe:?}: {e}")),
                }
            }
            Ok(IncrementalOutcome::ConstraintViolated { .. }) => {}
            Err(e) => failures.push(format!("plan evaluation failed at {probe:?}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use crate::generate::generate;

    #[test]
    fn every_class_passes_on_a_small_seed_window() {
        let diff = DiffConfig::default();
        for class in [DesignClass::TypeA, DesignClass::TypeB, DesignClass::TypeC] {
            let cfg = GenConfig::for_class(class);
            for seed in 0..8 {
                let g = generate(&cfg, seed);
                let mut rng = Rng::new(seed ^ 0xdeed);
                let report = differential_check(&g.design, &diff, &mut rng);
                assert_eq!(report.class, class);
                assert!(
                    report.passed(),
                    "class {class:?} seed {seed} failed:\n  {}\nblueprint: {:#?}",
                    report.failures.join("\n  "),
                    g.blueprint
                );
            }
        }
    }

    #[test]
    fn forced_deadlocks_are_diagnosed_identically() {
        let cfg = GenConfig::type_b().with_tasks(2, 4).with_deadlocks(100);
        let diff = DiffConfig::default();
        let mut saw_deadlock = false;
        for seed in 0..12 {
            let g = generate(&cfg, seed);
            if !g.blueprint.has_forced_deadlock() {
                continue;
            }
            saw_deadlock = true;
            let mut rng = Rng::new(seed);
            let report = differential_check(&g.design, &diff, &mut rng);
            assert!(
                report.passed(),
                "seed {seed} failed:\n  {}",
                report.failures.join("\n  ")
            );
            assert!(!report.completed, "forced deadlock must not complete");
        }
        assert!(saw_deadlock, "no forced deadlock in 12 seeds at 100%");
    }
}
