//! The seeded random design generator.
//!
//! [`generate`] maps `(GenConfig, seed)` deterministically onto a
//! well-formed [`Blueprint`] and its lowered [`Design`]. Taxonomy targeting
//! is compositional — each feature the generator can add corresponds to a
//! known row of the paper's Type A/B/C taxonomy — so a requested class is
//! guaranteed by construction and double-checked against `omnisim-ir`'s
//! classifier before the design is returned. The orthogonal dimensions
//! (AXI bursts, call chains, multi-rate edges with surpluses) never change
//! the class, so they compose freely with every class preset.

use crate::blueprint::{AxiPlan, AxiRole, Blueprint, CallPlan, EdgeKind, EdgePlan, TaskPlan};
use crate::config::GenConfig;
use crate::rng::Rng;
use omnisim_ir::taxonomy::classify;
use omnisim_ir::{Design, DesignClass};

/// A generated design together with its provenance.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The seed that produced it.
    pub seed: u64,
    /// The class `omnisim-ir`'s classifier assigns to the design.
    pub class: DesignClass,
    /// The shrinkable structural form.
    pub blueprint: Blueprint,
    /// The lowered, validated design.
    pub design: Design,
}

/// Mixing constant decorrelating consecutive seeds (splitmix64 increment).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Generates one design from a seed.
///
/// Deterministic: the same `(config, seed)` pair always returns the same
/// blueprint and design. When the configuration targets a class, the
/// returned design is guaranteed to classify as that class.
///
/// # Panics
///
/// Panics if the configured ranges are empty (`min > max`) or if a targeted
/// class cannot be hit — the latter would be a generator bug, since every
/// target is reachable by construction.
pub fn generate(cfg: &GenConfig, seed: u64) -> Generated {
    // The construction below guarantees the target class, so the retry loop
    // is a safety net (and keeps generation total if a future feature breaks
    // the guarantee in a corner case).
    for attempt in 0..16u64 {
        let mut rng = Rng::new(
            (seed ^ 0x6f6d_6e69_5f67_656e).wrapping_add(attempt.wrapping_mul(SEED_STRIDE)),
        );
        let blueprint = build_blueprint(cfg, seed, &mut rng);
        debug_assert_eq!(blueprint.well_formed(), Ok(()));
        let design = blueprint.lower();
        let class = classify(&design).class;
        if cfg.target.is_none_or(|t| t == class) {
            return Generated {
                seed,
                class,
                blueprint,
                design,
            };
        }
    }
    panic!(
        "generator bug: no design of class {:?} within 16 attempts for seed {seed}",
        cfg.target
    );
}

fn build_blueprint(cfg: &GenConfig, seed: u64, rng: &mut Rng) -> Blueprint {
    // Multi-rate designs need rates that divide the token count: rounding
    // the count up to a multiple of 12 makes {2, 3, 4, 6} all available.
    // The gate is per design so single-rate token diversity is preserved.
    let mut tokens = rng.range_i64(cfg.tokens.0, cfg.tokens.1);
    let multirate = cfg.rate_percent > 0 && rng.chance(cfg.rate_percent);
    if multirate {
        tokens = ((tokens + 11) / 12) * 12;
    }
    let rates: Vec<i64> = std::iter::once(1)
        .chain((2..=6).filter(|r| tokens % r == 0))
        .collect();

    let min_tasks = match cfg.target {
        // Type C needs at least one forward edge to make lossy.
        Some(DesignClass::TypeC) => cfg.tasks.0.max(2),
        _ => cfg.tasks.0.max(1),
    };
    let task_count = rng.range_usize(min_tasks, cfg.tasks.1.max(min_tasks));

    let mut tasks: Vec<TaskPlan> = (0..task_count)
        .map(|_| {
            let rate = if multirate { *rng.pick(&rates) } else { 1 };
            let ii = rng.range(1, 4).max(rate as u64);
            TaskPlan {
                ii,
                work: rng.range(0, 4),
                start: rng.range_i64(0, 9),
                coef: rng.range_i64(1, 3),
                dynamic_loop: rng.chance(cfg.dynamic_loop_percent),
                array_source: rng.chance(cfg.array_source_percent),
                emits_output: true,
                rate,
                call: None,
                axi: None,
            }
        })
        .collect();

    // Spanning forward edges: every non-root task consumes from some earlier
    // task, then a few extra forward edges for reconvergence.
    let mut edges: Vec<EdgePlan> = Vec::new();
    let mut depth = |rng: &mut Rng| rng.range_usize(cfg.depth.0.max(1), cfg.depth.1);
    for dst in 1..task_count {
        let src = rng.range_usize(0, dst - 1);
        let d = depth(rng);
        edges.push(EdgePlan::blocking(src, dst, d));
    }
    if task_count >= 2 && cfg.extra_edges > 0 {
        for _ in 0..rng.range_usize(0, cfg.extra_edges) {
            let src = rng.range_usize(0, task_count - 2);
            let dst = rng.range_usize(src + 1, task_count - 1);
            let d = depth(rng);
            edges.push(EdgePlan::blocking(src, dst, d));
        }
    }
    let forward_count = edges.len();

    // --- Type B features -------------------------------------------------
    // Response edges close request/response cycles over existing forward
    // edges; their forward partners are protected from the lossy conversion
    // below so the liveness (or forced-deadlock) analysis stays valid.
    let mut protected = vec![false; forward_count];
    let mut has_b_feature = false;
    if forward_count > 0 && rng.chance(cfg.back_edge_percent) {
        has_b_feature = true;
        add_response(cfg, rng, &mut edges, &mut protected, &mut depth);
        // Occasionally a second, independent cycle.
        if rng.chance(cfg.back_edge_percent / 2) {
            add_response(cfg, rng, &mut edges, &mut protected, &mut depth);
        }
    }
    // A forced deadlock must never coexist with a retry source: the retry
    // producer would spin forever against a FIFO nobody will ever drain — a
    // livelock neither backend can diagnose as a deadlock (see
    // `Blueprint::well_formed`).
    let has_forced_deadlock = edges
        .iter()
        .any(|e| e.kind == EdgeKind::Response { deadlock: true });
    // Retry sources are also excluded from multi-rate designs: an emergent
    // buffering deadlock would starve the retry loop into a livelock (see
    // `Blueprint::well_formed`).
    let has_rates = tasks.iter().any(|t| t.rate > 1);
    if !has_forced_deadlock && !has_rates && rng.chance(cfg.nb_retry_percent) {
        has_b_feature = true;
        add_retry_source(rng, &mut tasks, &mut edges, &mut depth, cfg);
    }
    if cfg.target == Some(DesignClass::TypeB) && !has_b_feature {
        // Deterministic fallback: a retry source is always possible once
        // the rates are flattened.
        for t in tasks.iter_mut() {
            t.rate = 1;
        }
        add_retry_source(rng, &mut tasks, &mut edges, &mut depth, cfg);
    }

    // --- Type C features -------------------------------------------------
    let mut has_c_feature = false;
    if cfg.nb_drop_percent > 0 {
        for (i, &is_protected) in protected.iter().enumerate() {
            if !is_protected && rng.chance(cfg.nb_drop_percent) {
                make_lossy(rng, &mut tasks, &mut edges, i);
                has_c_feature = true;
            }
        }
    }
    if cfg.target == Some(DesignClass::TypeC) && !has_c_feature {
        match (0..forward_count).find(|&i| !protected[i]) {
            Some(i) => make_lossy(rng, &mut tasks, &mut edges, i),
            None => {
                // Every forward edge is a protected response partner: add a
                // fresh forward edge just to make it lossy.
                let d = depth(rng);
                edges.push(EdgePlan::blocking(0, 1, d));
                let i = edges.len() - 1;
                make_lossy(rng, &mut tasks, &mut edges, i);
            }
        }
    }

    // --- Multi-rate surpluses --------------------------------------------
    // Leftover data: the producer writes 1–3 extra values the consumer
    // never drains. Capped by the FIFO depth so the design itself stays
    // live; any DSE probe below the surplus is infeasible.
    if cfg.surplus_percent > 0 {
        for e in edges.iter_mut() {
            if e.kind == EdgeKind::Blocking && rng.chance(cfg.surplus_percent) {
                e.surplus = rng.range_usize(1, 3.min(e.depth));
            }
        }
    }

    // --- AXI burst traffic -----------------------------------------------
    if cfg.axi_percent > 0 {
        #[allow(clippy::needless_range_loop)]
        for t in 0..tasks.len() {
            if edges
                .iter()
                .any(|e| e.kind == EdgeKind::NbRetry && e.src == t)
            {
                continue; // retry sources stay minimal
            }
            let has_in_fwd = edges
                .iter()
                .any(|e| e.dst == t && !matches!(e.kind, EdgeKind::Response { .. }));
            let has_out = edges.iter().any(|e| e.src == t);
            let has_any = edges.iter().any(|e| e.src == t || e.dst == t);
            let role = if !has_any {
                Some(AxiRole::ReadWrite)
            } else if !has_in_fwd && has_out {
                Some(AxiRole::ReadSource {
                    prefetch: if rng.chance(cfg.axi_prefetch_percent) {
                        rng.range(1, 3) as u8
                    } else {
                        0
                    },
                    interleave: rng.chance(cfg.axi_interleave_percent),
                })
            } else if has_in_fwd && !has_out {
                Some(AxiRole::WriteSink)
            } else {
                None
            };
            if let Some(role) = role {
                if rng.chance(cfg.axi_percent) {
                    tasks[t].axi = Some(AxiPlan {
                        role,
                        latency: rng.range(1, 9),
                    });
                    tasks[t].array_source = false;
                }
            }
        }
    }

    // --- Call chains -----------------------------------------------------
    if cfg.call_percent > 0 {
        #[allow(clippy::needless_range_loop)]
        for t in 0..tasks.len() {
            if tasks[t].axi.is_some()
                || edges
                    .iter()
                    .any(|e| e.kind == EdgeKind::NbRetry && e.src == t)
                || !rng.chance(cfg.call_percent)
            {
                continue;
            }
            let depth = rng.range(1, u64::from(cfg.max_call_depth.clamp(1, 3)) + 1) as u8;
            let shared = rng.chance(cfg.call_shared_percent);
            let has_blocking_in = edges
                .iter()
                .any(|e| e.dst == t && matches!(e.kind, EdgeKind::Blocking | EdgeKind::NbRetry));
            let in_cycle = edges
                .iter()
                .any(|e| matches!(e.kind, EdgeKind::Response { .. }) && (e.src == t || e.dst == t));
            let wrap_reads =
                !shared && has_blocking_in && !in_cycle && rng.chance(cfg.call_wrap_percent);
            tasks[t].call = Some(CallPlan {
                depth,
                shared,
                wrap_reads,
            });
        }
    }

    // Response cycles require equal rates on both endpoints; two cycles
    // sharing a task can undo each other's coercion, so equalize to a
    // fixpoint (rates only ever decrease, so this terminates).
    loop {
        let mut changed = false;
        for edge in &edges {
            if !matches!(edge.kind, EdgeKind::Response { .. }) {
                continue;
            }
            let (s, d) = (edge.src, edge.dst);
            let rate = tasks[s].rate.min(tasks[d].rate);
            if tasks[s].rate != rate || tasks[d].rate != rate {
                tasks[s].rate = rate;
                tasks[d].rate = rate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    Blueprint {
        name: format!("gen_{seed:016x}"),
        tokens,
        tasks,
        edges,
    }
}

/// Closes a request/response cycle over a random forward edge, marking the
/// partner as protected. Endpoint rates are equalized afterwards by the
/// fixpoint pass in `build_blueprint` (unequal rates would starve the
/// cycle mid-iteration).
fn add_response(
    cfg: &GenConfig,
    rng: &mut Rng,
    edges: &mut Vec<EdgePlan>,
    protected: &mut [bool],
    depth: &mut impl FnMut(&mut Rng) -> usize,
) {
    let partner = rng.range_usize(0, protected.len() - 1);
    protected[partner] = true;
    let (src, dst) = (edges[partner].dst, edges[partner].src);
    let d = depth(rng);
    edges.push(EdgePlan {
        src,
        dst,
        depth: d,
        kind: EdgeKind::Response {
            deadlock: rng.chance(cfg.deadlock_percent),
        },
        surplus: 0,
    });
}

/// Appends a dedicated non-blocking retry source feeding a random existing
/// task.
fn add_retry_source(
    rng: &mut Rng,
    tasks: &mut Vec<TaskPlan>,
    edges: &mut Vec<EdgePlan>,
    depth: &mut impl FnMut(&mut Rng) -> usize,
    cfg: &GenConfig,
) {
    let dst = rng.range_usize(0, tasks.len() - 1);
    let src = tasks.len();
    tasks.push(TaskPlan {
        ii: rng.range(1, 4),
        work: 0,
        start: rng.range_i64(0, 9),
        coef: rng.range_i64(1, 3),
        dynamic_loop: false,
        array_source: rng.chance(cfg.array_source_percent),
        // The retry state is taint-reachable from the NB outcome; keeping it
        // un-observable is what keeps the design Type B.
        emits_output: false,
        rate: 1,
        call: None,
        axi: None,
    });
    let d = depth(rng);
    edges.push(EdgePlan {
        src,
        dst,
        depth: d,
        kind: EdgeKind::NbRetry,
        surplus: 0,
    });
}

/// Converts a forward edge into a lossy NB edge and makes its consumer's
/// accumulator observable, guaranteeing Type C.
fn make_lossy(rng: &mut Rng, tasks: &mut [TaskPlan], edges: &mut [EdgePlan], i: usize) {
    edges[i].kind = EdgeKind::NbDrop {
        counted: rng.chance(50),
    };
    edges[i].surplus = 0;
    tasks[edges[i].dst].emits_output = true;
    tasks[edges[i].src].emits_output = true;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            let a = generate(&GenConfig::mixed(), seed);
            let b = generate(&GenConfig::mixed(), seed);
            assert_eq!(a.blueprint, b.blueprint, "seed {seed}");
            assert_eq!(a.design, b.design, "seed {seed}");
            assert_eq!(a.class, b.class, "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::mixed(), 1);
        let b = generate(&GenConfig::mixed(), 2);
        assert_ne!(a.blueprint, b.blueprint);
    }

    #[test]
    fn class_targeting_holds_across_seeds() {
        for class in [DesignClass::TypeA, DesignClass::TypeB, DesignClass::TypeC] {
            let cfg = GenConfig::for_class(class);
            for seed in 0..64 {
                let g = generate(&cfg, seed);
                assert_eq!(g.class, class, "seed {seed} missed target {class:?}");
                assert_eq!(classify(&g.design).class, class, "seed {seed}");
            }
        }
    }

    #[test]
    fn generated_designs_pass_ir_validation() {
        for seed in 0..48 {
            let g = generate(&GenConfig::mixed(), seed);
            assert_eq!(
                omnisim_ir::validate::validate(&g.design),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn deadlock_knob_produces_forced_deadlocks() {
        let cfg = GenConfig {
            back_edge_percent: 100,
            deadlock_percent: 100,
            ..GenConfig::mixed()
        };
        let mut saw_deadlock = false;
        for seed in 0..16 {
            let g = generate(&cfg, seed);
            saw_deadlock |= g.blueprint.has_forced_deadlock();
        }
        assert!(saw_deadlock, "deadlock probability 100% never fired");
    }

    #[test]
    fn axi_preset_produces_every_role() {
        let cfg = GenConfig::axi();
        let (mut sources, mut sinks, mut rw, mut prefetched, mut interleaved) = (0, 0, 0, 0, 0);
        for seed in 0..64 {
            let g = generate(&cfg, seed);
            assert_eq!(g.class, DesignClass::TypeA, "seed {seed}");
            for task in &g.blueprint.tasks {
                match task.axi.map(|a| a.role) {
                    Some(AxiRole::ReadSource {
                        prefetch,
                        interleave,
                    }) => {
                        sources += 1;
                        prefetched += usize::from(prefetch > 0);
                        interleaved += usize::from(interleave);
                    }
                    Some(AxiRole::WriteSink) => sinks += 1,
                    Some(AxiRole::ReadWrite) => rw += 1,
                    None => {}
                }
            }
        }
        assert!(sources > 0, "no AXI read sources generated");
        assert!(sinks > 0, "no AXI write sinks generated");
        assert!(rw > 0, "no isolated read/write tasks generated");
        assert!(prefetched > 0, "no outstanding-transaction prefetch");
        assert!(interleaved > 0, "no beat/FIFO interleaving");
    }

    #[test]
    fn calls_preset_produces_shared_private_and_wrapped_chains() {
        let cfg = GenConfig::calls();
        let (mut shared, mut private, mut wrapped, mut deep) = (0, 0, 0, 0);
        for seed in 0..64 {
            let g = generate(&cfg, seed);
            assert_eq!(g.class, DesignClass::TypeA, "seed {seed}");
            for task in &g.blueprint.tasks {
                if let Some(call) = task.call {
                    if call.shared {
                        shared += 1;
                    } else {
                        private += 1;
                    }
                    wrapped += usize::from(call.wrap_reads);
                    deep += usize::from(call.depth > 1);
                }
            }
        }
        assert!(shared > 0, "no shared call chains");
        assert!(private > 0, "no private call chains");
        assert!(wrapped > 0, "no wrapped blocking reads");
        assert!(deep > 0, "no multi-level chains");
    }

    #[test]
    fn multirate_preset_produces_rate_mismatches_and_surpluses() {
        let cfg = GenConfig::multirate();
        let (mut mismatched, mut surplus) = (0, 0);
        for seed in 0..64 {
            let g = generate(&cfg, seed);
            assert_eq!(g.class, DesignClass::TypeA, "seed {seed}");
            for e in &g.blueprint.edges {
                if g.blueprint.tasks[e.src].rate != g.blueprint.tasks[e.dst].rate {
                    mismatched += 1;
                }
                surplus += e.surplus;
            }
        }
        assert!(mismatched > 0, "no multi-rate boundaries generated");
        assert!(surplus > 0, "no token surpluses generated");
    }
}
